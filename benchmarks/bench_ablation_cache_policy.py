"""Ablation: FIFO vs LRU vs LFU replacement for the kernel-value buffer.

The paper uses FIFO batch replacement and notes that "other strategies may
be more effective" but "first-in first-out [is] simple and sufficiently
effective".  This ablation quantifies that: all three policies reach the
same classifier, and FIFO's training time sits within a small factor of
the best policy.
"""

from __future__ import annotations

import warnings

from repro import GMPSVC
from repro.data import load_dataset
from repro.perf.speedup import format_table

import pytest

from benchmarks import common

pytestmark = pytest.mark.slow

POLICIES = ["fifo", "lru", "lfu"]
DATASETS = ["adult", "mnist"]


WORKING_SET = 48
BUFFER_ROWS = 4 * WORKING_SET  # a buffer larger than the working set is
# what makes replacement policy matter: it decides which *past* batches
# stay resident for reuse.


def run_policy(dataset_name: str, policy: str):
    dataset = load_dataset(dataset_name)
    clf = GMPSVC(
        C=dataset.spec.penalty,
        gamma=dataset.spec.gamma,
        working_set_size=WORKING_SET,
        buffer_rows=BUFFER_ROWS,
        buffer_policy=policy,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        clf.fit(dataset.x_train, dataset.y_train)
    return clf


def build_rows() -> tuple[dict, dict]:
    times: dict[str, dict[str, float]] = {}
    biases: dict[str, dict[str, float]] = {}
    for dataset in DATASETS:
        times[dataset] = {}
        biases[dataset] = {}
        for policy in POLICIES:
            clf = run_policy(dataset, policy)
            times[dataset][policy] = clf.training_report_.simulated_seconds
            biases[dataset][policy] = clf.model_.bias_of_last_svm
    return times, biases


def test_ablation_cache_policy(benchmark):
    times, biases = common.run_benchmark_once(benchmark, build_rows)
    text = format_table(
        times,
        POLICIES,
        title="Ablation — buffer replacement policy (training, simulated seconds)",
        row_label="dataset",
    )
    common.record_table(
        "ablation cache policy", text, metrics={"train_s": times, "bias": biases}
    )
    for dataset in DATASETS:
        # Same classifier regardless of policy.
        reference = biases[dataset]["fifo"]
        for policy in POLICIES:
            assert abs(biases[dataset][policy] - reference) < 5e-3
        # FIFO is "sufficiently effective": within 40% of the best policy.
        best = min(times[dataset].values())
        assert times[dataset]["fifo"] <= 1.4 * best


if __name__ == "__main__":
    times, _ = build_rows()
    print(
        format_table(
            times,
            POLICIES,
            title="Ablation — buffer replacement policy (training, simulated seconds)",
            row_label="dataset",
        )
    )
