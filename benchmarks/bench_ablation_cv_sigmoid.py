"""Ablation: direct vs cross-validated sigmoid targets.

The paper fits each sigmoid on the final SVM's own training-set decision
values (Figure 1); LibSVM's ``-b 1`` instead uses out-of-fold decision
values from a 5-fold cross-validation — unbiased targets at the price of
five extra solves per binary SVM.  This ablation quantifies both sides:
the training-time cost of CV and the test-set calibration (log-loss) of
the resulting probabilities.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro import GMPSVC
from repro.data import load_dataset
from repro.perf.speedup import format_table

import pytest

from benchmarks import common

pytestmark = pytest.mark.slow

DATASETS = ["adult", "connect-4"]


def log_loss(classifier, x_test, y_test) -> float:
    proba = classifier.predict_proba(x_test)
    positions = np.searchsorted(classifier.classes_, y_test)
    p = np.clip(proba[np.arange(y_test.size), positions], 1e-12, 1.0)
    return float(-np.mean(np.log(p)))


def run_variant(dataset_name: str, cv_folds: int):
    dataset = load_dataset(dataset_name)
    clf = GMPSVC(
        C=dataset.spec.penalty,
        gamma=dataset.spec.gamma,
        probability_cv_folds=cv_folds,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        clf.fit(dataset.x_train, dataset.y_train)
        loss = log_loss(clf, dataset.x_test, dataset.y_test)
    return clf.training_report_.simulated_seconds, loss


def build_rows() -> dict[str, dict[str, float]]:
    rows: dict[str, dict[str, float]] = {}
    for dataset in DATASETS:
        direct_time, direct_loss = run_variant(dataset, 0)
        cv_time, cv_loss = run_variant(dataset, 5)
        rows[dataset] = {
            "direct train(s)": direct_time,
            "cv-5 train(s)": cv_time,
            "cv cost": cv_time / direct_time,
            "direct logloss": direct_loss,
            "cv-5 logloss": cv_loss,
        }
    return rows


def test_ablation_cv_sigmoid(benchmark):
    rows = common.run_benchmark_once(benchmark, build_rows)
    text = format_table(
        rows,
        ["direct train(s)", "cv-5 train(s)", "cv cost",
         "direct logloss", "cv-5 logloss"],
        title="Ablation — sigmoid targets: direct (paper) vs 5-fold CV (LibSVM -b 1)",
        row_label="dataset",
    )
    common.record_table("ablation cv sigmoid", text, metrics=rows)
    for dataset, row in rows.items():
        # CV multiplies training cost several-fold...
        assert row["cv cost"] > 2.0
        # ...and never calibrates substantially worse on held-out data.
        assert row["cv-5 logloss"] <= row["direct logloss"] * 1.15


if __name__ == "__main__":
    print(
        format_table(
            build_rows(),
            ["direct train(s)", "cv-5 train(s)", "cv cost",
             "direct logloss", "cv-5 logloss"],
            title="Ablation — sigmoid targets: direct (paper) vs 5-fold CV (LibSVM -b 1)",
            row_label="dataset",
        )
    )
