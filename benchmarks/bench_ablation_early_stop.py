"""Ablation: the delta-adaptive early termination of the inner solver.

Section 3.3.1: solving each working set to convergence "results in local
optimization on the working set"; GMP-SVM instead terminates early with a
budget driven by the global violation gap.  This ablation compares the
adaptive rule against a fixed budget and against solve-to-convergence.
Shape expectations: all rules reach the same classifier; the adaptive rule
spends no more inner iterations than solve-to-convergence.
"""

from __future__ import annotations

import warnings

from repro import GMPSVC
from repro.data import load_dataset
from repro.perf.speedup import format_table

import pytest

from benchmarks import common

pytestmark = pytest.mark.slow

RULES = ["adaptive", "fixed", "to_convergence"]
DATASETS = ["adult", "mnist"]


def run_rule(dataset_name: str, rule: str):
    dataset = load_dataset(dataset_name)
    clf = GMPSVC(
        C=dataset.spec.penalty, gamma=dataset.spec.gamma, inner_rule=rule
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        clf.fit(dataset.x_train, dataset.y_train)
    return clf


def build_rows() -> dict[str, dict[str, float]]:
    rows: dict[str, dict[str, float]] = {}
    for dataset in DATASETS:
        for rule in RULES:
            clf = run_rule(dataset, rule)
            rows[f"{dataset}/{rule}"] = {
                "train(s)": clf.training_report_.simulated_seconds,
                "inner iters": float(clf.training_report_.total_iterations),
                "bias": clf.model_.bias_of_last_svm,
            }
    return rows


def test_ablation_early_stop(benchmark):
    rows = common.run_benchmark_once(benchmark, build_rows)
    text = format_table(
        rows,
        ["train(s)", "inner iters", "bias"],
        title="Ablation — inner-solver termination rule",
        row_label="dataset/rule",
    )
    common.record_table("ablation early stop", text, metrics=rows)
    for dataset in DATASETS:
        biases = [rows[f"{dataset}/{rule}"]["bias"] for rule in RULES]
        assert max(biases) - min(biases) < 5e-3  # same classifier
        adaptive = rows[f"{dataset}/adaptive"]
        exhaustive = rows[f"{dataset}/to_convergence"]
        assert adaptive["inner iters"] <= exhaustive["inner iters"] * 1.05


if __name__ == "__main__":
    print(
        format_table(
            build_rows(),
            ["train(s)", "inner iters", "bias"],
            title="Ablation — inner-solver termination rule",
            row_label="dataset/rule",
        )
    )
