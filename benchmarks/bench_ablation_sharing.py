"""Ablation: kernel-value sharing and support-vector sharing on/off.

Isolates the two MP-SVM-level techniques of Sections 3.3.2 and 3.3.3 on a
many-class workload (News20, 190 binary SVMs), where sharing has the most
to offer.  Shape expectations: training-side kernel sharing cuts computed
FLOPs; prediction-side SV sharing cuts prediction time by a large factor;
neither changes the classifier.
"""

from __future__ import annotations

import warnings

from repro import GMPSVC
from repro.data import load_dataset
from repro.perf.speedup import format_table

import pytest

from benchmarks import common

pytestmark = pytest.mark.slow

DATASET = "news20"


def run_variant(share_kernel: bool, share_sv: bool):
    dataset = load_dataset(DATASET)
    clf = GMPSVC(
        C=dataset.spec.penalty,
        gamma=dataset.spec.gamma,
        working_set_size=64,
        share_kernel_values=share_kernel,
        share_support_vectors=share_sv,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        clf.fit(dataset.x_train, dataset.y_train)
        clf.predict_proba(dataset.x_test)
    return clf


def build_rows() -> dict[str, dict[str, float]]:
    rows: dict[str, dict[str, float]] = {}
    for share_kernel, share_sv, label in [
        (True, True, "both shared"),
        (True, False, "kernel only"),
        (False, True, "SV only"),
        (False, False, "none shared"),
    ]:
        clf = run_variant(share_kernel, share_sv)
        rows[label] = {
            "train(s)": clf.training_report_.simulated_seconds,
            "predict(s)": clf.prediction_report_.simulated_seconds,
            "GFLOPs": clf.training_report_.counters.flops / 1e9,
            "bias": clf.model_.bias_of_last_svm,
        }
    return rows


def test_ablation_sharing(benchmark):
    rows = common.run_benchmark_once(benchmark, build_rows)
    text = format_table(
        rows,
        ["train(s)", "predict(s)", "GFLOPs", "bias"],
        title=f"Ablation — kernel/SV sharing on {DATASET}",
        row_label="variant",
    )
    common.record_table("ablation sharing", text, metrics=rows)
    # Kernel sharing reduces training FLOPs.
    assert rows["both shared"]["GFLOPs"] < rows["none shared"]["GFLOPs"]
    # SV sharing reduces prediction time substantially on 20 classes.
    assert rows["both shared"]["predict(s)"] < 0.7 * rows["kernel only"]["predict(s)"]
    # The classifier itself is unchanged.
    biases = [row["bias"] for row in rows.values()]
    assert max(biases) - min(biases) < 5e-3


if __name__ == "__main__":
    print(
        format_table(
            build_rows(),
            ["train(s)", "predict(s)", "GFLOPs", "bias"],
            title=f"Ablation — kernel/SV sharing on {DATASET}",
            row_label="variant",
        )
    )
