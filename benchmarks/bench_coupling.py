"""Batched vs per-instance prediction probability math (this repo's win).

The paper launches the sigmoid and the Eq.-15 coupling for all test
instances concurrently (Section 3.2 Phase (iii), Figure 12); the batched
``couple_batch`` realises that on the host too — one einsum builds every
Q, one stacked elimination solves them, one engine charge covers the
batch.  This bench measures the win over the per-instance loop at
m=2000, k=10 and holds the two paths to float64 round-off parity.
"""

from __future__ import annotations

import pytest

from benchmarks import common
from benchmarks.emit_json import run_coupling
from repro.perf.speedup import format_table

pytestmark = pytest.mark.slow

MIN_WALL_SPEEDUP = 5.0
MAX_PARITY_ERROR = 1e-12


def build_rows() -> dict[str, dict[str, float]]:
    metrics = run_coupling()
    return {"m=2000 k=10": metrics}


def test_coupling_batching_speedup(benchmark):
    rows = common.run_benchmark_once(benchmark, build_rows)
    metrics = rows["m=2000 k=10"]
    text = format_table(
        rows,
        [
            "loop_wall_seconds",
            "batched_wall_seconds",
            "wall_speedup",
            "simulated_speedup",
            "max_abs_parity_error",
        ],
        title="Batched coupling + sigmoid vs per-instance loop",
        row_label="problem",
    )
    common.record_table("coupling", text, metrics=metrics)
    assert metrics["wall_speedup"] >= MIN_WALL_SPEEDUP
    assert metrics["max_abs_parity_error"] <= MAX_PARITY_ERROR
    assert metrics["simulated_speedup"] > 1.0


if __name__ == "__main__":
    for name, value in sorted(build_rows()["m=2000 k=10"].items()):
        print(f"{name:28s} {value:.6g}")
