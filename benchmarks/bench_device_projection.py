"""Device projection: GMP-SVM on a V100-class device.

Section 4.1's closing remark: "Better GPUs such as V100 should further
improve the efficiency of GMP-SVM, due to higher memory bandwidth and
more cores."  The cost model makes that a measurable statement: same
algorithm, same workloads, V100 constants (900 GB/s, 80 SMs, 14.8 TFLOPS)
against the P100's (720 GB/s, 56 SMs, 9.3 TFLOPS).
"""

from __future__ import annotations

import warnings

from repro import GMPSVC
from repro.data import load_dataset
from repro.gpusim import scaled_tesla_p100, scaled_tesla_v100
from repro.perf.speedup import format_table

import pytest

from benchmarks import common

pytestmark = pytest.mark.slow

DATASETS = ["adult", "mnist", "news20"]


def run_on(device, dataset_name: str):
    dataset = load_dataset(dataset_name)
    clf = GMPSVC(
        C=dataset.spec.penalty, gamma=dataset.spec.gamma, device=device
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        clf.fit(dataset.x_train, dataset.y_train)
        clf.predict_proba(dataset.x_test)
    return (
        clf.training_report_.simulated_seconds,
        clf.prediction_report_.simulated_seconds,
        clf.model_.bias_of_last_svm,
    )


def build_rows() -> dict[str, dict[str, float]]:
    rows: dict[str, dict[str, float]] = {}
    for dataset in DATASETS:
        p100_train, p100_predict, p100_bias = run_on(scaled_tesla_p100(), dataset)
        v100_train, v100_predict, v100_bias = run_on(scaled_tesla_v100(), dataset)
        # Same classifier on any device (device memory alters cache-eviction
        # batch shapes, so agreement is to solver tolerance, not bitwise).
        assert abs(p100_bias - v100_bias) < 5e-3
        rows[dataset] = {
            "P100 train": p100_train,
            "V100 train": v100_train,
            "train speedup": p100_train / v100_train,
            "predict speedup": p100_predict / v100_predict,
        }
    return rows


def test_device_projection(benchmark):
    rows = common.run_benchmark_once(benchmark, build_rows)
    text = format_table(
        rows,
        ["P100 train", "V100 train", "train speedup", "predict speedup"],
        title="Device projection — GMP-SVM on V100 vs P100 (simulated)",
        row_label="dataset",
    )
    common.record_table("device projection v100", text, metrics=rows)
    for dataset, row in rows.items():
        # "should further improve the efficiency" — bounded by the
        # bandwidth (1.25x) / FLOPS (1.6x) ratios.
        assert 1.05 < row["train speedup"] < 1.8
        assert 1.05 < row["predict speedup"] < 1.8


if __name__ == "__main__":
    print(
        format_table(
            build_rows(),
            ["P100 train", "V100 train", "train speedup", "predict speedup"],
            title="Device projection — GMP-SVM on V100 vs P100 (simulated)",
            row_label="dataset",
        )
    )
