"""Sharded cluster training across 1, 2 and 4 simulated devices.

The one-against-one decomposition's 45 pairwise problems (k = 10) are the
unit of distribution: ``train_multiclass_sharded`` places them on the
cluster's devices, runs the interleaved wave driver per device, and merges
the per-device binary models back over the peer links.  This bench trains
the same workload at every device count and reports:

- the cluster makespan (busiest device's simulated timeline) and its
  speedup over the single-device driver;
- per-device utilization (busy time over makespan) and interconnect
  transfer volume;
- a bitwise model-parity flag — sharding must reproduce the single-device
  model exactly, for every device count and placement strategy.

The compute half of a device's wave makespan is the shared per-device
resource, so splitting 45 compute-bound solves across 4 devices divides
the dominant term by ~4; the floor asserted here (``MIN_SPEEDUP_4DEV``)
leaves room for the non-dividing parts (per-device transfers, latency
chains, the merge).  All asserted numbers are simulated and exactly
reproducible; the committed ``BENCH_distributed.json`` baseline gates
them in CI.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterSpec, TrainerConfig, train_multiclass_sharded
from repro.core.trainer import train_multiclass
from repro.data import gaussian_blobs
from repro.gpusim.device import scaled_tesla_p100
from repro.kernels.functions import kernel_from_name
from repro.perf.speedup import format_table

from benchmarks import common

pytestmark = pytest.mark.slow

N = 1000
N_FEATURES = 16
N_CLASSES = 10
PENALTY = 1.0
GAMMA = 0.3
WORKING_SET = 32
DEVICE_COUNTS = (1, 2, 4)
MIN_SPEEDUP_4DEV = 2.5


def _workload():
    x, y = gaussian_blobs(
        n=N, n_features=N_FEATURES, n_classes=N_CLASSES, seed=11
    )
    kernel = kernel_from_name("gaussian", gamma=GAMMA)
    config = TrainerConfig(
        device=scaled_tesla_p100(), working_set_size=WORKING_SET
    )
    return x, y, kernel, config


def models_bitwise_equal(model_a, model_b) -> bool:
    """Identical pairwise records down to the last bit."""
    for rec_a, rec_b in zip(model_a.records, model_b.records):
        if not (
            np.array_equal(rec_a.coefficients, rec_b.coefficients)
            and np.array_equal(rec_a.global_sv_indices, rec_b.global_sv_indices)
            and rec_a.bias == rec_b.bias
        ):
            return False
    return True


def build_rows() -> dict[str, dict[str, float]]:
    x, y, kernel, config = _workload()
    model_single, report_single = train_multiclass(config, x, y, kernel, PENALTY)
    single_s = report_single.simulated_seconds

    rows: dict[str, dict[str, float]] = {
        "single": {
            "sim(s)": single_s,
            "speedup": 1.0,
            "min_util": 1.0,
            "xfer(KB)": 0.0,
            "parity": 1.0,
        }
    }
    for n_devices in DEVICE_COUNTS:
        cluster = ClusterSpec(
            device=scaled_tesla_p100(), n_devices=n_devices
        )
        model, report = train_multiclass_sharded(
            config, cluster, x, y, kernel, PENALTY, placement="affinity"
        )
        rows[f"{n_devices}dev"] = {
            "sim(s)": report.simulated_seconds,
            "speedup": single_s / report.simulated_seconds,
            "min_util": min(
                entry["utilization"] for entry in report.per_device
            ),
            "xfer(KB)": report.transfer_bytes_total / 1e3,
            "parity": float(models_bitwise_equal(model_single, model)),
        }

    # The naive placement must reproduce the model bit-for-bit too.
    cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=4)
    model_rr, report_rr = train_multiclass_sharded(
        config, cluster, x, y, kernel, PENALTY, placement="round_robin"
    )
    rows["4dev_rrobin"] = {
        "sim(s)": report_rr.simulated_seconds,
        "speedup": single_s / report_rr.simulated_seconds,
        "min_util": min(entry["utilization"] for entry in report_rr.per_device),
        "xfer(KB)": report_rr.transfer_bytes_total / 1e3,
        "parity": float(models_bitwise_equal(model_single, model_rr)),
    }
    return rows


def _render(rows) -> str:
    return format_table(
        rows,
        ["sim(s)", "speedup", "min_util", "xfer(KB)", "parity"],
        title=f"Sharded cluster training — k={N_CLASSES} synthetic",
        row_label="cluster",
    )


def test_distributed(benchmark):
    rows = common.run_benchmark_once(benchmark, build_rows)
    common.record_table("distributed", _render(rows), metrics=rows)
    # Sharding must never change the trained model...
    assert all(row["parity"] == 1.0 for row in rows.values())
    # ...and four devices must beat the ISSUE floor on the timeline.
    assert rows["4dev"]["speedup"] >= MIN_SPEEDUP_4DEV
    # Affinity placement should not lose to naive round-robin.
    assert rows["4dev"]["sim(s)"] <= rows["4dev_rrobin"]["sim(s)"]


if __name__ == "__main__":
    print(_render(build_rows()))
