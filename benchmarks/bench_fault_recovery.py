"""Fault injection and recovery: checkpointed resume + degraded serving.

The fault-tolerance contract (DESIGN.md §15): losing a device mid-train
costs bounded *time*, never *answers* — survivors restore the lost
problems from the last checkpoint and the final model is bitwise the
fault-free one; losing a serving replica costs an explicit 503 window,
never a silent wrong response, and a restored replica serves again with
zero failures.  This bench replays the committed
``BENCH_fault_recovery.json`` scenario and asserts those contracts
directly; CI gates the numeric metrics against the committed baseline.
"""

from __future__ import annotations

import pytest

from benchmarks import common
from benchmarks.emit_json import run_fault_recovery
from repro.perf.speedup import format_table

pytestmark = pytest.mark.slow

# Resuming a lost device's problems on the survivors may stretch the
# simulated makespan by at most this factor over a fault-free run paying
# the same checkpoint cadence — the recovery-cost headline.
MAX_MAKESPAN_INFLATION = 1.5


def build_rows() -> dict[str, dict[str, float]]:
    """Run the fault-recovery scenario once and shape it as a table."""
    metrics = run_fault_recovery()
    return {"4 devices, lose 1 at 50%": metrics}


def test_fault_recovery_contract(benchmark):
    """Recovery is bitwise, bounded, and never silently wrong."""
    rows = common.run_benchmark_once(benchmark, build_rows)
    metrics = rows["4 devices, lose 1 at 50%"]
    text = format_table(
        rows,
        [
            "fault_free_makespan_s",
            "faulted_makespan_s",
            "makespan_inflation_ratio",
            "recovered_problems",
            "resumed_from_checkpoint",
            "window_503s",
        ],
        title="Device loss mid-train + replica loss mid-serve",
        row_label="scenario",
    )
    common.record_table("fault_recovery", text, metrics=metrics)

    # The device was genuinely lost and its problems recovered from a
    # checkpoint, not replayed from scratch.
    assert metrics["devices_lost"] == 1.0
    assert metrics["recovered_problems"] >= 1.0
    assert metrics["resumed_from_checkpoint"] >= 1.0

    # Bitwise parity: the recovered model is the fault-free model.
    assert metrics["bitwise_mismatches"] == 0.0

    # Bounded recovery cost against the same checkpoint cadence.
    assert metrics["makespan_inflation_ratio"] <= MAX_MAKESPAN_INFLATION
    assert metrics["faulted_makespan_s"] > metrics["fault_free_makespan_s"]

    # Serving degradation is explicit and bounded: the dead lane's
    # batch 503s, nothing else fails, and every 200 is bitwise correct
    # — before, during, and after the replica loss.
    assert metrics["window_503s"] >= 1.0
    assert metrics["failed_requests"] == 0.0
    assert metrics["serving_mismatches"] == 0.0


if __name__ == "__main__":
    for name, value in sorted(
        build_rows()["4 devices, lose 1 at 50%"].items()
    ):
        print(f"{name:28s} {value:.6g}")
