"""Figure 10: GMP-SVM vs GPUSVM training time on the four binary datasets.

Paper shape: "GMP-SVM significantly outperforms GPUSVM in large datasets
... GPUSVM uses the dense data representation, which leads to higher
computation cost ... This is the key reason why GPUSVM is much slower
than GMP-SVM on the RCV1 dataset."  The penalty must be visibly worse on
the sparse high-dimensional datasets (RCV1, Real-sim) than on the
lower-dimensional ones (Adult, Webdata).
"""

from __future__ import annotations

from repro.perf.speedup import format_table

import pytest

from benchmarks import common

pytestmark = pytest.mark.slow


def build_rows() -> dict[str, dict[str, float]]:
    rows: dict[str, dict[str, float]] = {"gpusvm": {}, "gmp-svm": {}, "speedup": {}}
    for dataset in common.BINARY_DATASETS:
        gpusvm = common.run_system("gpusvm", dataset).train_seconds
        gmp = common.run_system("gmp-svm", dataset).train_seconds
        rows["gpusvm"][dataset] = gpusvm
        rows["gmp-svm"][dataset] = gmp
        rows["speedup"][dataset] = gpusvm / gmp
    return rows


def test_fig10_gpusvm(benchmark):
    rows = common.run_benchmark_once(benchmark, build_rows)
    text = format_table(
        rows,
        common.BINARY_DATASETS,
        title="Figure 10 — training time, GMP-SVM vs GPUSVM (simulated seconds)",
    )
    common.record_table("fig10 gpusvm", text, metrics=rows)
    speedups = rows["speedup"]
    for dataset in common.BINARY_DATASETS:
        assert speedups[dataset] > 1.0
    # The dense-representation penalty scales with the densification
    # blow-up: RCV1 (2048 dims, ~48 nnz/row) suffers far more than Adult
    # (123 dims, ~14 nnz/row) — the paper's RCV1 observation.
    assert speedups["rcv1"] > 1.5 * speedups["adult"]
    assert speedups["real-sim"] > 1.5 * speedups["adult"]


if __name__ == "__main__":
    print(
        format_table(
            build_rows(),
            common.BINARY_DATASETS,
            title="Figure 10 — training time, GMP-SVM vs GPUSVM (simulated seconds)",
        )
    )
