"""Figure 11: percentage of GMP-SVM training time per component.

Paper shape: "kernel value computation tends to dominate the whole
training process, and solving the subproblem is the second most expensive
process.  The other tasks consume roughly 20% of the total training
time."  At our reduced dataset scale the fixed per-round work shrinks
less than the kernel batches do, so the reproduction asserts the weaker
invariant that kernel values are a top-two component (EXPERIMENTS.md
discusses the gap quantitatively).
"""

from __future__ import annotations

from repro.perf import TRAIN_GROUPS
from repro.perf.speedup import format_table

import pytest

from benchmarks import common

pytestmark = pytest.mark.slow

COMPONENTS = ["kernel values", "subproblem", "other"]


def build_rows() -> dict[str, dict[str, float]]:
    rows: dict[str, dict[str, float]] = {}
    for dataset in common.BREAKDOWN_DATASETS:
        run = common.run_system("gmp-svm", dataset)
        fractions = run.classifier.training_report_.fraction_breakdown(TRAIN_GROUPS)
        rows[dataset] = {c: 100.0 * fractions.get(c, 0.0) for c in COMPONENTS}
    return rows


def test_fig11_train_breakdown(benchmark):
    rows = common.run_benchmark_once(benchmark, build_rows)
    text = format_table(
        rows,
        COMPONENTS,
        title="Figure 11 — GMP-SVM training time breakdown (%)",
        row_label="dataset",
    )
    common.record_table("fig11 training breakdown", text, metrics=rows)
    for dataset, fractions in rows.items():
        total = sum(fractions.values())
        assert abs(total - 100.0) < 1e-6
        ranked = sorted(fractions, key=fractions.get, reverse=True)
        assert "kernel values" in ranked[:2]
        assert fractions["kernel values"] > 15.0


if __name__ == "__main__":
    print(
        format_table(
            build_rows(),
            COMPONENTS,
            title="Figure 11 — GMP-SVM training time breakdown (%)",
            row_label="dataset",
        )
    )
