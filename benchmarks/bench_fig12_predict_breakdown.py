"""Figure 12: percentage of GMP-SVM prediction time per component.

Paper shape: "computing the decision values dominates the whole
prediction process.  In comparison, the cost of solving the optimization
problem (14) ... for obtaining the multi-class probability is
negligible."
"""

from __future__ import annotations

from repro.perf import PREDICT_GROUPS
from repro.perf.speedup import format_table

import pytest

from benchmarks import common

pytestmark = pytest.mark.slow

COMPONENTS = ["decision values", "sigmoid", "multi-class probability"]


def build_rows() -> dict[str, dict[str, float]]:
    rows: dict[str, dict[str, float]] = {}
    for dataset in common.BREAKDOWN_DATASETS:
        run = common.run_system("gmp-svm", dataset)
        fractions = run.classifier.prediction_report_.fraction_breakdown(
            PREDICT_GROUPS
        )
        rows[dataset] = {c: 100.0 * fractions.get(c, 0.0) for c in COMPONENTS}
    return rows


def test_fig12_predict_breakdown(benchmark):
    rows = common.run_benchmark_once(benchmark, build_rows)
    text = format_table(
        rows,
        COMPONENTS,
        title="Figure 12 — GMP-SVM prediction time breakdown (%)",
        row_label="dataset",
    )
    common.record_table("fig12 prediction breakdown", text, metrics=rows)
    for dataset, fractions in rows.items():
        dominant = max(fractions, key=fractions.get)
        assert dominant == "decision values"
        assert fractions["decision values"] > 50.0
        # "the cost of solving the optimization problem (14) ... is
        # negligible" — the batched coupling (one launch per test batch)
        # must keep it that way.
        assert fractions["multi-class probability"] < 20.0


if __name__ == "__main__":
    print(
        format_table(
            build_rows(),
            COMPONENTS,
            title="Figure 12 — GMP-SVM prediction time breakdown (%)",
            row_label="dataset",
        )
    )
