"""Figure 4: training speedup of GMP-SVM over the other implementations.

Paper shape: one to two orders of magnitude over LibSVM without OpenMP,
~10x over LibSVM with OpenMP, two to five times over the GPU baseline,
and three to ten times over CMP-SVM.
"""

from __future__ import annotations

from repro.perf import speedup_table

import pytest

from benchmarks import common

pytestmark = pytest.mark.slow

COMPARED = ["libsvm", "libsvm-openmp", "gpu-baseline", "cmp-svm"]


def build_table() -> str:
    reference = {
        d: common.run_system("gmp-svm", d).train_seconds
        for d in common.ALL_DATASETS
    }
    others = {
        system: {
            d: common.run_system(system, d).train_seconds
            for d in common.ALL_DATASETS
        }
        for system in COMPARED
    }
    table = speedup_table(reference, others)
    from repro.perf.speedup import format_table

    return format_table(
        table,
        common.ALL_DATASETS,
        title="Figure 4 — training speedup of GMP-SVM over other systems (x)",
    )


def test_fig4_train_speedup(benchmark):
    text = common.run_benchmark_once(benchmark, build_table)
    # run_system is cached per process, so re-reading the timings for the
    # machine-readable metrics costs nothing.
    speedups = {
        system: {
            d: common.run_system(system, d).train_seconds
            / common.run_system("gmp-svm", d).train_seconds
            for d in common.ALL_DATASETS
        }
        for system in COMPARED
    }
    common.record_table("fig4 training speedup", text, metrics=speedups)
    for dataset in common.ALL_DATASETS:
        gmp = common.run_system("gmp-svm", dataset).train_seconds
        assert common.run_system("libsvm", dataset).train_seconds / gmp > 10
        assert common.run_system("libsvm-openmp", dataset).train_seconds / gmp > 3
        assert common.run_system("gpu-baseline", dataset).train_seconds / gmp > 1.3
        assert common.run_system("cmp-svm", dataset).train_seconds / gmp > 1.5


if __name__ == "__main__":
    print(build_table())
