"""Figure 5: prediction speedup of GMP-SVM over the other implementations.

Paper shape: two orders of magnitude over LibSVM without OpenMP, >10x
over LibSVM with OpenMP; *no* speedup over the GPU baseline on the four
binary datasets (with one pair there is nothing to share — "GMP-SVM is in
fact the same as the GPU baseline when handling binary problems"), and
3-30x over the baseline on the multi-class datasets.
"""

from __future__ import annotations

from repro.perf import speedup_table
from repro.perf.speedup import format_table

import pytest

from benchmarks import common

pytestmark = pytest.mark.slow

COMPARED = ["libsvm", "libsvm-openmp", "gpu-baseline", "cmp-svm"]


def build_table() -> str:
    reference = {
        d: common.run_system("gmp-svm", d).predict_seconds
        for d in common.ALL_DATASETS
    }
    others = {
        system: {
            d: common.run_system(system, d).predict_seconds
            for d in common.ALL_DATASETS
        }
        for system in COMPARED
    }
    return format_table(
        speedup_table(reference, others),
        common.ALL_DATASETS,
        title="Figure 5 — prediction speedup of GMP-SVM over other systems (x)",
    )


def test_fig5_predict_speedup(benchmark):
    text = common.run_benchmark_once(benchmark, build_table)
    speedups = {
        system: {
            d: common.run_system(system, d).predict_seconds
            / common.run_system("gmp-svm", d).predict_seconds
            for d in common.ALL_DATASETS
        }
        for system in COMPARED
    }
    common.record_table("fig5 prediction speedup", text, metrics=speedups)
    for dataset in common.BINARY_DATASETS:
        gmp = common.run_system("gmp-svm", dataset).predict_seconds
        baseline = common.run_system("gpu-baseline", dataset).predict_seconds
        # Binary problems: GMP-SVM == GPU baseline at prediction.
        assert abs(baseline - gmp) / gmp < 0.05
    for dataset in ("mnist", "news20", "cifar-10"):
        gmp = common.run_system("gmp-svm", dataset).predict_seconds
        baseline = common.run_system("gpu-baseline", dataset).predict_seconds
        assert baseline / gmp > 1.4  # sharing pays off with many pairs
    for dataset in common.ALL_DATASETS:
        gmp = common.run_system("gmp-svm", dataset).predict_seconds
        assert common.run_system("libsvm", dataset).predict_seconds / gmp > 10


if __name__ == "__main__":
    print(build_table())
