"""Figure 6: training time as the GPU buffer (working set) size varies.

"Changing the GPU buffer size is effectively varying the size of the
working set."  Paper shape: medium buffers are competitive; larger
buffers generally help (more kernel-value reuse) until the working set
starts to carry many useless instances.
"""

from __future__ import annotations

import warnings

from repro import GMPSVC
from repro.data import load_dataset
from repro.perf.speedup import format_table

import pytest

from benchmarks import common

pytestmark = pytest.mark.slow

BUFFER_SIZES = [32, 64, 128, 256, 512]


def train_time(dataset_name: str, buffer_rows: int) -> float:
    dataset = load_dataset(dataset_name)
    clf = GMPSVC(
        C=dataset.spec.penalty,
        gamma=dataset.spec.gamma,
        working_set_size=buffer_rows,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        clf.fit(dataset.x_train, dataset.y_train)
    return clf.training_report_.simulated_seconds


def build_table() -> dict[str, dict[str, float]]:
    rows: dict[str, dict[str, float]] = {}
    for dataset in common.SENSITIVITY_DATASETS:
        rows[dataset] = {
            f"bs={bs}": train_time(dataset, bs) for bs in BUFFER_SIZES
        }
    return rows


def test_fig6_buffer_size(benchmark):
    rows = common.run_benchmark_once(benchmark, build_table)
    text = format_table(
        rows,
        [f"bs={bs}" for bs in BUFFER_SIZES],
        title="Figure 6 — training time vs GPU buffer size (simulated seconds)",
        row_label="dataset",
    )
    common.record_table("fig6 buffer size", text, metrics=rows)
    for dataset, timings in rows.items():
        best = min(timings.values())
        # Medium buffers are competitive with the best configuration...
        assert timings["bs=128"] <= 2.5 * best
        assert timings["bs=256"] <= 2.5 * best
        # ...and the smallest buffer is never the winner.
        assert timings["bs=32"] > best


if __name__ == "__main__":
    rows = build_table()
    print(
        format_table(
            rows,
            [f"bs={bs}" for bs in BUFFER_SIZES],
            title="Figure 6 — training time vs GPU buffer size (simulated seconds)",
            row_label="dataset",
        )
    )
