"""Figure 7: training time as q (new violating instances per round) varies.

Paper shape: "q should be about 1/2 of the GPU buffer size.  This is
because large q results in flushing out all the kernel values in the GPU
buffer, while small q leads to more expensive cost per kernel value."
"""

from __future__ import annotations

import warnings

from repro import GMPSVC
from repro.data import load_dataset
from repro.perf.speedup import format_table

import pytest

from benchmarks import common

pytestmark = pytest.mark.slow

BUFFER_ROWS = 256
Q_VALUES = [16, 32, 64, 128, 256]  # up to full replacement


def train_time(dataset_name: str, q: int) -> float:
    dataset = load_dataset(dataset_name)
    clf = GMPSVC(
        C=dataset.spec.penalty,
        gamma=dataset.spec.gamma,
        working_set_size=BUFFER_ROWS,
        new_per_round=q,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        clf.fit(dataset.x_train, dataset.y_train)
    return clf.training_report_.simulated_seconds


def build_table() -> dict[str, dict[str, float]]:
    return {
        dataset: {f"q={q}": train_time(dataset, q) for q in Q_VALUES}
        for dataset in common.SENSITIVITY_DATASETS
    }


def test_fig7_violators(benchmark):
    rows = common.run_benchmark_once(benchmark, build_table)
    text = format_table(
        rows,
        [f"q={q}" for q in Q_VALUES],
        title=(
            f"Figure 7 — training time vs q (buffer = {BUFFER_ROWS} rows, "
            "simulated seconds)"
        ),
        row_label="dataset",
    )
    common.record_table("fig7 new violators", text, metrics=rows)
    for dataset, timings in rows.items():
        best = min(timings.values())
        # q = bs/2 is competitive with the best setting on every dataset.
        assert timings["q=128"] <= 2.0 * best


if __name__ == "__main__":
    rows = build_table()
    print(
        format_table(
            rows,
            [f"q={q}" for q in Q_VALUES],
            title=(
                f"Figure 7 — training time vs q (buffer = {BUFFER_ROWS} rows, "
                "simulated seconds)"
            ),
            row_label="dataset",
        )
    )
