"""Figure 8: GMP-SVM vs GTSVM training time on all nine datasets.

Paper shape: "GMP-SVM consistently outperforms GTSVM often by about five
times on all the nine datasets."
"""

from __future__ import annotations

from repro.perf.speedup import format_table

import pytest

from benchmarks import common

pytestmark = pytest.mark.slow


def build_rows() -> dict[str, dict[str, float]]:
    rows: dict[str, dict[str, float]] = {"gtsvm": {}, "gmp-svm": {}, "speedup": {}}
    for dataset in common.ALL_DATASETS:
        gtsvm = common.run_system("gtsvm", dataset).train_seconds
        gmp = common.run_system("gmp-svm", dataset).train_seconds
        rows["gtsvm"][dataset] = gtsvm
        rows["gmp-svm"][dataset] = gmp
        rows["speedup"][dataset] = gtsvm / gmp
    return rows


def test_fig8_gtsvm(benchmark):
    rows = common.run_benchmark_once(benchmark, build_rows)
    text = format_table(
        rows,
        common.ALL_DATASETS,
        title="Figure 8 — training time, GMP-SVM vs GTSVM (simulated seconds)",
    )
    common.record_table("fig8 gtsvm", text, metrics=rows)
    for dataset in common.ALL_DATASETS:
        assert rows["speedup"][dataset] > 1.5  # GMP-SVM consistently wins
    import numpy as np

    assert np.median(list(rows["speedup"].values())) > 3.0  # "about five times"


if __name__ == "__main__":
    print(
        format_table(
            build_rows(),
            common.ALL_DATASETS,
            title="Figure 8 — training time, GMP-SVM vs GTSVM (simulated seconds)",
        )
    )
