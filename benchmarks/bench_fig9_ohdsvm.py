"""Figure 9: GMP-SVM vs OHD-SVM training time on the four binary datasets.

Paper shape: "GMP-SVM consistently outperforms OHD-SVM, thanks to our
optimization on the binary SVM training level" (no buffer reuse or
retained-half selection in OHD-SVM's wholesale working-set replacement).
"""

from __future__ import annotations

from repro.perf.speedup import format_table

import pytest

from benchmarks import common

pytestmark = pytest.mark.slow


def build_rows() -> dict[str, dict[str, float]]:
    rows: dict[str, dict[str, float]] = {"ohd-svm": {}, "gmp-svm": {}, "speedup": {}}
    for dataset in common.BINARY_DATASETS:
        ohd = common.run_system("ohd-svm", dataset).train_seconds
        gmp = common.run_system("gmp-svm", dataset).train_seconds
        rows["ohd-svm"][dataset] = ohd
        rows["gmp-svm"][dataset] = gmp
        rows["speedup"][dataset] = ohd / gmp
    return rows


def test_fig9_ohdsvm(benchmark):
    rows = common.run_benchmark_once(benchmark, build_rows)
    text = format_table(
        rows,
        common.BINARY_DATASETS,
        title="Figure 9 — training time, GMP-SVM vs OHD-SVM (simulated seconds)",
    )
    common.record_table("fig9 ohdsvm", text, metrics=rows)
    for dataset in common.BINARY_DATASETS:
        assert rows["speedup"][dataset] > 1.0  # consistent win


if __name__ == "__main__":
    print(
        format_table(
            build_rows(),
            common.BINARY_DATASETS,
            title="Figure 9 — training time, GMP-SVM vs OHD-SVM (simulated seconds)",
        )
    )
