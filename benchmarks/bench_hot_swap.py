"""Zero-downtime model lifecycle: hot swap and warm-start retraining.

The lifecycle contract (ISSUE acceptance criteria): swapping a new model
into a live dispatcher mid-traffic loses nothing — zero failed requests,
and every response bitwise equal to what a cold restart of the correct
model would have served — while the swap-window p99 stays within a small
factor of steady state; and warm-starting the SMO solver from the prior
model's support vectors converges in measurably fewer iterations than a
cold retrain.  This bench replays the committed ``BENCH_hot_swap.json``
scenario and asserts those contracts directly; CI gates the numeric
metrics against the committed baseline.
"""

from __future__ import annotations

import pytest

from benchmarks import common
from benchmarks.emit_json import run_hot_swap
from repro.perf.speedup import format_table

pytestmark = pytest.mark.slow

# Swap-window p99 must stay within this factor of the steady-state p99
# over the same request indices — the zero-downtime headline.
MAX_SWAP_P99_DEGRADATION = 3.0
# Warm-start SMO must converge in measurably fewer iterations than a
# cold retrain on the grown dataset.
MAX_WARM_ITERATION_RATIO = 0.9


def build_rows() -> dict[str, dict[str, float]]:
    """Run the lifecycle scenario once and shape it as a result table."""
    metrics = run_hot_swap()
    return {"2 workers, max_batch=8": metrics}


def test_hot_swap_lifecycle_contract(benchmark):
    """Swap loses nothing; warm start beats cold retrain."""
    rows = common.run_benchmark_once(benchmark, build_rows)
    metrics = rows["2 workers, max_batch=8"]
    text = format_table(
        rows,
        [
            "steady_window_p99_s",
            "swap_window_p99_s",
            "swap_p99_degradation_ratio",
            "swap_drain_window_s",
            "swap_drained_requests",
            "warm_iteration_ratio",
        ],
        title="Hot swap under live traffic + warm-start retrain",
        row_label="server",
    )
    common.record_table("hot_swap", text, metrics=metrics)

    # Zero-downtime correctness: no request fails, and every response is
    # bitwise what a cold restart of the right model would have served.
    assert metrics["failed_requests"] == 0.0
    assert metrics["bitwise_mismatches"] == 0.0

    # The flip costs at most a drained in-flight batch, never a tail blowup.
    assert (
        metrics["swap_p99_degradation_ratio"] <= MAX_SWAP_P99_DEGRADATION
    )
    assert metrics["swap_drain_window_s"] > 0.0

    # Warm start genuinely resumes: measurably fewer SMO iterations.
    assert metrics["warm_iteration_ratio"] <= MAX_WARM_ITERATION_RATIO
    assert metrics["warm_iterations"] < metrics["cold_iterations"]


if __name__ == "__main__":
    for name, value in sorted(build_rows()["2 workers, max_batch=8"].items()):
        print(f"{name:28s} {value:.6g}")
