"""HTTP serving under overload: graceful shedding and latency SLOs.

The admission-control contract (ISSUE acceptance criteria): at 2x
sustained overload the server sheds load *gracefully* — the accepted
stream's p99 latency stays within 3x the uncontended p99, every shed
request gets an explicit 429/503 verdict (never a hang or a silent
drop), and the whole run is deterministic on the simulated clock.  This
bench replays the committed ``BENCH_http_serving.json`` scenario —
calibration, an uncontended run at 0.25x capacity, a steady 2x overload,
and a 4x burst wave — and asserts those contracts directly; CI gates the
numeric metrics against the committed baseline.
"""

from __future__ import annotations

import pytest

from benchmarks import common
from benchmarks.emit_json import run_http_serving
from repro.perf.speedup import format_table

pytestmark = pytest.mark.slow

# Accepted p99 at 2x overload must stay within this factor of the
# uncontended p99 — the headline latency-SLO contract.
MAX_P99_DEGRADATION = 3.0
# Under 2x offered load the server must refuse roughly half the stream;
# a shed rate below this means admission control is not engaging.
MIN_OVERLOAD_SHED_RATE = 0.25
# Batched dispatch should keep accepted throughput near calibrated
# capacity even while shedding.
MIN_OVERLOAD_CAPACITY_FRACTION = 0.5


def build_rows() -> dict[str, dict[str, float]]:
    metrics = run_http_serving()
    return {"2 workers, max_batch=16": metrics}


def test_http_serving_overload_contract(benchmark):
    rows = common.run_benchmark_once(benchmark, build_rows)
    metrics = rows["2 workers, max_batch=16"]
    text = format_table(
        rows,
        [
            "capacity_rps",
            "uncontended_latency_p99_s",
            "overload_latency_p99_s",
            "p99_degradation_ratio",
            "overload_shed_rate",
            "overload_shed_429",
            "overload_shed_503",
        ],
        title="HTTP serving: 2x overload vs uncontended",
        row_label="server",
    )
    common.record_table("http_serving", text, metrics=metrics)

    # Uncontended traffic is never shed and dispatches eagerly.
    assert metrics["uncontended_shed_rate"] == 0.0
    assert metrics["uncontended_mean_batch_size"] < 4.0

    # Graceful shedding at 2x overload: accepted p99 within 3x of the
    # uncontended p99, every refusal an explicit 429 or 503.
    assert metrics["overload_factor"] == 2.0
    assert metrics["p99_degradation_ratio"] <= MAX_P99_DEGRADATION
    assert metrics["all_sheds_explicit"] == 1.0
    assert metrics["overload_shed_rate"] >= MIN_OVERLOAD_SHED_RATE
    # Both shed families engage: per-tenant rate caps (429) and queue
    # overload (503).
    assert metrics["overload_shed_429"] > 0
    assert metrics["overload_shed_503"] > 0

    # Shedding protects goodput: the accepted stream still flows near
    # calibrated capacity, with batching amortizing the contention.
    assert (
        metrics["overload_throughput_rps"]
        >= MIN_OVERLOAD_CAPACITY_FRACTION * metrics["capacity_rps"]
    )
    assert metrics["overload_mean_batch_size"] > metrics["uncontended_mean_batch_size"]

    # Byte-identical decisions and latencies across repeated runs.
    assert metrics["deterministic"] == 1.0


if __name__ == "__main__":
    for name, value in sorted(build_rows()["2 workers, max_batch=16"].items()):
        print(f"{name:28s} {value:.6g}")
