"""Extension: pairwise coupling vs one-vs-all on the multi-class datasets.

The paper justifies pairwise coupling by Hsu & Lin's comparison and cites
Rifkin & Klautau's defence of one-vs-all (Section 5) without measuring it.
This bench runs the comparison on the reproduction's multi-class
workloads: accuracy of both decompositions and their simulated training
cost (one-vs-all trains k SVMs, but each spans the *whole* training set,
so it is usually slower despite training fewer classifiers).
"""

from __future__ import annotations

import warnings

from repro import GMPSVC
from repro.data import load_dataset
from repro.perf.speedup import format_table

import pytest

from benchmarks import common

pytestmark = pytest.mark.slow

DATASETS = ["connect-4", "mnist", "news20"]


def run_variant(dataset_name: str, decomposition: str):
    dataset = load_dataset(dataset_name)
    clf = GMPSVC(
        C=dataset.spec.penalty,
        gamma=dataset.spec.gamma,
        decomposition=decomposition,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        clf.fit(dataset.x_train, dataset.y_train)
        accuracy = clf.score(dataset.x_test, dataset.y_test)
    return clf.training_report_.simulated_seconds, accuracy, len(clf.model_.records)


def build_rows() -> dict[str, dict[str, float]]:
    rows: dict[str, dict[str, float]] = {}
    for dataset in DATASETS:
        ovo_time, ovo_accuracy, ovo_svms = run_variant(dataset, "ovo")
        ova_time, ova_accuracy, ova_svms = run_variant(dataset, "ova")
        rows[dataset] = {
            "ovo SVMs": float(ovo_svms),
            "ova SVMs": float(ova_svms),
            "ovo train(s)": ovo_time,
            "ova train(s)": ova_time,
            "ovo acc": ovo_accuracy,
            "ova acc": ova_accuracy,
        }
    return rows


def test_ova_vs_ovo(benchmark):
    rows = common.run_benchmark_once(benchmark, build_rows)
    text = format_table(
        rows,
        ["ovo SVMs", "ova SVMs", "ovo train(s)", "ova train(s)",
         "ovo acc", "ova acc"],
        title="Extension — pairwise (paper) vs one-vs-all decomposition",
        row_label="dataset",
    )
    common.record_table("extension ova vs ovo", text, metrics=rows)
    for dataset, row in rows.items():
        # Both decompositions produce competent classifiers; neither wins
        # uniformly (Hsu & Lin favour pairwise, Rifkin & Klautau defend
        # one-vs-all — our measurements show the literature's ambiguity:
        # one-vs-all edges ahead on connect-4, pairwise elsewhere).
        assert row["ovo acc"] > 0.7 and row["ova acc"] > 0.7
        assert abs(row["ovo acc"] - row["ova acc"]) < 0.1
        # One-vs-all trains fewer SVMs but each spans the whole training
        # set, costing more in total — part of why the paper uses pairwise.
        assert row["ova train(s)"] > row["ovo train(s)"]


if __name__ == "__main__":
    print(
        format_table(
            build_rows(),
            ["ovo SVMs", "ova SVMs", "ovo train(s)", "ova train(s)",
             "ovo acc", "ova acc"],
            title="Extension — pairwise (paper) vs one-vs-all decomposition",
            row_label="dataset",
        )
    )
