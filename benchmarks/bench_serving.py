"""Warm sealed-session serving vs cold per-request prediction.

The serving layer's pitch is amortization: seal the model once (pool
transfer, resident norms, stacked sigmoids) and fuse small requests into
batched dispatches, instead of paying the full one-shot pipeline per
request.  This bench replays m=2000 single-instance probability requests
both ways and holds the warm path to >= 2x wall throughput and *bitwise*
result parity.  The simulated-time side (speedup, p50/p99 latency, batch
shape) is deterministic and gated by the committed
``benchmarks/baselines/BENCH_serving.json``.
"""

from __future__ import annotations

import pytest

from benchmarks import common
from benchmarks.emit_json import run_serving
from repro.perf.speedup import format_table

pytestmark = pytest.mark.slow

MIN_WALL_SPEEDUP = 2.0


def build_rows() -> dict[str, dict[str, float]]:
    metrics = run_serving()
    return {"m=2000 max_batch=32": metrics}


def test_warm_serving_speedup(benchmark):
    rows = common.run_benchmark_once(benchmark, build_rows)
    metrics = rows["m=2000 max_batch=32"]
    text = format_table(
        rows,
        [
            "cold_wall_requests_per_s",
            "warm_wall_requests_per_s",
            "wall_speedup",
            "simulated_speedup",
            "latency_p50_simulated_s",
            "latency_p99_simulated_s",
        ],
        title="Micro-batched warm serving vs cold per-request prediction",
        row_label="workload",
    )
    common.record_table("serving", text, metrics=metrics)
    assert metrics["bitwise_parity"] == 1.0
    assert metrics["wall_speedup"] >= MIN_WALL_SPEEDUP
    assert metrics["simulated_speedup"] > 1.0
    assert metrics["latency_p99_simulated_s"] >= metrics["latency_p50_simulated_s"]


if __name__ == "__main__":
    for name, value in sorted(build_rows()["m=2000 max_batch=32"].items()):
        print(f"{name:28s} {value:.6g}")
