"""Hyper-parameter sweep: classifier equivalence across C and gamma.

Section 4.1: "we also varied the hyper-parameters C from 0.01 to 100 and
gamma from 0.03 to 10 on all the datasets, and compared the
training/prediction errors and bias between LibSVM and GMP-SVM.  The
results again confirm that GMP-SVM and LibSVM produce identical
classifiers."  This bench runs that grid on two representative datasets.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro import GMPSVC
from repro.baselines import LibSVMClassifier
from repro.core.predictor import predict_labels_model
from repro.data import load_dataset
from repro.perf.speedup import format_table

import pytest

from benchmarks import common

pytestmark = pytest.mark.slow

C_VALUES = [0.01, 1.0, 100.0]
GAMMA_VALUES = [0.03, 0.5, 10.0]
DATASETS = ["adult", "connect-4"]


def compare(dataset_name: str, penalty: float, gamma: float) -> dict[str, float]:
    dataset = load_dataset(dataset_name)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        gmp = GMPSVC(C=penalty, gamma=gamma).fit(dataset.x_train, dataset.y_train)
        libsvm = LibSVMClassifier(C=penalty, gamma=gamma).fit(
            dataset.x_train, dataset.y_train
        )
        ours, _ = predict_labels_model(
            gmp._predictor_config(), gmp.model_, dataset.x_test,
            use_probability=False,
        )
        theirs, _ = predict_labels_model(
            libsvm._predictor_config(), libsvm.model_, dataset.x_test,
            use_probability=False,
        )
    return {
        "bias diff": abs(
            gmp.model_.bias_of_last_svm - libsvm.model_.bias_of_last_svm
        ),
        "err diff": abs(
            float(np.mean(ours != dataset.y_test))
            - float(np.mean(theirs != dataset.y_test))
        ),
    }


def build_rows() -> dict[str, dict[str, float]]:
    rows: dict[str, dict[str, float]] = {}
    for dataset in DATASETS:
        for penalty in C_VALUES:
            for gamma in GAMMA_VALUES:
                result = compare(dataset, penalty, gamma)
                rows[f"{dataset} C={penalty:g} g={gamma:g}"] = result
    return rows


def test_sweep_hyperparams(benchmark):
    rows = common.run_benchmark_once(benchmark, build_rows)
    text = format_table(
        rows,
        ["bias diff", "err diff"],
        title="Hyper-parameter sweep — LibSVM vs GMP-SVM classifier gap",
        row_label="configuration",
    )
    common.record_table("sweep hyperparameters", text, metrics=rows)
    for name, result in rows.items():
        assert result["bias diff"] < 1e-2, name
        assert result["err diff"] <= 0.01, name


if __name__ == "__main__":
    print(
        format_table(
            build_rows(),
            ["bias diff", "err diff"],
            title="Hyper-parameter sweep — LibSVM vs GMP-SVM classifier gap",
            row_label="configuration",
        )
    )
