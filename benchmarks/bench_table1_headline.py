"""Table 1: headline elapsed-time comparison on CIFAR-10 / MNIST / MNIST8M.

Paper shape: GMP-SVM fastest on both training and prediction; the GPU
baseline ~3x faster than LibSVM+OpenMP on training; LibSVM without OpenMP
slowest by 1-2 orders of magnitude.
"""

from __future__ import annotations

import pytest

from benchmarks import common

pytestmark = pytest.mark.slow

DATASETS = ["cifar-10", "mnist", "mnist8m"]


def build_table() -> str:
    rows: dict[str, dict[str, float]] = {}
    for system in common.MAIN_SYSTEMS:
        row: dict[str, float] = {}
        for dataset in DATASETS:
            run = common.run_system(system, dataset)
            row[f"{dataset}:train"] = run.train_seconds
            row[f"{dataset}:predict"] = run.predict_seconds
        rows[system] = row
    columns = [f"{d}:{phase}" for d in DATASETS for phase in ("train", "predict")]
    return common.seconds_table(
        rows, columns, title="Table 1 — headline elapsed time (simulated seconds)"
    )


def test_table1_headline(benchmark):
    text = common.run_benchmark_once(benchmark, build_table)
    metrics = {
        system: {
            f"{dataset}:{phase}": getattr(
                common.run_system(system, dataset), f"{phase}_seconds"
            )
            for dataset in DATASETS
            for phase in ("train", "predict")
        }
        for system in common.MAIN_SYSTEMS
    }
    common.record_table("table1 headline", text, metrics=metrics)
    # Shape assertions from the paper's narrative.
    for dataset in DATASETS:
        gmp = common.run_system("gmp-svm", dataset)
        for other in ("gpu-baseline", "cmp-svm", "libsvm-openmp", "libsvm"):
            run = common.run_system(other, dataset)
            assert run.train_seconds > gmp.train_seconds
            assert run.predict_seconds > gmp.predict_seconds


if __name__ == "__main__":
    print(build_table())
