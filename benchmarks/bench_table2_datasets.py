"""Table 2: the dataset summary, paper column vs scaled reproduction."""

from __future__ import annotations

from repro.data import DATASETS, load_dataset
from repro.sparse import ops as mops

import pytest

from benchmarks import common

pytestmark = pytest.mark.slow


def build_table() -> str:
    header = (
        f"{'dataset':<10}{'classes':>8}{'paper n':>11}{'ours n':>8}"
        f"{'paper d':>9}{'ours d':>8}{'density':>9}{'C':>8}{'gamma':>8}"
    )
    lines = ["Table 2 — datasets (paper vs scaled stand-in)", header, "-" * len(header)]
    for name, spec in DATASETS.items():
        dataset = load_dataset(name)
        data = dataset.x_train
        if hasattr(data, "density"):
            density = data.density
        else:
            import numpy as np

            density = float(np.count_nonzero(mops.to_dense(data))) / (
                data.shape[0] * data.shape[1]
            )
        lines.append(
            f"{name:<10}{spec.n_classes:>8}{spec.paper_cardinality:>11,}"
            f"{dataset.n_train:>8,}{spec.paper_dimension:>9,}"
            f"{spec.dimension:>8,}{density:>9.3f}{spec.penalty:>8g}"
            f"{spec.gamma:>8g}"
        )
    return "\n".join(lines)


def test_table2_datasets(benchmark):
    text = common.run_benchmark_once(benchmark, build_table)
    metrics = {
        name: {
            "classes": spec.n_classes,
            "paper_n": spec.paper_cardinality,
            "dimension": spec.dimension,
            "C": spec.penalty,
            "gamma": spec.gamma,
        }
        for name, spec in DATASETS.items()
    }
    common.record_table("table2 datasets", text, metrics=metrics)
    assert len(DATASETS) == 9
    # Paper hyper-parameters preserved exactly.
    assert DATASETS["adult"].penalty == 100.0 and DATASETS["adult"].gamma == 0.5
    assert DATASETS["mnist8m"].penalty == 1000.0


if __name__ == "__main__":
    print(build_table())
