"""Table 3: the full elapsed-time grid — 5 systems x 9 datasets, train + predict.

Paper shape: on every dataset, simulated time orders as
``gmp-svm < gpu-baseline <~ cmp-svm < libsvm-openmp << libsvm`` for
training (the baseline/CMP order varies per dataset in the paper too),
and GMP-SVM is fastest at prediction everywhere.
"""

from __future__ import annotations

import pytest

from benchmarks import common

pytestmark = pytest.mark.slow


def build_tables() -> tuple[str, str]:
    train_rows: dict[str, dict[str, float]] = {}
    predict_rows: dict[str, dict[str, float]] = {}
    for system in common.MAIN_SYSTEMS:
        train_rows[system] = {}
        predict_rows[system] = {}
        for dataset in common.ALL_DATASETS:
            run = common.run_system(system, dataset)
            train_rows[system][dataset] = run.train_seconds
            predict_rows[system][dataset] = run.predict_seconds
    train_text = common.seconds_table(
        train_rows,
        common.ALL_DATASETS,
        title="Table 3a — training time (simulated seconds)",
    )
    predict_text = common.seconds_table(
        predict_rows,
        common.ALL_DATASETS,
        title="Table 3b — prediction time (simulated seconds)",
    )
    return train_text, predict_text


def test_table3_elapsed(benchmark):
    train_text, predict_text = common.run_benchmark_once(benchmark, build_tables)
    common.record_table(
        "table3a training time",
        train_text,
        metrics={
            system: {
                d: common.run_system(system, d).train_seconds
                for d in common.ALL_DATASETS
            }
            for system in common.MAIN_SYSTEMS
        },
    )
    common.record_table(
        "table3b prediction time",
        predict_text,
        metrics={
            system: {
                d: common.run_system(system, d).predict_seconds
                for d in common.ALL_DATASETS
            }
            for system in common.MAIN_SYSTEMS
        },
    )
    for dataset in common.ALL_DATASETS:
        gmp = common.run_system("gmp-svm", dataset)
        libsvm = common.run_system("libsvm", dataset)
        openmp = common.run_system("libsvm-openmp", dataset)
        baseline = common.run_system("gpu-baseline", dataset)
        # GMP-SVM wins everywhere.
        assert gmp.train_seconds < baseline.train_seconds
        assert gmp.train_seconds < openmp.train_seconds
        assert gmp.predict_seconds <= baseline.predict_seconds * 1.001
        # OpenMP helps LibSVM; the GPU baseline beats LibSVM+OpenMP.
        assert openmp.train_seconds < libsvm.train_seconds
        assert baseline.train_seconds < openmp.train_seconds


if __name__ == "__main__":
    for text in build_tables():
        print(text)
        print()
