"""Table 4: classifier equivalence between LibSVM and GMP-SVM.

The paper's claim: identical training/prediction errors and equal bias
terms — "GMP-SVM produces the same SVM classifier as LibSVM".  Both
systems here run to the same KKT tolerance (eps = 1e-3), so biases agree
to about three decimals and decision-rule errors match exactly.
"""

from __future__ import annotations

import pytest

from benchmarks import common

pytestmark = pytest.mark.slow


def build_table() -> str:
    header = (
        f"{'dataset':<10}{'bias LibSVM':>13}{'bias GMP':>13}"
        f"{'train err L':>13}{'train err G':>13}"
        f"{'test err L':>12}{'test err G':>12}"
    )
    lines = [
        "Table 4 — final classifier comparison (LibSVM vs GMP-SVM)",
        header,
        "-" * len(header),
    ]
    for dataset in common.ALL_DATASETS:
        libsvm = common.run_system("libsvm", dataset)
        gmp = common.run_system("gmp-svm", dataset)
        lines.append(
            f"{dataset:<10}{libsvm.last_bias:>13.4f}{gmp.last_bias:>13.4f}"
            f"{libsvm.train_error:>12.2%} {gmp.train_error:>12.2%} "
            f"{libsvm.test_error:>11.2%} {gmp.test_error:>11.2%} "
        )
    return "\n".join(lines)


def test_table4_classifier(benchmark):
    text = common.run_benchmark_once(benchmark, build_table)
    metrics = {}
    for dataset in common.ALL_DATASETS:
        libsvm = common.run_system("libsvm", dataset)
        gmp = common.run_system("gmp-svm", dataset)
        metrics[dataset] = {
            "bias_libsvm": libsvm.last_bias,
            "bias_gmp": gmp.last_bias,
            "train_err_libsvm": libsvm.train_error,
            "train_err_gmp": gmp.train_error,
            "test_err_libsvm": libsvm.test_error,
            "test_err_gmp": gmp.test_error,
        }
    common.record_table("table4 classifier comparison", text, metrics=metrics)
    for dataset in common.ALL_DATASETS:
        libsvm = common.run_system("libsvm", dataset)
        gmp = common.run_system("gmp-svm", dataset)
        assert abs(libsvm.last_bias - gmp.last_bias) < 5e-3
        assert abs(libsvm.train_error - gmp.train_error) <= 2 / 1000
        assert abs(libsvm.test_error - gmp.test_error) <= 4 / 1000


if __name__ == "__main__":
    print(build_table())
