"""Interleaved wave driver vs the sequential pair loop (Section 3.3.2).

This bench times the *host* execution of the same k = 10 training
workload under the two concurrency realisations:

- ``sequential`` — the ablation path: the 45 pairwise solvers run one
  after another, each fetching its own kernel rows;
- ``interleaved`` — the wave driver: concurrently-admitted solvers step
  in lockstep and each wave's missing-row demand is fused into a single
  batched launch through the shared segment store.

Fusing matters on the host for the same reason it matters on the device:
the fixed-shape matmul tiling (``repro.sparse.ops.MATMUL_TILE_ROWS``)
means a handful of missing rows costs a full tile, so consolidating the
wave's demand into a few well-filled tiles replaces many mostly-padding
launches.  Both paths produce bitwise-identical models — the bench
asserts it — so the speedup is pure execution-level win.

Wall-clock numbers are load-sensitive, so each arm is timed
``REPS`` times alternately and the minima are compared; the simulated
seconds and concurrency stats come from the wave trace and are exactly
reproducible (those are what the committed baseline gates).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.trainer import TrainerConfig, train_multiclass
from repro.data import gaussian_blobs
from repro.gpusim.device import scaled_tesla_p100
from repro.kernels.functions import kernel_from_name
from repro.perf.speedup import format_table

from benchmarks import common

pytestmark = pytest.mark.slow

N = 1000
N_FEATURES = 384
N_CLASSES = 10
WORKING_SET = 48
BLOCKS_PER_SVM = 2
PENALTY = 10.0
REPS = 3
MIN_WALL_SPEEDUP = 1.5


def _fit(x, y, kernel, *, concurrent: bool):
    config = TrainerConfig(
        device=scaled_tesla_p100(),
        solver="batched",
        concurrent=concurrent,
        concurrency_mode="interleaved",
        share_kernel_values=True,
        probability=False,
        working_set_size=WORKING_SET,
        blocks_per_svm=BLOCKS_PER_SVM,
    )
    start = time.perf_counter()
    model, report = train_multiclass(config, x, y, kernel, PENALTY)
    return time.perf_counter() - start, model, report


def models_bitwise_equal(model_a, model_b) -> bool:
    """Identical pairwise records down to the last bit."""
    for rec_a, rec_b in zip(model_a.records, model_b.records):
        if not (
            np.array_equal(rec_a.coefficients, rec_b.coefficients)
            and np.array_equal(rec_a.global_sv_indices, rec_b.global_sv_indices)
            and rec_a.bias == rec_b.bias
            and rec_a.objective == rec_b.objective
        ):
            return False
    return True


def build_rows() -> dict[str, dict[str, float]]:
    x, y = gaussian_blobs(n=N, n_features=N_FEATURES, n_classes=N_CLASSES, seed=7)
    kernel = kernel_from_name("gaussian", gamma=1.0 / N_FEATURES)

    seq_walls, int_walls = [], []
    for _ in range(REPS):  # alternate arms so load drift cancels
        wall, model_seq, report_seq = _fit(x, y, kernel, concurrent=False)
        seq_walls.append(wall)
        wall, model_int, report_int = _fit(x, y, kernel, concurrent=True)
        int_walls.append(wall)

    assert report_int.schedule_source == "wave_trace"
    assert models_bitwise_equal(model_seq, model_int), (
        "interleaving changed the trained model"
    )
    return {
        "sequential": {
            "wall(s)": min(seq_walls),
            "sim(s)": report_seq.simulated_seconds,
            "max_conc": 1.0,
            "waves": 0.0,
        },
        "interleaved": {
            "wall(s)": min(int_walls),
            "sim(s)": report_int.simulated_seconds,
            "max_conc": float(report_int.max_concurrency),
            "waves": float(len(report_int.wave_trace)),
        },
    }


def test_train_interleave(benchmark):
    rows = common.run_benchmark_once(benchmark, build_rows)
    wall_speedup = rows["sequential"]["wall(s)"] / rows["interleaved"]["wall(s)"]
    sim_speedup = rows["sequential"]["sim(s)"] / rows["interleaved"]["sim(s)"]
    rows["interleaved"]["wall_x"] = wall_speedup
    rows["sequential"]["wall_x"] = 1.0
    text = format_table(
        rows,
        ["wall(s)", "wall_x", "sim(s)", "max_conc", "waves"],
        title=f"Interleaved wave driver — k={N_CLASSES} synthetic",
        row_label="mode",
    )
    common.record_table("train interleave", text, metrics=rows)
    # The fused wave driver must beat the sequential loop on the host...
    assert wall_speedup >= MIN_WALL_SPEEDUP
    # ...and on the simulated device timeline.
    assert sim_speedup > 1.0


if __name__ == "__main__":
    rows = build_rows()
    rows["sequential"]["wall_x"] = 1.0
    rows["interleaved"]["wall_x"] = (
        rows["sequential"]["wall(s)"] / rows["interleaved"]["wall(s)"]
    )
    print(
        format_table(
            rows,
            ["wall(s)", "wall_x", "sim(s)", "max_conc", "waves"],
            title=f"Interleaved wave driver — k={N_CLASSES} synthetic",
            row_label="mode",
        )
    )
