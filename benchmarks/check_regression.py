"""CI regression gate: diff a ``BENCH_*.json`` against a committed baseline.

Usage::

    python benchmarks/check_regression.py \
        --baseline benchmarks/baselines/BENCH_smoke.json \
        --candidate BENCH_smoke.json \
        --rtol 0.25

Every metric present in the baseline must exist in the candidate and
match within tolerance: ``|candidate - baseline| <= atol + rtol *
|baseline|``.  Per-metric tolerance overrides (``--metric-rtol
total_iterations=0.5``) accommodate metrics that legitimately wobble
across platforms.  On top of the relative diff, ``--slo NAME=MAX``
declares a *hard ceiling*: the candidate's ``NAME`` must exist and be
``<= MAX`` regardless of what the baseline says — the committed
latency-SLO contracts ride this flag in CI, so a baseline refresh can
never quietly ratchet a latency bound upward.  Exit status: 0 when all
metrics pass, 1 on any regression, missing metric, or SLO breach, 2 on
unreadable/invalid/mismatched input files.

Failures are always reported by metric name — a missing key or a
non-numeric value names the offending metric and file rather than
surfacing a raw ``KeyError``/``ValueError``, and a baseline/candidate
``schema_version`` mismatch is an explicit exit-2 error (comparing
across schema generations is meaningless).

The gate is deliberately symmetric — an *improvement* beyond tolerance
also fails, because it means the committed baseline is stale and should
be refreshed in the same PR that changed the performance.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

EXPECTED_KIND = "bench"


def _invalid_input(message: str) -> SystemExit:
    """Exit status 2: the inputs are unusable (vs 1, a real regression)."""
    print(f"check_regression: {message}", file=sys.stderr)
    return SystemExit(2)


def load_bench(path: object) -> dict:
    """Read one ``BENCH_*.json`` payload, validating its shape and schema."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise _invalid_input(f"cannot read {path}: {exc}")
    schema = payload.get("schema_version", "")
    if (
        payload.get("kind") != EXPECTED_KIND
        or not isinstance(schema, str)
        or not schema.startswith("repro.bench/")
    ):
        raise _invalid_input(
            f"{path} is not a repro.bench payload "
            f"(kind={payload.get('kind')!r}, schema={schema!r})"
        )
    if not isinstance(payload.get("metrics"), dict):
        raise _invalid_input(f"{path} has no metrics mapping")
    return payload


def _as_number(
    metrics: dict, name: str, role: str
) -> tuple[Optional[float], Optional[str]]:
    """``(value, None)`` or ``(None, failure)`` naming the bad metric."""
    value = metrics[name]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None, (
            f"{name}: {role} value {value!r} is not numeric "
            f"(got {type(value).__name__})"
        )
    return float(value), None


def compare_metrics(
    baseline: dict[str, float],
    candidate: dict[str, float],
    *,
    rtol: float,
    atol: float,
    metric_rtol: Optional[dict[str, float]] = None,
) -> list[str]:
    """Return a list of human-readable failures (empty means all pass)."""
    overrides = metric_rtol or {}
    failures: list[str] = []
    for name in sorted(baseline):
        base, problem = _as_number(baseline, name, "baseline")
        if problem is not None:
            failures.append(problem)
            continue
        if name not in candidate:
            failures.append(
                f"{name}: present in baseline but missing from candidate "
                "(emitter dropped a metric, or the baseline is stale)"
            )
            continue
        cand, problem = _as_number(candidate, name, "candidate")
        if problem is not None:
            failures.append(problem)
            continue
        tolerance = atol + overrides.get(name, rtol) * abs(base)
        if abs(cand - base) > tolerance:
            failures.append(
                f"{name}: baseline {base:.6g} vs candidate {cand:.6g} "
                f"(|diff| {abs(cand - base):.3g} > tolerance {tolerance:.3g})"
            )
    return failures


def check_slos(
    candidate: dict[str, float], slos: dict[str, float]
) -> list[str]:
    """Hard-ceiling checks: candidate[name] must exist and be <= ceiling."""
    failures: list[str] = []
    for name in sorted(slos):
        ceiling = slos[name]
        if name not in candidate:
            failures.append(
                f"{name}: SLO declared (<= {ceiling:.6g}) but metric is "
                "missing from candidate"
            )
            continue
        value, problem = _as_number(candidate, name, "candidate")
        if problem is not None:
            failures.append(problem)
            continue
        if value > ceiling:
            failures.append(
                f"{name}: SLO breach — candidate {value:.6g} exceeds "
                f"ceiling {ceiling:.6g}"
            )
    return failures


def _parse_name_floats(items: Sequence[str], flag: str) -> dict[str, float]:
    parsed: dict[str, float] = {}
    for item in items:
        name, _, value = item.partition("=")
        if not name or not value:
            raise _invalid_input(f"bad {flag} {item!r} (want NAME=FLOAT)")
        try:
            parsed[name] = float(value)
        except ValueError:
            raise _invalid_input(f"bad {flag} value in {item!r}")
    return parsed


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Compare candidate metrics against the baseline; 0 = within tolerance."""
    parser = argparse.ArgumentParser(
        prog="check_regression",
        description="Diff benchmark JSON against a committed baseline.",
    )
    parser.add_argument("--baseline", required=True, help="committed BENCH_*.json")
    parser.add_argument(
        "--candidate", required=True, help="freshly emitted BENCH_*.json"
    )
    parser.add_argument(
        "--rtol",
        type=float,
        default=0.15,
        help="default relative tolerance per metric (default 0.15)",
    )
    parser.add_argument(
        "--atol",
        type=float,
        default=1e-12,
        help="absolute tolerance floor (default 1e-12)",
    )
    parser.add_argument(
        "--metric-rtol",
        action="append",
        default=[],
        metavar="NAME=FLOAT",
        help="per-metric relative-tolerance override (repeatable)",
    )
    parser.add_argument(
        "--slo",
        action="append",
        default=[],
        metavar="NAME=MAX",
        help=(
            "hard ceiling: candidate NAME must exist and be <= MAX, "
            "independent of the baseline (repeatable)"
        ),
    )
    args = parser.parse_args(argv)

    baseline = load_bench(args.baseline)
    candidate = load_bench(args.candidate)
    base_schema = baseline.get("schema_version")
    cand_schema = candidate.get("schema_version")
    if base_schema != cand_schema:
        raise _invalid_input(
            f"schema_version mismatch: baseline {args.baseline} has "
            f"{base_schema!r} but candidate {args.candidate} has "
            f"{cand_schema!r} — refresh the committed baseline before gating"
        )
    failures = compare_metrics(
        baseline["metrics"],
        candidate["metrics"],
        rtol=args.rtol,
        atol=args.atol,
        metric_rtol=_parse_name_floats(args.metric_rtol, "--metric-rtol"),
    )
    slos = _parse_name_floats(args.slo, "--slo")
    failures.extend(check_slos(candidate["metrics"], slos))
    checked = len(baseline["metrics"]) + len(slos)
    if failures:
        print(
            f"check_regression: FAIL — {len(failures)}/{checked} metric(s) "
            f"out of tolerance for {baseline.get('name', '?')}:",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(
        f"check_regression: OK — {checked} metric(s) within tolerance "
        f"for {baseline.get('name', '?')}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
