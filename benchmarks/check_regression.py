"""CI regression gate: diff a ``BENCH_*.json`` against a committed baseline.

Usage::

    python benchmarks/check_regression.py \
        --baseline benchmarks/baselines/BENCH_smoke.json \
        --candidate BENCH_smoke.json \
        --rtol 0.25

Every metric present in the baseline must exist in the candidate and
match within tolerance: ``|candidate - baseline| <= atol + rtol *
|baseline|``.  Per-metric tolerance overrides (``--metric-rtol
total_iterations=0.5``) accommodate metrics that legitimately wobble
across platforms.  Exit status: 0 when all metrics pass, 1 on any
regression or missing metric, 2 on unreadable/invalid input files.

The gate is deliberately symmetric — an *improvement* beyond tolerance
also fails, because it means the committed baseline is stale and should
be refreshed in the same PR that changed the performance.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

EXPECTED_KIND = "bench"


def _invalid_input(message: str) -> SystemExit:
    """Exit status 2: the inputs are unusable (vs 1, a real regression)."""
    print(f"check_regression: {message}", file=sys.stderr)
    return SystemExit(2)


def load_bench(path: object) -> dict:
    """Read one ``BENCH_*.json`` payload, validating its shape and schema."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise _invalid_input(f"cannot read {path}: {exc}")
    schema = payload.get("schema_version", "")
    if payload.get("kind") != EXPECTED_KIND or not schema.startswith("repro.bench/"):
        raise _invalid_input(
            f"{path} is not a repro.bench payload "
            f"(kind={payload.get('kind')!r}, schema={schema!r})"
        )
    if not isinstance(payload.get("metrics"), dict):
        raise _invalid_input(f"{path} has no metrics mapping")
    return payload


def compare_metrics(
    baseline: dict[str, float],
    candidate: dict[str, float],
    *,
    rtol: float,
    atol: float,
    metric_rtol: Optional[dict[str, float]] = None,
) -> list[str]:
    """Return a list of human-readable failures (empty means all pass)."""
    overrides = metric_rtol or {}
    failures: list[str] = []
    for name in sorted(baseline):
        base = float(baseline[name])
        if name not in candidate:
            failures.append(f"{name}: missing from candidate")
            continue
        cand = float(candidate[name])
        tolerance = atol + overrides.get(name, rtol) * abs(base)
        if abs(cand - base) > tolerance:
            failures.append(
                f"{name}: baseline {base:.6g} vs candidate {cand:.6g} "
                f"(|diff| {abs(cand - base):.3g} > tolerance {tolerance:.3g})"
            )
    return failures


def _parse_overrides(items: Sequence[str]) -> dict[str, float]:
    overrides: dict[str, float] = {}
    for item in items:
        name, _, value = item.partition("=")
        if not name or not value:
            raise _invalid_input(f"bad --metric-rtol {item!r} (want NAME=FLOAT)")
        try:
            overrides[name] = float(value)
        except ValueError:
            raise _invalid_input(f"bad --metric-rtol value in {item!r}")
    return overrides


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Compare candidate metrics against the baseline; 0 = within tolerance."""
    parser = argparse.ArgumentParser(
        prog="check_regression",
        description="Diff benchmark JSON against a committed baseline.",
    )
    parser.add_argument("--baseline", required=True, help="committed BENCH_*.json")
    parser.add_argument("--candidate", required=True, help="freshly emitted BENCH_*.json")
    parser.add_argument(
        "--rtol",
        type=float,
        default=0.15,
        help="default relative tolerance per metric (default 0.15)",
    )
    parser.add_argument(
        "--atol",
        type=float,
        default=1e-12,
        help="absolute tolerance floor (default 1e-12)",
    )
    parser.add_argument(
        "--metric-rtol",
        action="append",
        default=[],
        metavar="NAME=FLOAT",
        help="per-metric relative-tolerance override (repeatable)",
    )
    args = parser.parse_args(argv)

    baseline = load_bench(args.baseline)
    candidate = load_bench(args.candidate)
    failures = compare_metrics(
        baseline["metrics"],
        candidate["metrics"],
        rtol=args.rtol,
        atol=args.atol,
        metric_rtol=_parse_overrides(args.metric_rtol),
    )
    checked = len(baseline["metrics"])
    if failures:
        print(
            f"check_regression: FAIL — {len(failures)}/{checked} metric(s) "
            f"out of tolerance for {baseline.get('name', '?')}:",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(
        f"check_regression: OK — {checked} metric(s) within tolerance "
        f"for {baseline.get('name', '?')}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
