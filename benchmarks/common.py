"""Shared machinery for the paper-reproduction benchmarks.

Every bench in this directory regenerates one table or figure of the
paper's evaluation (Section 4).  They all pull from the same cached
system runs, so the Table 3 grid, the Figure 4/5 speedups and the
breakdown figures are mutually consistent — exactly as in the paper,
where one set of measurements feeds all of them.

System configurations are paper-faithful:

- ``libsvm`` / ``libsvm-openmp`` — classic SMO on the CPU cost model with
  LibSVM's 100 MB LRU cache, coverage-scaled per dataset;
- ``gpu-baseline`` — classic SMO on the GPU, 4 GB kernel cache
  (coverage-scaled), no sharing, sequential pairs;
- ``cmp-svm`` — the batched algorithm on 40 CPU threads;
- ``gmp-svm`` — the paper's full system;
- ``gtsvm`` / ``ohd-svm`` / ``gpusvm`` — the third-party comparators of
  Section 4.3.

All reported times are *simulated device seconds* from the cost model
(DESIGN.md Sections 2 and 6); pytest-benchmark's wall-clock numbers
measure this NumPy implementation and are reported separately.
"""

from __future__ import annotations

import functools
import warnings
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import GMPSVC
from repro.baselines import (
    CMPSVMClassifier,
    GPUBaselineClassifier,
    GPUSVMClassifier,
    GTSVMClassifier,
    LibSVMClassifier,
    OHDSVMClassifier,
)
from repro.core.predictor import predict_labels_model
from repro.data import dataset_names, load_dataset
from repro.perf.speedup import format_table

RESULTS_DIR = Path(__file__).parent / "results"

MAIN_SYSTEMS = ["libsvm", "libsvm-openmp", "gpu-baseline", "cmp-svm", "gmp-svm"]
ALL_DATASETS = dataset_names()
BINARY_DATASETS = dataset_names(binary_only=True)
SENSITIVITY_DATASETS = ["adult", "webdata", "mnist", "news20"]
BREAKDOWN_DATASETS = ["adult", "rcv1", "mnist", "news20"]

LIBSVM_CACHE = 100 * 1024**2
BASELINE_CACHE = 4 * 1024**3

# Collected (title, text) pairs printed by the terminal-summary hook and
# written under benchmarks/results/.
_recorded_tables: list[tuple[str, str]] = []


@dataclass
class SystemRun:
    """One (system, dataset) measurement."""

    system: str
    dataset: str
    train_seconds: float
    predict_seconds: float
    train_error: float
    test_error: float
    last_bias: float
    classifier: object = field(repr=False, default=None)

    @property
    def supports_probability(self) -> bool:
        return self.system in MAIN_SYSTEMS


def build_classifier(system: str, dataset_name: str):
    """A paper-faithful classifier instance for one system."""
    spec = load_dataset(dataset_name).spec
    kwargs = dict(C=spec.penalty, gamma=spec.gamma)
    if system == "libsvm":
        return LibSVMClassifier(
            cache_bytes=spec.scaled_cache_bytes(LIBSVM_CACHE), **kwargs
        )
    if system == "libsvm-openmp":
        return LibSVMClassifier(
            openmp=True, cache_bytes=spec.scaled_cache_bytes(LIBSVM_CACHE), **kwargs
        )
    if system == "gpu-baseline":
        return GPUBaselineClassifier(
            cache_bytes=spec.scaled_cache_bytes(BASELINE_CACHE), **kwargs
        )
    if system == "cmp-svm":
        return CMPSVMClassifier(**kwargs)
    if system == "gmp-svm":
        return GMPSVC(**kwargs)
    if system == "gtsvm":
        return GTSVMClassifier(**kwargs)
    if system == "ohd-svm":
        return OHDSVMClassifier(**kwargs)
    if system == "gpusvm":
        return GPUSVMClassifier(**kwargs)
    raise ValueError(f"unknown system {system!r}")


@functools.lru_cache(maxsize=None)
def run_system(system: str, dataset_name: str) -> SystemRun:
    """Train + predict one system on one dataset (cached per process)."""
    dataset = load_dataset(dataset_name)
    classifier = build_classifier(system, dataset_name)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        classifier.fit(dataset.x_train, dataset.y_train)

        if classifier.probability:
            predictions = classifier.predict(dataset.x_test)
        else:
            predictions = classifier.predict(dataset.x_test)
        predict_seconds = classifier.prediction_report_.simulated_seconds

        # Error comparison uses the decision rule (pairwise voting), which
        # is deterministic across systems that learned the same SVMs;
        # LibSVM's -b 0 prediction behaves the same way.
        train_votes, _ = predict_labels_model(
            classifier._predictor_config(),
            classifier.model_,
            dataset.x_train,
            use_probability=False,
        )
        test_votes, _ = predict_labels_model(
            classifier._predictor_config(),
            classifier.model_,
            dataset.x_test,
            use_probability=False,
        )
    del predictions
    return SystemRun(
        system=system,
        dataset=dataset_name,
        train_seconds=classifier.training_report_.simulated_seconds,
        predict_seconds=predict_seconds,
        train_error=float(np.mean(train_votes != dataset.y_train)),
        test_error=float(np.mean(test_votes != dataset.y_test)),
        last_bias=classifier.model_.bias_of_last_svm,
        classifier=classifier,
    )


def record_table(title: str, text: str, metrics: dict | None = None) -> None:
    """Queue a table for the end-of-run summary and persist it to disk.

    ``metrics`` optionally carries the numbers behind the rendered table
    (flat or ``{row: {col: value}}``); when given, a machine-readable
    ``BENCH_<slug>.json`` is written next to the ``.txt`` so CI and
    analysis tooling never have to parse fixed-width text.
    """
    _recorded_tables.append((title, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = (
        title.lower()
        .replace(" ", "_")
        .replace("/", "-")
        .replace("(", "")
        .replace(")", "")
    )
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n", encoding="utf-8")
    if metrics is not None:
        from benchmarks.emit_json import write_bench_json

        write_bench_json(slug, metrics)


def recorded_tables() -> list[tuple[str, str]]:
    return list(_recorded_tables)


def seconds_table(
    rows: dict[str, dict[str, float]], columns: list[str], title: str
) -> str:
    """Fixed-width seconds table."""
    return format_table(rows, columns, title=title, value_format="0.4g")


def run_benchmark_once(benchmark, fn):
    """Attach ``fn`` to pytest-benchmark without re-running heavy work.

    The simulated tables are deterministic, so a single round is both
    sufficient and honest; wall-clock timing of the NumPy host code is a
    by-product.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
