"""Benchmark-suite wiring: print every recorded paper table at the end."""

from __future__ import annotations

from benchmarks import common


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    tables = common.recorded_tables()
    if not tables:
        return
    writer = terminalreporter
    writer.section("paper tables and figures (simulated device seconds)")
    for title, text in tables:
        writer.write_line("")
        writer.write_line(text)
    writer.write_line("")
    writer.write_line(
        f"(copies written under {common.RESULTS_DIR.relative_to(common.RESULTS_DIR.parent.parent)}/)"
    )
