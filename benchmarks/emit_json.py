"""Machine-readable benchmark results: ``BENCH_<name>.json`` emission.

Two consumers motivate this module:

- every ``bench_*`` module records its result tables through
  :func:`benchmarks.common.record_table`, which forwards the underlying
  numbers here so a ``BENCH_<name>.json`` lands next to the legacy
  ``.txt`` rendering;
- CI runs ``python benchmarks/emit_json.py smoke --emit-json PATH`` to
  produce a small deterministic measurement that
  ``benchmarks/check_regression.py`` diffs against the committed
  baseline in ``benchmarks/baselines/``.

Every file carries ``schema_version`` (see
:mod:`repro.telemetry.schema`), the benchmark name, and a flat
``metrics`` mapping of metric name to float — nested result tables are
flattened to ``"row/column"`` keys so the regression gate can compare
them one number at a time.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from pathlib import Path
from typing import Mapping, Optional, Sequence

RESULTS_DIR = Path(__file__).parent / "results"
BASELINES_DIR = Path(__file__).parent / "baselines"


def _schema_version() -> str:
    from repro.telemetry.schema import BENCH_SCHEMA_VERSION

    return BENCH_SCHEMA_VERSION


def flatten_metrics(rows: Mapping[str, object]) -> dict[str, float]:
    """Flatten ``{row: {col: value}}`` (or flat) tables to ``row/col`` keys.

    Non-numeric leaves are skipped; numeric leaves are coerced to float.
    """
    flat: dict[str, float] = {}

    def visit(prefix: str, value: object) -> None:
        if isinstance(value, Mapping):
            for key, sub in value.items():
                visit(f"{prefix}/{key}" if prefix else str(key), sub)
        elif isinstance(value, bool):
            flat[prefix] = float(value)
        elif isinstance(value, (int, float)):
            flat[prefix] = float(value)

    visit("", rows)
    return flat


def write_bench_json(
    name: str,
    metrics: Mapping[str, object],
    *,
    path: Optional[object] = None,
) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``metrics`` may be flat or nested (nested tables are flattened).
    Default location: ``benchmarks/results/BENCH_<name>.json``.
    """
    target = (
        Path(path) if path is not None else RESULTS_DIR / f"BENCH_{name}.json"
    )
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema_version": _schema_version(),
        "kind": "bench",
        "name": name,
        "metrics": flatten_metrics(metrics),
    }
    target.write_text(
        json.dumps(payload, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    return target


def run_smoke() -> dict[str, float]:
    """A small deterministic GMP-SVM train+predict measurement.

    Fixed synthetic data and hyperparameters, so the resulting metrics
    are reproducible across runs and comparable across commits (within
    the regression gate's tolerances).
    """
    import numpy as np

    from repro import GMPSVC
    from repro.data import gaussian_blobs

    x, y = gaussian_blobs(n=240, n_features=6, n_classes=3, seed=7)
    x_train, y_train = x[:180], y[:180]
    x_test, y_test = x[180:], y[180:]
    clf = GMPSVC(C=10.0, gamma=0.3, working_set_size=32)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        clf.fit(x_train, y_train)
        predictions = clf.predict(x_test)
    train_report = clf.training_report_
    predict_report = clf.prediction_report_
    return {
        "train_simulated_seconds": train_report.simulated_seconds,
        "predict_simulated_seconds": predict_report.simulated_seconds,
        "buffer_hit_rate": train_report.buffer_hit_rate,
        "sharing_hit_rate": train_report.sharing_hit_rate,
        "total_iterations": float(train_report.total_iterations),
        "kernel_rows_computed": float(train_report.kernel_rows_computed),
        "n_binary_svms": float(train_report.n_binary_svms),
        "max_concurrency": float(train_report.max_concurrency),
        "test_accuracy": float(np.mean(predictions == y_test)),
    }


def run_coupling(m: int = 2000, k: int = 10, seed: int = 13) -> dict[str, float]:
    """Batched vs per-instance prediction-side probability math.

    Runs the full sigmoid + Wu-Lin-Weng coupling stage on one ``(m, k)``
    synthetic decision batch twice — the per-instance loop the code shipped
    with, and the vectorized ``couple_batch`` — and reports wall-clock,
    simulated time and the parity error between the two results.  The
    simulated metrics and the parity error are deterministic and gated by
    the CI baseline; the wall-clock speedup is machine-dependent and
    reported for the record (it exceeds 5x on anything modern).
    """
    import time

    import numpy as np

    from repro.gpusim import make_engine, scaled_tesla_p100
    from repro.probability import couple_batch, couple_probabilities

    rng = np.random.default_rng(seed)
    upper_s, upper_t = np.triu_indices(k, 1)
    r_batch = np.full((m, k, k), 0.5)
    values = rng.uniform(0.05, 0.95, size=(m, upper_s.size))
    r_batch[:, upper_s, upper_t] = values
    r_batch[:, upper_t, upper_s] = 1.0 - values

    loop_engine = make_engine(scaled_tesla_p100())
    start = time.perf_counter()
    loop_result = np.stack(
        [couple_probabilities(loop_engine, r_batch[i]) for i in range(m)]
    )
    loop_wall = time.perf_counter() - start

    batched_engine = make_engine(scaled_tesla_p100())
    start = time.perf_counter()
    batched_result = couple_batch(batched_engine, r_batch)
    batched_wall = time.perf_counter() - start

    return {
        "m": float(m),
        "k": float(k),
        "loop_wall_seconds": loop_wall,
        "batched_wall_seconds": batched_wall,
        "wall_speedup": loop_wall / batched_wall,
        "loop_simulated_seconds": loop_engine.clock.elapsed_s,
        "batched_simulated_seconds": batched_engine.clock.elapsed_s,
        "simulated_speedup": (
            loop_engine.clock.elapsed_s / batched_engine.clock.elapsed_s
        ),
        "max_abs_parity_error": float(
            np.max(np.abs(batched_result - loop_result), initial=0.0)
        ),
        "ridge_retries": float(
            batched_engine.counters.events.get("coupling_ridge_retries", 0)
        ),
    }


def run_train_interleave() -> dict[str, float]:
    """Interleaved wave driver vs the sequential pair loop, deterministic side.

    Trains the same k = 10 synthetic workload once per mode and reports
    the simulated timelines, the wave-trace-derived concurrency numbers
    and a bitwise model-parity flag.  Everything here is exactly
    reproducible, so the regression gate can pin it; the wall-clock
    speedup of the host code is measured by
    ``benchmarks/bench_train_interleave.py`` and deliberately kept out of
    this gated payload (it depends on machine load).
    """
    import numpy as np

    from repro.core.trainer import TrainerConfig, train_multiclass
    from repro.data import gaussian_blobs
    from repro.gpusim.device import scaled_tesla_p100
    from repro.kernels.functions import kernel_from_name

    x, y = gaussian_blobs(n=500, n_features=96, n_classes=10, seed=7)
    kernel = kernel_from_name("gaussian", gamma=1.0 / 96)

    def fit(concurrent: bool):
        config = TrainerConfig(
            device=scaled_tesla_p100(),
            solver="batched",
            concurrent=concurrent,
            concurrency_mode="interleaved",
            share_kernel_values=True,
            probability=False,
            working_set_size=32,
            blocks_per_svm=2,
        )
        return train_multiclass(config, x, y, kernel, 10.0)

    model_seq, report_seq = fit(False)
    model_int, report_int = fit(True)
    parity = all(
        np.array_equal(a.coefficients, b.coefficients)
        and np.array_equal(a.global_sv_indices, b.global_sv_indices)
        and a.bias == b.bias
        for a, b in zip(model_seq.records, model_int.records)
    )
    trace = report_int.wave_trace or []
    return {
        "sequential_simulated_seconds": report_seq.simulated_seconds,
        "interleaved_simulated_seconds": report_int.simulated_seconds,
        "simulated_speedup": (
            report_seq.simulated_seconds / report_int.simulated_seconds
        ),
        "max_concurrency": float(report_int.max_concurrency),
        "concurrency_speedup": report_int.concurrency_speedup,
        "n_waves": float(len(trace)),
        "prefetch_segments": float(sum(w["prefetch_segments"] for w in trace)),
        "sharing_hit_rate": report_int.sharing_hit_rate,
        "total_iterations": float(report_int.total_iterations),
        "model_parity": float(parity),
    }


def run_serving(m: int = 2000, max_batch: int = 32) -> dict[str, float]:
    """Warm sealed-session serving vs the cold per-request path.

    Replays ``m`` single-instance probability requests two ways: cold —
    every request runs the full one-shot pipeline (fresh engine, pool
    norms, sigmoid stacking); warm — one sealed
    :class:`~repro.serving.InferenceSession` behind a
    :class:`~repro.serving.MicroBatcher` fusing up to ``max_batch``
    requests per dispatch.  Both paths see the identical request stream
    and the results are held to *bitwise* parity.  The simulated
    timings, latency percentiles, batch shape and the parity flag are
    deterministic and gated by the CI baseline; wall-clock throughput is
    machine-dependent and asserted by ``benchmarks/bench_serving.py``.
    """
    import time

    import numpy as np

    from repro import GMPSVC, InferenceSession, MicroBatcher
    from repro.core.predictor import PredictorConfig, predict_proba_model
    from repro.data import gaussian_blobs
    from repro.gpusim import scaled_tesla_p100

    x, y = gaussian_blobs(n=300, n_features=8, n_classes=3, seed=11)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        clf = GMPSVC(C=10.0, gamma=0.3, working_set_size=32).fit(x, y)
    model = clf.model_
    requests = [x[i % x.shape[0] : i % x.shape[0] + 1] for i in range(m)]

    # Cold: the full one-shot pipeline, once per request.
    cold_config = PredictorConfig(device=scaled_tesla_p100())
    cold_simulated = 0.0
    start = time.perf_counter()
    cold_rows = []
    for row in requests:
        probabilities, report = predict_proba_model(cold_config, model, row)
        cold_rows.append(probabilities)
        cold_simulated += report.simulated_seconds
    cold_wall = time.perf_counter() - start
    cold_result = np.vstack(cold_rows)

    # Warm: seal once, micro-batch everything.
    session = InferenceSession(model, PredictorConfig(device=scaled_tesla_p100()))
    batcher = MicroBatcher(session, max_batch=max_batch)
    start = time.perf_counter()
    handles = [batcher.submit(row) for row in requests]
    batcher.drain()
    warm_wall = time.perf_counter() - start
    warm_result = np.vstack([handle.result for handle in handles])
    warm_simulated = session.stats.serve_simulated_s

    stats = batcher.stats
    return {
        "m": float(m),
        "max_batch": float(max_batch),
        "cold_wall_seconds": cold_wall,
        "warm_wall_seconds": warm_wall,
        "wall_speedup": cold_wall / warm_wall,
        "cold_wall_requests_per_s": m / cold_wall,
        "warm_wall_requests_per_s": m / warm_wall,
        "cold_simulated_seconds": cold_simulated,
        "warm_simulated_seconds": warm_simulated,
        "simulated_speedup": cold_simulated / warm_simulated,
        "seal_simulated_seconds": session.stats.seal_simulated_s,
        "n_batches": float(stats.n_batches),
        "mean_batch_size": stats.mean_batch_size,
        "latency_p50_simulated_s": stats.latency_percentile(50.0),
        "latency_p99_simulated_s": stats.latency_percentile(99.0),
        "bitwise_parity": float(np.array_equal(warm_result, cold_result)),
    }


def run_distributed() -> dict[str, float]:
    """Sharded cluster training vs the single-device driver, deterministic side.

    Trains one k = 10 workload on simulated clusters of 1, 2 and 4
    devices and reports cluster makespans, speedups over the
    single-device driver, per-device utilization, interconnect volume
    and bitwise model-parity flags (every device count and placement
    must reproduce the single-device model exactly).  All metrics come
    off the simulated timeline, so the regression gate can pin them.
    """
    import numpy as np

    from repro import ClusterSpec, TrainerConfig, train_multiclass_sharded
    from repro.core.trainer import train_multiclass
    from repro.data import gaussian_blobs
    from repro.gpusim.device import scaled_tesla_p100
    from repro.kernels.functions import kernel_from_name

    x, y = gaussian_blobs(n=1000, n_features=16, n_classes=10, seed=11)
    kernel = kernel_from_name("gaussian", gamma=0.3)
    config = TrainerConfig(device=scaled_tesla_p100(), working_set_size=32)

    model_single, report_single = train_multiclass(config, x, y, kernel, 1.0)

    def parity(model) -> bool:
        return all(
            np.array_equal(a.global_sv_indices, b.global_sv_indices)
            and np.array_equal(a.coefficients, b.coefficients)
            and a.bias == b.bias
            for a, b in zip(model_single.records, model.records)
        )

    metrics: dict[str, float] = {
        "single_simulated_seconds": report_single.simulated_seconds,
        "n_binary_svms": float(report_single.n_binary_svms),
    }
    for n_devices in (1, 2, 4):
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=n_devices)
        model, report = train_multiclass_sharded(
            config, cluster, x, y, kernel, 1.0, placement="affinity"
        )
        tag = f"{n_devices}dev"
        metrics[f"makespan_{tag}_seconds"] = report.simulated_seconds
        metrics[f"speedup_{tag}"] = (
            report_single.simulated_seconds / report.simulated_seconds
        )
        metrics[f"model_parity_{tag}"] = float(parity(model))
        metrics[f"transfer_bytes_{tag}"] = float(report.transfer_bytes_total)
        metrics[f"placement_balance_{tag}"] = report.placement["balance"]
        if n_devices == 4:
            for entry in report.per_device:
                metrics[f"utilization_4dev_d{entry['device']}"] = entry[
                    "utilization"
                ]
                metrics[f"transfer_bytes_4dev_d{entry['device']}"] = float(
                    entry["transfer_bytes"]
                )
    # The naive placement must also reproduce the model bit-for-bit.
    cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=4)
    model_rr, report_rr = train_multiclass_sharded(
        config, cluster, x, y, kernel, 1.0, placement="round_robin"
    )
    metrics["model_parity_4dev_round_robin"] = float(parity(model_rr))
    metrics["makespan_4dev_round_robin_seconds"] = report_rr.simulated_seconds
    return metrics


def run_http_serving() -> dict[str, float]:
    """The HTTP front-end under load: capacity, latency SLOs, graceful shed.

    Four deterministic load runs against fresh admission-controlled
    servers (2 workers, adaptive micro-batching, per-tenant token
    buckets, bounded queues):

    - **calibration** — a saturating closed loop measures batched service
      capacity;
    - **uncontended** — steady open loop at 25% of capacity: the latency
      baseline the SLO gate pins;
    - **overload** — steady open loop at 2x capacity: the graceful-shed
      contract (accepted p99 within 3x the uncontended p99, explicit
      429/503 for the rest, server throughput holding near capacity);
    - **bursty** — 4x on/off bursts at 1x mean: shedding absorbs bursts
      instead of queueing them into the latency tail.

    The overload run is executed twice on fresh servers; the
    ``deterministic`` flag asserts byte-identical shed decisions and
    latency lists.  Everything reported lives on the simulated clock.
    """
    import numpy as np

    from benchmarks.loadgen import TrafficShape, run_closed_loop, run_open_loop
    from repro import GMPSVC, InferenceSession
    from repro.core.predictor import PredictorConfig
    from repro.data import gaussian_blobs
    from repro.gpusim import scaled_tesla_p100
    from repro.server import AdmissionController, Dispatcher, TenantPolicy

    x, y = gaussian_blobs(n=300, n_features=8, n_classes=3, seed=11)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model = GMPSVC(C=10.0, gamma=0.3, working_set_size=32).fit(x, y).model_
    rows = [x[i : i + 1] for i in range(64)]

    def build_server(*, alpha_rate_rps: float = 0.0) -> Dispatcher:
        """A fresh 2-worker server; ``alpha_rate_rps=0`` means unlimited."""
        session = InferenceSession(
            model, PredictorConfig(device=scaled_tesla_p100())
        )
        generous = TenantPolicy(
            rate_per_s=1e12, burst=1_000_000, max_queue=1_000_000
        )
        if alpha_rate_rps:
            # The production shape: tenant "alpha" is rate-capped (sheds
            # 429 when it exceeds its contract), everyone else is trusted
            # but bounded by the queues (sheds 503 under overload).
            admission = AdmissionController(
                default_policy=TenantPolicy(
                    rate_per_s=1e12, burst=1_000_000, max_queue=10
                ),
                policies={
                    "alpha": TenantPolicy(
                        rate_per_s=alpha_rate_rps, burst=16, max_queue=10
                    )
                },
                max_queue_global=12,
            )
        else:
            admission = AdmissionController(
                default_policy=generous, max_queue_global=1_000_000
            )
        return Dispatcher(
            session, n_workers=2, max_batch=16, admission=admission
        )

    # Calibration: saturating closed loop, generous limits -> capacity.
    calibration = run_closed_loop(
        build_server(), rows, n_clients=64, n_requests=512
    )
    capacity_rps = calibration.accepted_throughput_rps

    tenants = (("alpha", 0.7), ("beta", 0.3))
    priorities = ((0, 0.9), (2, 0.1))

    def open_run(shape: TrafficShape, *, seed: int):
        return run_open_loop(
            build_server(alpha_rate_rps=0.5 * capacity_rps),
            rows,
            shape,
            tenants=tenants,
            priorities=priorities,
            seed=seed,
        )

    n_target = 400  # arrivals per trace, in expectation
    uncontended = open_run(
        TrafficShape("steady", 0.25 * capacity_rps, n_target / (0.25 * capacity_rps)),
        seed=5,
    )
    overload_shape = TrafficShape(
        "steady", 2.0 * capacity_rps, n_target / (2.0 * capacity_rps)
    )
    overload = open_run(overload_shape, seed=7)
    overload_repeat = open_run(overload_shape, seed=7)
    bursty = open_run(
        TrafficShape(
            "bursty", capacity_rps, n_target / capacity_rps, burst_factor=4.0
        ),
        seed=9,
    )

    deterministic = (
        overload.decision_log == overload_repeat.decision_log
        and overload.accepted_latencies_s == overload_repeat.accepted_latencies_s
        and overload.shed_statuses == overload_repeat.shed_statuses
    )
    all_explicit = all(
        status in (429, 503)
        for report in (uncontended, overload, bursty)
        for status in report.shed_statuses
    )
    p99_unc = uncontended.latency_percentile(99.0)
    p99_over = overload.latency_percentile(99.0)

    metrics: dict[str, float] = {
        "capacity_rps": capacity_rps,
        "calibration_mean_batch_size": calibration.mean_batch_size,
        "p99_degradation_ratio": p99_over / p99_unc if p99_unc else 0.0,
        "deterministic": float(deterministic),
        "all_sheds_explicit": float(all_explicit),
        "overload_factor": 2.0,
    }
    metrics.update(uncontended.metrics("uncontended_"))
    metrics.update(overload.metrics("overload_"))
    metrics.update(bursty.metrics("bursty_"))
    metrics["overload_evicted"] = float(
        sum(
            counters["shed_evicted"]
            for counters in overload.per_tenant.values()
        )
    )
    return metrics


def run_hot_swap() -> dict[str, float]:
    """Zero-downtime model lifecycle: hot swap and warm-start retraining.

    Two deterministic measurements on the simulated clock:

    - **hot swap** — a steady request stream is replayed twice against a
      2-worker dispatcher: once serving model A throughout (the
      latency baseline), once swapping to model B mid-stream via
      :meth:`Dispatcher.swap_model` (drain-then-flip).  The payload
      reports the swap-window p99 next to the steady-state p99 of the
      same request indices, the drain window, and two hard
      correctness counters: requests that failed (must be 0) and
      responses that differ bitwise from what a cold restart of the
      right model would have served (must be 0).
    - **warm start** — model A's support vectors seed a retrain on a
      grown dataset; ``warm_iteration_ratio`` is the warm SMO
      iteration count over the cold one (the acceptance contract says
      measurably below 1).
    """
    import numpy as np

    from repro.core.predictor import PredictorConfig
    from repro.core.trainer import TrainerConfig, train_multiclass
    from repro.data import gaussian_blobs
    from repro.gpusim import scaled_tesla_p100
    from repro.kernels.functions import kernel_from_name
    from repro.server import AdmissionController, Dispatcher, TenantPolicy
    from repro.serving import InferenceSession

    # --- Warm-start side: retrain on grown data from a prior model. ---
    x, y = gaussian_blobs(200, 5, 3, seed=0)
    x2, y2 = gaussian_blobs(40, 5, 3, seed=9)
    grown_x = np.vstack([np.asarray(x), np.asarray(x2)])
    grown_y = np.concatenate([y, y2])
    kernel = kernel_from_name("gaussian", gamma=0.5)

    def config() -> TrainerConfig:
        return TrainerConfig(
            device=scaled_tesla_p100(),
            solver="batched",
            working_set_size=32,
            probability=True,
        )

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model_a, _ = train_multiclass(config(), x, y, kernel, 1.0)
        cold_model, cold_report = train_multiclass(
            config(), grown_x, grown_y, kernel, 1.0
        )
        model_b, warm_report = train_multiclass(
            config(), grown_x, grown_y, kernel, 1.0, warm_start=model_a
        )

    # --- Hot-swap side: same stream, with and without a mid-stream swap. ---
    n_requests = 200
    rng = np.random.default_rng(3)
    request_rows = [
        rng.normal(size=(int(rng.integers(1, 4)), 5))
        for _ in range(n_requests)
    ]
    # Inter-arrival spacing near the simulated service time, so the
    # dispatcher genuinely queues and the swap has a backlog to drain.
    arrivals = np.cumsum(rng.uniform(1e-8, 8e-8, size=n_requests))
    swap_index = n_requests // 2
    predictor = PredictorConfig(device=scaled_tesla_p100())

    def replay(swap_to=None):
        """Replay the stream; optionally swap at ``swap_index``."""
        dispatcher = Dispatcher(
            InferenceSession(model_a, predictor),
            n_workers=2,
            max_batch=8,
            # Unlimited admission: this bench measures the swap, so
            # nothing may be shed for rate or queue-depth reasons.
            admission=AdmissionController(
                default_policy=TenantPolicy(
                    rate_per_s=1e12, burst=1_000_000, max_queue=1_000_000
                ),
                max_queue_global=1_000_000,
            ),
        )
        handles = []
        for i, (data, t) in enumerate(zip(request_rows, arrivals)):
            if swap_to is not None and i == swap_index:
                dispatcher.swap_model(
                    InferenceSession(swap_to, predictor), label="v2"
                )
            handles.append(
                dispatcher.submit(data, arrival_s=max(t, dispatcher.now_s))
            )
        dispatcher.drain()
        return dispatcher, handles

    _, steady_handles = replay()
    swap_dispatcher, swap_handles = replay(swap_to=model_b)
    swap = swap_dispatcher.swaps[0]

    failed = sum(1 for h in swap_handles if not h.done or h.shed)
    cold_a = InferenceSession(model_a, predictor)
    cold_b = InferenceSession(model_b, predictor)
    bitwise_mismatches = 0
    for handle, data in zip(swap_handles, request_rows):
        cold = cold_a if handle.arrival_s <= swap.requested_s else cold_b
        if not np.array_equal(
            handle.result, cold.predict_proba(np.asarray(data))
        ):
            bitwise_mismatches += 1

    # The swap window: the requests bracketing the flip.  Their p99 next
    # to the *same indices* of the no-swap replay isolates the swap cost.
    window = slice(swap_index - 20, swap_index + 20)
    steady_p99 = float(
        np.percentile([h.latency_s for h in steady_handles[window]], 99.0)
    )
    swap_window_p99 = float(
        np.percentile([h.latency_s for h in swap_handles[window]], 99.0)
    )

    return {
        "n_requests": float(n_requests),
        "failed_requests": float(failed),
        "bitwise_mismatches": float(bitwise_mismatches),
        "steady_window_p99_s": steady_p99,
        "swap_window_p99_s": swap_window_p99,
        "swap_p99_degradation_ratio": (
            swap_window_p99 / steady_p99 if steady_p99 else 0.0
        ),
        "swap_drain_window_s": swap.window_s,
        "swap_drained_requests": float(swap.drained_requests),
        "cold_iterations": float(cold_report.total_iterations),
        "warm_iterations": float(warm_report.total_iterations),
        "warm_iteration_ratio": (
            warm_report.total_iterations / cold_report.total_iterations
        ),
    }


def run_fault_recovery() -> dict[str, float]:
    """Fault injection and recovery: checkpointed resume + degraded serving.

    Two deterministic measurements on the simulated clock:

    - **training** — a 4-device sharded run loses device 1 halfway
      through its fault-free makespan; survivors restore the lost
      problems from the last checkpoint and finish them.  The payload
      reports the makespan inflation against a fault-free run paying
      the *same* checkpoint cadence (the fair yardstick — checkpoint
      shipping is a cost both runs carry) and a hard correctness
      counter: binary records that differ bitwise from the fault-free
      model (must be 0).
    - **serving** — a replicated 3-lane dispatcher loses one replica
      mid-stream.  The batch routed to the dead lane gets an explicit
      503 (``replica_lost``); everything else serves bitwise-correct
      on the survivors, and after :meth:`Dispatcher.restore_lane`
      nothing fails (``failed_requests`` must be 0) and the restored
      lane serves again.
    """
    import numpy as np

    from repro.core.trainer import TrainerConfig
    from repro.data import gaussian_blobs
    from repro.distributed import (
        ClusterSpec,
        ShardedInferenceRouter,
        train_multiclass_sharded,
    )
    from repro.faults import DeviceLoss, FaultPlan
    from repro.gpusim import scaled_tesla_p100
    from repro.kernels.functions import kernel_from_name
    from repro.server import Dispatcher

    n_devices = 4
    x, y = gaussian_blobs(240, 5, 4, seed=7)
    kernel = kernel_from_name("gaussian", gamma=0.4)
    config = TrainerConfig(device=scaled_tesla_p100(), working_set_size=32)
    cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=n_devices)

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        # Fault-free baseline paying the same checkpoint cadence (the
        # ":memory:" store charges the device->host shipping without
        # touching disk).
        base_model, base_report = train_multiclass_sharded(
            config, cluster, x, y, kernel, 1.0,
            checkpoint_dir=":memory:", checkpoint_every=2,
        )
        plan = FaultPlan(
            losses=(DeviceLoss(1, base_report.simulated_seconds * 0.5),)
        )
        model, report = train_multiclass_sharded(
            config, cluster, x, y, kernel, 1.0,
            fault_plan=plan, checkpoint_every=2,
        )

    bitwise_mismatches = 0
    for a, b in zip(base_model.records, model.records):
        if not (
            np.array_equal(a.global_sv_indices, b.global_sv_indices)
            and np.array_equal(a.coefficients, b.coefficients)
            and a.bias == b.bias
        ):
            bitwise_mismatches += 1
    if base_model.sv_pool.n_pool != model.sv_pool.n_pool:
        bitwise_mismatches += 1
    recovery = report.faults["recovery"]

    # --- Serving side: lose one replica mid-stream, then restore it. ---
    router = ShardedInferenceRouter(
        model,
        ClusterSpec(device=scaled_tesla_p100(), n_devices=3),
        strategy="replicated",
    )
    dispatcher = Dispatcher(router)
    probe = np.asarray(x)[:4]
    reference = router.predict_proba(probe)

    warm = [dispatcher.submit(probe, arrival_s=float(i)) for i in range(6)]
    dispatcher.drain()
    dispatcher.fail_lane(1)
    window = [
        dispatcher.submit(probe, arrival_s=dispatcher.now_s + 1.0 + i)
        for i in range(9)
    ]
    dispatcher.drain()
    dispatcher.restore_lane(1)
    recovered = [
        dispatcher.submit(probe, arrival_s=dispatcher.now_s + 1.0 + i)
        for i in range(9)
    ]
    dispatcher.drain()

    window_503s = sum(1 for h in window if h.status == 503)
    failed = sum(
        1 for h in warm + recovered if not h.done or h.status != 200
    )
    serving_mismatches = sum(
        1
        for h in warm + window + recovered
        if h.status == 200 and not np.array_equal(h.result, reference)
    )

    return {
        "n_devices": float(n_devices),
        "devices_lost": float(len(report.faults["devices_lost"])),
        "recovered_problems": float(recovery["recovered_problems"]),
        "resumed_from_checkpoint": float(recovery["resumed_from_checkpoint"]),
        "checkpoints_written": float(report.faults["checkpoints_written"]),
        "fault_free_makespan_s": base_report.simulated_seconds,
        "faulted_makespan_s": report.simulated_seconds,
        "makespan_inflation_ratio": (
            report.simulated_seconds / base_report.simulated_seconds
        ),
        "bitwise_mismatches": float(bitwise_mismatches),
        "window_503s": float(window_503s),
        "failed_requests": float(failed),
        "serving_mismatches": float(serving_mismatches),
    }


def run_backends() -> dict[str, float]:
    """The float32 fast path vs the float64 reference backend.

    Trains and predicts the same synthetic workload once per registered
    NumPy backend and reports, per backend, the simulated train/predict
    timelines, wall-clock times and SMO iteration counts, plus the
    accuracy deltas the SLO gates pin:

    - ``float32_probability_linf`` / ``argmax_agreement`` isolate
      *inference* precision: the numpy64-trained model is predicted
      under both backends on the same test block, so the delta is pure
      arithmetic (SLOs: L-inf <= 1e-3, agreement >= 99.9%);
    - ``float32_e2e_*`` report the end-to-end deltas (each backend
      trains its own model), for the record — two solvers converging in
      different precisions may legitimately disagree near boundaries.

    The committed baseline pins only the simulated metrics (numpy64
    tightly; numpy32 with generous tolerance, since its iteration counts
    follow the platform's float32 BLAS); wall-clock and accuracy deltas
    are machine-dependent and gated by SLO ceilings instead.
    """
    import time

    import numpy as np

    from repro import GMPSVC
    from repro.core.predictor import PredictorConfig, predict_proba_model
    from repro.data import gaussian_blobs
    from repro.gpusim import scaled_tesla_p100

    n_features, n_classes = 96, 5
    x, y = gaussian_blobs(n=480, n_features=n_features, n_classes=n_classes, seed=7)
    x_test, _ = gaussian_blobs(
        n=4000, n_features=n_features, n_classes=n_classes, seed=8
    )

    metrics: dict[str, float] = {
        "n_train": float(np.asarray(x).shape[0]),
        "n_test": float(np.asarray(x_test).shape[0]),
        "n_classes": float(n_classes),
    }
    fitted = {}
    for name in ("numpy64", "numpy32"):
        clf = GMPSVC(
            C=10.0,
            gamma=1.0 / n_features,
            working_set_size=32,
            backend=name,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            start = time.perf_counter()
            clf.fit(x, y)
            train_wall = time.perf_counter() - start
            start = time.perf_counter()
            proba = clf.predict_proba(x_test)
            predict_wall = time.perf_counter() - start
        fitted[name] = {
            "clf": clf,
            "proba": proba,
            "train_wall": train_wall,
            "predict_wall": predict_wall,
            "train_sim": clf.training_report_.simulated_seconds,
            "predict_sim": clf.prediction_report_.simulated_seconds,
        }
        metrics[f"{name}_train_simulated_seconds"] = fitted[name]["train_sim"]
        metrics[f"{name}_predict_simulated_seconds"] = fitted[name]["predict_sim"]
        metrics[f"{name}_train_wall_seconds"] = train_wall
        metrics[f"{name}_predict_wall_seconds"] = predict_wall
        metrics[f"{name}_iterations"] = float(clf.training_report_.total_iterations)

    f64, f32 = fitted["numpy64"], fitted["numpy32"]
    sim64 = f64["train_sim"] + f64["predict_sim"]
    sim32 = f32["train_sim"] + f32["predict_sim"]
    metrics["float32_train_simulated_speedup"] = f64["train_sim"] / f32["train_sim"]
    metrics["float32_predict_simulated_speedup"] = (
        f64["predict_sim"] / f32["predict_sim"]
    )
    metrics["float32_simulated_speedup"] = sim64 / sim32
    # The gateable inverse: a ceiling on the slowdown is a floor on the
    # speedup (check_regression --slo only bounds from above).
    metrics["float32_simulated_slowdown"] = sim32 / sim64
    metrics["float32_train_wall_speedup"] = f64["train_wall"] / f32["train_wall"]
    metrics["float32_predict_wall_speedup"] = (
        f64["predict_wall"] / f32["predict_wall"]
    )
    wall64 = f64["train_wall"] + f64["predict_wall"]
    wall32 = f32["train_wall"] + f32["predict_wall"]
    metrics["float32_wall_speedup"] = wall64 / wall32

    # Inference-precision deltas: one model (the reference-trained one),
    # predicted under both backends.
    model = f64["clf"].model_
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        p_ref, _ = predict_proba_model(
            PredictorConfig(device=scaled_tesla_p100(), backend="numpy64"),
            model,
            x_test,
        )
        p_f32, _ = predict_proba_model(
            PredictorConfig(device=scaled_tesla_p100(), backend="numpy32"),
            model,
            x_test,
        )
    agree = np.argmax(p_ref, axis=1) == np.argmax(p_f32, axis=1)
    metrics["float32_probability_linf"] = float(np.max(np.abs(p_ref - p_f32)))
    metrics["argmax_agreement"] = float(np.mean(agree))
    metrics["argmax_disagreement"] = float(np.mean(~agree))

    # End-to-end deltas (each backend's own trained model), for the record.
    e2e_agree = np.argmax(f64["proba"], axis=1) == np.argmax(f32["proba"], axis=1)
    metrics["float32_e2e_probability_linf"] = float(
        np.max(np.abs(f64["proba"] - f32["proba"]))
    )
    metrics["float32_e2e_argmax_agreement"] = float(np.mean(e2e_agree))
    return metrics


def run_cascade() -> dict[str, float]:
    """Instance-sharded cascade SMO vs the unsharded solve on one large pair.

    One m = 6000 binary problem (the regime the cascade exists for: a
    single pairwise problem too large to train quickly on one device) is
    solved three ways on the simulated clock:

    - **unsharded** — the plain batched SMO solve on one device, the
      yardstick;
    - **cascade, 4 flat devices** — 4 instance shards solved
      concurrently, SVs merged pairwise, globally KKT-verified; the
      acceptance contract pins ``speedup_4dev >= 1.5``;
    - **cascade, 2x2 hierarchical** — same work on a 2-node x 2-device
      topology; the per-tier byte ledger must show the merge traffic
      riding the intra-node tier except for exactly one inter-node merge.

    The cascade is approximate, so the payload also carries the SLO-gated
    quality metrics: the verified global dual gap against its budget, the
    L-inf decision delta against the unsharded solve, and the decision
    sign disagreement (what multiclass voting would see).
    """
    import numpy as np

    from repro.cascade import CascadeConfig, train_cascade
    from repro.core.trainer import TrainerConfig
    from repro.data import gaussian_blobs
    from repro.distributed import ClusterSpec
    from repro.gpusim.device import scaled_tesla_p100
    from repro.gpusim.engine import make_engine
    from repro.kernels.functions import kernel_from_name
    from repro.kernels.rows import KernelRowComputer
    from repro.solvers.batch_smo import BatchSMOSolver

    m, n_shards, penalty = 6000, 4, 10.0
    x, y = gaussian_blobs(n=m, n_features=8, n_classes=2, separation=3.5, seed=5)
    labels = np.where(y == 0, 1.0, -1.0)
    kernel = kernel_from_name("gaussian", gamma=0.125)
    config = TrainerConfig(device=scaled_tesla_p100(), working_set_size=64)

    # Unsharded yardstick: the plain batched solve on one device.
    engine = make_engine(config.device)
    rows = KernelRowComputer(engine, kernel, x)
    sequential = BatchSMOSolver(
        penalty=penalty,
        epsilon=config.epsilon,
        working_set_size=config.working_set_size,
    ).solve(rows, labels)
    unsharded_s = engine.clock.elapsed_s

    def decision(result):
        return result.f + labels + result.bias

    d_sequential = decision(sequential)
    metrics: dict[str, float] = {
        "m": float(m),
        "n_shards": float(n_shards),
        "penalty": penalty,
        "unsharded_simulated_seconds": unsharded_s,
        "unsharded_iterations": float(sequential.iterations),
        "unsharded_n_support": float(sequential.n_support),
    }

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for tag, n_devices, n_nodes in (("4dev", 4, 1), ("2x2", 4, 2)):
            cluster = ClusterSpec(
                device=config.device, n_devices=n_devices, n_nodes=n_nodes
            )
            result, report = train_cascade(
                config, cluster, x, labels, kernel, penalty,
                cascade=CascadeConfig(n_shards=n_shards),
            )
            d_cascade = decision(result)
            disagreement = float(
                np.mean(np.sign(d_cascade) != np.sign(d_sequential))
            )
            metrics[f"makespan_{tag}_seconds"] = report.simulated_seconds
            metrics[f"speedup_{tag}"] = unsharded_s / report.simulated_seconds
            metrics[f"dual_gap_{tag}"] = report.final_gap
            metrics[f"gap_budget_{tag}"] = report.gap_budget
            metrics[f"budget_met_{tag}"] = float(report.budget_met)
            metrics[f"decision_linf_{tag}"] = float(
                np.max(np.abs(d_cascade - d_sequential))
            )
            metrics[f"argmax_disagreement_{tag}"] = disagreement
            metrics[f"sv_survival_{tag}"] = report.sv_survival
            metrics[f"feedback_rounds_{tag}"] = float(report.feedback_rounds)
            metrics[f"iterations_{tag}"] = float(report.total_iterations)
            for tier, nbytes in report.transfer_bytes.items():
                metrics[f"transfer_{tier}_bytes_{tag}"] = float(nbytes)
            for tier, count in report.tree["tier_counts"].items():
                metrics[f"merges_{tier}_{tag}"] = float(count)

    # The gateable inverses: check_regression --slo only bounds from
    # above, so a ceiling on these is a floor on speedup / the gap margin.
    metrics["slowdown_4dev"] = 1.0 / metrics["speedup_4dev"]
    metrics["gap_over_budget_4dev"] = (
        metrics["dual_gap_4dev"] / metrics["gap_budget_4dev"]
    )
    metrics["gap_over_budget_2x2"] = (
        metrics["dual_gap_2x2"] / metrics["gap_budget_2x2"]
    )
    return metrics


BENCH_RUNNERS = {
    "cascade": run_cascade,
    "smoke": run_smoke,
    "backends": run_backends,
    "coupling": run_coupling,
    "train_interleave": run_train_interleave,
    "serving": run_serving,
    "distributed": run_distributed,
    "http_serving": run_http_serving,
    "hot_swap": run_hot_swap,
    "fault_recovery": run_fault_recovery,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run a named benchmark and emit its ``BENCH_<name>.json``."""
    parser = argparse.ArgumentParser(
        prog="emit_json",
        description="Run a benchmark and write machine-readable JSON results.",
    )
    parser.add_argument(
        "bench",
        nargs="?",
        default="smoke",
        choices=sorted(BENCH_RUNNERS),
        help="which benchmark to run (default: smoke)",
    )
    parser.add_argument(
        "--emit-json",
        metavar="PATH",
        default=None,
        help="output path (default: benchmarks/results/BENCH_<name>.json)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the available benchmark runner names and exit",
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in sorted(BENCH_RUNNERS):
            print(name)
        return 0
    metrics = BENCH_RUNNERS[args.bench]()
    target = write_bench_json(args.bench, metrics, path=args.emit_json)
    print(f"wrote {target}")
    for key in sorted(metrics):
        print(f"  {key:28s} {metrics[key]:.6g}")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    raise SystemExit(main())
