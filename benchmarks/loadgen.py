"""Load generation for the HTTP serving front-end, on the simulated clock.

Two driver families, both deterministic under a fixed seed:

- **open loop** — arrivals come from a seeded non-homogeneous Poisson
  process whose rate follows a :class:`TrafficShape` (``steady``,
  ``bursty`` on/off square wave, or ``diurnal`` sinusoid — the
  "millions of users" day compressed onto the simulated axis).  Arrival
  times are independent of server behaviour, so an overloaded server
  *must* shed rather than slow the offered stream — the regime the
  admission-control contract is about.
- **closed loop** — ``n_clients`` virtual users each keep exactly one
  request in flight, issuing the next ``think_s`` after the previous
  completion (shed requests retry after ``backoff_s``).  Offered load
  self-limits to the server's service rate, which is what makes it the
  right calibration probe for capacity.

Both drivers run entirely on the dispatcher's virtual timeline: a
10-minute diurnal trace costs milliseconds of wall time, and repeated
runs produce byte-identical latency percentiles and shed decisions —
the property ``BENCH_http_serving.json`` pins in CI.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.server.dispatcher import Dispatcher, ServerRequest

__all__ = [
    "LoadReport",
    "TrafficShape",
    "open_loop_arrivals",
    "run_closed_loop",
    "run_open_loop",
]

SHAPE_KINDS = ("steady", "bursty", "diurnal")


@dataclass(frozen=True)
class TrafficShape:
    """A rate profile lambda(t) for the open-loop arrival process.

    Parameters
    ----------
    kind:
        ``steady`` — constant ``rate_rps``; ``bursty`` — square wave
        alternating ``rate_rps * burst_factor`` (for ``burst_duty`` of
        each period) with a low trough that preserves the mean;
        ``diurnal`` — sinusoid ``rate * (1 + amplitude * sin)`` over
        ``period_s``.
    rate_rps:
        Mean offered rate over the whole trace, requests per simulated
        second.
    duration_s:
        Trace length on the simulated axis.
    """

    kind: str
    rate_rps: float
    duration_s: float
    period_s: Optional[float] = None
    burst_factor: float = 4.0
    burst_duty: float = 0.25
    amplitude: float = 0.8

    def __post_init__(self) -> None:
        if self.kind not in SHAPE_KINDS:
            raise ValidationError(
                f"kind must be one of {SHAPE_KINDS}, got {self.kind!r}"
            )
        if self.rate_rps <= 0 or self.duration_s <= 0:
            raise ValidationError(
                "rate_rps and duration_s must be > 0, got "
                f"{self.rate_rps} and {self.duration_s}"
            )
        if not 0.0 < self.burst_duty < 1.0:
            raise ValidationError(
                f"burst_duty must be in (0, 1), got {self.burst_duty}"
            )
        if self.burst_factor < 1.0:
            raise ValidationError(
                f"burst_factor must be >= 1, got {self.burst_factor}"
            )
        if not 0.0 <= self.amplitude < 1.0:
            raise ValidationError(
                f"amplitude must be in [0, 1), got {self.amplitude}"
            )

    @property
    def effective_period_s(self) -> float:
        """Modulation period (defaults to a quarter of the trace)."""
        return self.period_s if self.period_s else self.duration_s / 4.0

    def rate_at(self, t_s: float) -> float:
        """Instantaneous arrival rate at simulated time ``t_s``."""
        if self.kind == "steady":
            return self.rate_rps
        phase = (t_s % self.effective_period_s) / self.effective_period_s
        if self.kind == "bursty":
            # Peak for burst_duty of the period; the trough rate keeps
            # the time-averaged rate equal to rate_rps.
            peak = self.rate_rps * self.burst_factor
            trough = (
                self.rate_rps
                * (1.0 - self.burst_factor * self.burst_duty)
                / (1.0 - self.burst_duty)
            )
            trough = max(0.0, trough)
            return peak if phase < self.burst_duty else trough
        # diurnal
        return self.rate_rps * (
            1.0 + self.amplitude * np.sin(2.0 * np.pi * phase)
        )

    @property
    def peak_rate_rps(self) -> float:
        """Upper bound of lambda(t), for Poisson thinning."""
        if self.kind == "steady":
            return self.rate_rps
        if self.kind == "bursty":
            return self.rate_rps * self.burst_factor
        return self.rate_rps * (1.0 + self.amplitude)


def open_loop_arrivals(shape: TrafficShape, *, seed: int = 0) -> np.ndarray:
    """Arrival times of a seeded non-homogeneous Poisson process.

    Thinning (Lewis & Shedler): candidates at the peak rate, each kept
    with probability ``rate(t) / peak``.  Deterministic per seed.
    """
    rng = np.random.default_rng(seed)
    peak = shape.peak_rate_rps
    times = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / peak)
        if t >= shape.duration_s:
            break
        if rng.random() <= shape.rate_at(t) / peak:
            times.append(t)
    return np.asarray(times)


@dataclass
class LoadReport:
    """Outcome of one load run against a dispatcher."""

    driver: str
    n_offered: int = 0
    n_accepted: int = 0
    n_shed_429: int = 0
    n_shed_503: int = 0
    makespan_s: float = 0.0
    accepted_latencies_s: list = field(default_factory=list)
    shed_statuses: list = field(default_factory=list)
    decision_log: list = field(default_factory=list)
    mean_batch_size: float = 0.0
    per_tenant: dict = field(default_factory=dict)

    @property
    def n_shed(self) -> int:
        """All shed requests, both 429 and 503."""
        return self.n_shed_429 + self.n_shed_503

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests shed."""
        return self.n_shed / self.n_offered if self.n_offered else 0.0

    @property
    def accepted_throughput_rps(self) -> float:
        """Accepted completions per simulated second of the run."""
        if self.makespan_s <= 0:
            return 0.0
        return self.n_accepted / self.makespan_s

    def latency_percentile(self, q: float) -> float:
        """Accepted-request latency percentile (simulated seconds)."""
        if not self.accepted_latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.accepted_latencies_s), q))

    def metrics(self, prefix: str = "") -> dict[str, float]:
        """Flat numeric summary for ``BENCH_*.json`` emission."""
        p = prefix
        return {
            f"{p}offered": float(self.n_offered),
            f"{p}accepted": float(self.n_accepted),
            f"{p}shed_429": float(self.n_shed_429),
            f"{p}shed_503": float(self.n_shed_503),
            f"{p}shed_rate": self.shed_rate,
            f"{p}makespan_s": self.makespan_s,
            f"{p}throughput_rps": self.accepted_throughput_rps,
            f"{p}latency_p50_s": self.latency_percentile(50.0),
            f"{p}latency_p99_s": self.latency_percentile(99.0),
            f"{p}mean_batch_size": self.mean_batch_size,
        }


def _tenant_for(rng: np.random.Generator, tenants: Sequence[tuple[str, float]]) -> str:
    names = [name for name, _ in tenants]
    weights = np.asarray([w for _, w in tenants], dtype=np.float64)
    return str(rng.choice(names, p=weights / weights.sum()))


def _finish(report: LoadReport, dispatcher: Dispatcher, tickets: list[ServerRequest]) -> LoadReport:
    for ticket in tickets:
        if ticket.shed:
            if ticket.status == 429:
                report.n_shed_429 += 1
            else:
                report.n_shed_503 += 1
            report.shed_statuses.append(ticket.status)
        else:
            report.n_accepted += 1
            report.accepted_latencies_s.append(ticket.latency_s)
    report.n_offered = len(tickets)
    stats = dispatcher.stats
    report.makespan_s = stats.makespan_s
    report.mean_batch_size = stats.mean_batch_size
    report.decision_log = list(dispatcher.decision_log)
    report.per_tenant = dispatcher.admission.counters_snapshot()
    return report


def run_open_loop(
    dispatcher: Dispatcher,
    rows: Sequence[object],
    shape: TrafficShape,
    *,
    kind: str = "predict_proba",
    tenants: Sequence[tuple[str, float]] = (("default", 1.0),),
    priorities: Sequence[tuple[int, float]] = ((0, 1.0),),
    seed: int = 0,
) -> LoadReport:
    """Drive one open-loop trace through ``dispatcher``; returns the report.

    ``rows`` is the request pool — request *i* sends
    ``rows[i % len(rows)]``.  Tenants and priorities are drawn per
    request from the given weighted sets (seeded, so the full offered
    stream is reproducible).
    """
    arrivals = open_loop_arrivals(shape, seed=seed)
    rng = np.random.default_rng(seed + 1)
    prio_values = [int(v) for v, _ in priorities]
    prio_weights = np.asarray([w for _, w in priorities], dtype=np.float64)
    prio_weights = prio_weights / prio_weights.sum()
    tickets: list[ServerRequest] = []
    for i, arrival in enumerate(arrivals):
        tenant = _tenant_for(rng, tenants)
        priority = int(rng.choice(prio_values, p=prio_weights))
        tickets.append(
            dispatcher.submit(
                rows[i % len(rows)],
                kind=kind,
                tenant=tenant,
                priority=priority,
                arrival_s=float(arrival),
            )
        )
    dispatcher.drain()
    return _finish(LoadReport(driver="open_loop"), dispatcher, tickets)


def run_closed_loop(
    dispatcher: Dispatcher,
    rows: Sequence[object],
    *,
    n_clients: int = 8,
    n_requests: int = 256,
    think_s: float = 0.0,
    backoff_s: float = 0.0,
    kind: str = "predict_proba",
    tenant: str = "default",
) -> LoadReport:
    """Drive ``n_requests`` through ``n_clients`` one-in-flight users.

    Each client issues, waits for its completion (or shed verdict), then
    re-issues after ``think_s`` (``backoff_s`` after a shed).  Offered
    load tracks service rate, so this measures saturated capacity.
    """
    if n_clients < 1:
        raise ValidationError(f"n_clients must be >= 1, got {n_clients}")
    if n_requests < 1:
        raise ValidationError(f"n_requests must be >= 1, got {n_requests}")
    heap: list[tuple[float, int]] = [(0.0, c) for c in range(n_clients)]
    heapq.heapify(heap)
    outstanding: dict[int, ServerRequest] = {}
    tickets: list[ServerRequest] = []
    issued = 0

    def release_done(now_floor: float) -> None:
        for client, ticket in list(outstanding.items()):
            if ticket.shed:
                next_t = max(now_floor, ticket.arrival_s + backoff_s)
                heapq.heappush(heap, (next_t, client))
                del outstanding[client]
            elif ticket.done:
                heapq.heappush(heap, (ticket.completion_s + think_s, client))
                del outstanding[client]

    while issued < n_requests:
        release_done(dispatcher.now_s)
        if heap:
            t, client = heapq.heappop(heap)
            arrival = max(t, dispatcher.now_s)
            ticket = dispatcher.submit(
                rows[issued % len(rows)],
                kind=kind,
                tenant=tenant,
                arrival_s=arrival,
            )
            issued += 1
            tickets.append(ticket)
            outstanding[client] = ticket
        elif outstanding:
            dispatcher.drain()
        else:  # pragma: no cover - defensive: no clients left to issue
            break
    dispatcher.drain()
    return _finish(LoadReport(driver="closed_loop"), dispatcher, tickets)
