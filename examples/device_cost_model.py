"""Exploring the simulated-device substrate.

The reproduction replaces the paper's CUDA substrate with an explicit cost
model (DESIGN.md Section 6).  This example shows the substrate as a
first-class feature: the same training run on different devices, the
hardware-event counters behind the times, and why batching kernel rows
wins (the paper's core argument, measured rather than asserted).

Run:  python examples/device_cost_model.py
"""

from repro import GMPSVC
from repro.baselines import CMPSVMClassifier
from repro.data import load_dataset
from repro.gpusim import make_engine, scaled_tesla_p100, tesla_p100, xeon_e5_2640v4


def describe(name, classifier) -> float:
    report = classifier.training_report_
    counters = report.counters
    seconds = report.simulated_seconds
    print(f"{name:28s} {seconds * 1e3:9.3f} ms simulated")
    print(f"  {'FLOPs':>22s}: {counters.flops:,}")
    print(f"  {'bytes moved':>22s}: {counters.bytes_total:,}")
    print(f"  {'kernel launches':>22s}: {counters.kernel_launches:,}")
    print(f"  {'PCIe bytes':>22s}: {counters.pcie_bytes:,}")
    return seconds


def main() -> None:
    dataset = load_dataset("adult")
    spec = dataset.spec
    print(f"workload: {spec.name} "
          f"({dataset.n_train} x {spec.dimension}, C={spec.penalty:g}, "
          f"gamma={spec.gamma:g})\n")

    # Same algorithm, two devices.
    gpu = GMPSVC(C=spec.penalty, gamma=spec.gamma)
    gpu.fit(dataset.x_train, dataset.y_train)
    gpu_seconds = describe("GMP-SVM on scaled P100", gpu)

    cpu = CMPSVMClassifier(C=spec.penalty, gamma=spec.gamma)
    cpu.fit(dataset.x_train, dataset.y_train)
    cpu_seconds = describe("CMP-SVM on 40-thread Xeon", cpu)

    print(f"\nGPU over CPU: {cpu_seconds / gpu_seconds:.2f}x "
          f"(the paper reports 3-10x for training)")

    # The batching argument, straight from the cost model: computing one
    # kernel row reads the whole dataset for 1 row of output; computing
    # q rows in a batch reads it once for q rows.
    print("\nper-row cost of kernel-row computation on an (unscaled) P100:")
    engine = make_engine(tesla_p100())
    n, d = 32_561, 123  # the real Adult
    single = engine.op_charge(
        flops=2 * n * d, bytes_read=n * d * 8, bytes_written=n * 8, launches=1
    )
    print(f"  one row at a time : {single.total_s * 1e6:8.2f} us/row")
    for q in (8, 64, 512):
        batch = engine.op_charge(
            flops=2 * q * n * d,
            bytes_read=n * d * 8 + q * d * 8,
            bytes_written=q * n * 8,
            launches=1,
        )
        print(f"  batch of {q:4d} rows: {batch.total_s / q * 1e6:8.2f} us/row "
              f"({single.total_s / (batch.total_s / q):5.1f}x cheaper)")
    print('\n("when q > 10, the computation cost per row is often over ten'
          '\n  times cheaper than the cost of computing a row individually")')

    # Device memory is a real constraint: the scheduler packs concurrent
    # binary SVMs against it.
    device = scaled_tesla_p100()
    report = gpu.training_report_
    print(f"\ndevice: {device.name} with "
          f"{device.global_mem_bytes / 2**20:.1f} MiB global memory")
    print(f"peak per-SVM footprint: "
          f"{report.peak_task_memory_bytes / 2**20:.2f} MiB; "
          f"scheduler ran up to {report.max_concurrency} binary SVMs "
          f"concurrently ({report.concurrency_speedup:.2f}x over serial)")

    # Thread-count sweep on the CPU cost model (the OpenMP story).
    print("\nLibSVM-style thread scaling (simulated):")
    from repro.baselines import LibSVMClassifier

    base_seconds = None
    for threads in (1, 8, 20, 40):
        clf = LibSVMClassifier(
            C=spec.penalty, gamma=spec.gamma, openmp=threads > 1, threads=threads
        )
        clf.fit(dataset.x_train, dataset.y_train)
        seconds = clf.training_report_.simulated_seconds
        if base_seconds is None:
            base_seconds = seconds
        print(f"  {threads:3d} threads: {seconds * 1e3:9.2f} ms "
              f"({base_seconds / seconds:5.2f}x)")


if __name__ == "__main__":
    main()
