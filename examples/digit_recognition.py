"""Digit recognition: the paper's MNIST workload end to end.

Trains GMP-SVM on the registry's MNIST stand-in, compares it against the
GPU baseline (training time and identical predictions), prints a confusion
matrix, and round-trips the model through the persistence format.

Run:  python examples/digit_recognition.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import GMPSVC, load_model
from repro.baselines import GPUBaselineClassifier
from repro.core.predictor import PredictorConfig, predict_proba_model
from repro.data import load_dataset
from repro.gpusim import scaled_tesla_p100


def confusion_matrix(truth: np.ndarray, predicted: np.ndarray, k: int) -> np.ndarray:
    matrix = np.zeros((k, k), dtype=np.int64)
    for actual, guess in zip(truth, predicted):
        matrix[int(actual), int(guess)] += 1
    return matrix


def main() -> None:
    dataset = load_dataset("mnist")
    spec = dataset.spec
    print(f"dataset: {spec.name} — {dataset.n_train} train / {dataset.n_test} "
          f"test, {spec.dimension} features, {spec.n_classes} classes")
    print(f"(stands in for the paper's MNIST: {spec.paper_cardinality} "
          f"instances, scaled {spec.scale_factor:.0f}x down)")
    print(f"hyper-parameters from the paper: C={spec.penalty:g}, "
          f"gamma={spec.gamma:g}\n")

    gmp = GMPSVC(C=spec.penalty, gamma=spec.gamma)
    gmp.fit(dataset.x_train, dataset.y_train)
    predictions = gmp.predict(dataset.x_test)
    accuracy = float(np.mean(predictions == dataset.y_test))
    print(f"GMP-SVM test accuracy: {accuracy:.3f}")
    print(f"GMP-SVM simulated training time: "
          f"{gmp.training_report_.simulated_seconds * 1e3:.2f} ms "
          f"({gmp.training_report_.n_binary_svms} binary SVMs, "
          f"concurrency {gmp.training_report_.max_concurrency})")

    baseline = GPUBaselineClassifier(C=spec.penalty, gamma=spec.gamma)
    baseline.fit(dataset.x_train, dataset.y_train)
    baseline_predictions = baseline.predict(dataset.x_test)
    speedup = (
        baseline.training_report_.simulated_seconds
        / gmp.training_report_.simulated_seconds
    )
    agreement = float(np.mean(predictions == baseline_predictions))
    print(f"\nGPU baseline simulated training time: "
          f"{baseline.training_report_.simulated_seconds * 1e3:.2f} ms "
          f"-> GMP-SVM is {speedup:.2f}x faster")
    print(f"prediction agreement between the two systems: {agreement:.1%}")

    print("\nconfusion matrix (rows = truth, columns = predicted):")
    matrix = confusion_matrix(dataset.y_test, predictions, spec.n_classes)
    header = "     " + "".join(f"{c:5d}" for c in range(spec.n_classes))
    print(header)
    for row_label, row in enumerate(matrix):
        print(f"{row_label:5d}" + "".join(f"{v:5d}" for v in row))

    # Persistence round-trip.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "mnist.repro-model"
        gmp.save(path)
        restored = load_model(path)
        config = PredictorConfig(device=scaled_tesla_p100())
        proba_restored, _ = predict_proba_model(config, restored, dataset.x_test)
        proba_original = gmp.predict_proba(dataset.x_test)
        drift = float(np.max(np.abs(proba_restored - proba_original)))
        print(f"\nmodel round-tripped through {path.name}; "
              f"max probability drift: {drift:.2e}")


if __name__ == "__main__":
    main()
