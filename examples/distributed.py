"""Distributed: shard one training run across a simulated GPU cluster.

The one-against-one decomposition of a k-class problem yields k(k-1)/2
*independent* binary SVMs — a natural unit of distribution.
``train_multiclass_sharded`` places them on a multi-device cluster
(co-locating pairs that share a class block), runs the interleaved wave
driver on every device, and merges the per-device models back over the
simulated interconnect.  Sharding only changes the *timeline*: the
trained model, its decision values and its coupled probabilities are
bit-for-bit what single-device training produces.

Run:  python examples/distributed.py
"""

import numpy as np

from repro import ClusterSpec, TrainerConfig, train_multiclass_sharded
from repro.core.predictor import PredictorConfig, predict_proba_model
from repro.core.trainer import train_multiclass
from repro.data import gaussian_blobs, train_test_split
from repro.gpusim.device import scaled_tesla_p100
from repro.kernels.functions import kernel_from_name

K = 10
N_DEVICES = 4


def main() -> None:
    data, labels = gaussian_blobs(n=800, n_features=16, n_classes=K, seed=11)
    x_train, y_train, x_test, _ = train_test_split(
        data, labels, test_fraction=0.25, seed=1
    )
    kernel = kernel_from_name("gaussian", gamma=0.3)
    config = TrainerConfig(device=scaled_tesla_p100(), working_set_size=32)

    # Baseline: the whole workload on one simulated device.
    model_single, report_single = train_multiclass(
        config, x_train, y_train, kernel, 1.0
    )
    print(f"single device: {report_single.n_binary_svms} binary SVMs in "
          f"{report_single.simulated_seconds * 1e3:.3f} ms simulated")

    # Sharded: the same workload over a 4-device cluster.
    cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=N_DEVICES)
    model, report = train_multiclass_sharded(
        config, cluster, x_train, y_train, kernel, 1.0, placement="affinity"
    )
    print(f"\n{report.cluster_name}: makespan "
          f"{report.simulated_seconds * 1e3:.3f} ms simulated "
          f"({report_single.simulated_seconds / report.simulated_seconds:.2f}x "
          f"vs one device)")
    print("per-device timelines:")
    for entry in report.per_device:
        print(f"  device {entry['device']}: {entry['n_svms']:2d} SVMs  "
              f"{entry['simulated_seconds'] * 1e3:7.3f} ms  "
              f"utilization {entry['utilization']:6.1%}  "
              f"transfers {entry['transfer_bytes'] / 1e3:7.1f} KB")
    print(f"cluster speedup (busy/makespan): {report.cluster_speedup:.2f}x")
    print(f"interconnect total: {report.transfer_bytes_total / 1e3:.1f} KB "
          f"(SV merge: {report.merge_bytes / 1e3:.1f} KB)")

    # The distribution is timeline-only: probabilities are bitwise equal.
    predictor = PredictorConfig(device=scaled_tesla_p100())
    proba_single, _ = predict_proba_model(predictor, model_single, x_test)
    proba_sharded, _ = predict_proba_model(predictor, model, x_test)
    assert np.array_equal(proba_single, proba_sharded), (
        "sharded training must reproduce single-device probabilities exactly"
    )
    print(f"\nprobabilities bitwise equal across {N_DEVICES} devices: "
          f"{np.array_equal(proba_single, proba_sharded)}")


if __name__ == "__main__":
    main()
