"""HTTP serving: admission control, overload shedding, bitwise parity.

The serving tier's network edge (DESIGN.md §13): ``ServerApp`` routes
HTTP requests into a ``Dispatcher`` — a worker pool over one sealed
``InferenceSession`` with per-tenant token-bucket admission, bounded
priority queues and adaptive micro-batching, all on the simulated
clock.  This example drives it three ways:

1. in-process HTTP requests whose response bodies decode to arrays
   *bitwise equal* to direct session calls (the wire format ships raw
   float64 buffers, never decimal text);
2. an open-loop overload: 2x the server's calibrated capacity offered
   by a seeded Poisson process — the server sheds the excess with
   explicit 429/503 verdicts while accepted-request p99 stays close to
   the uncontended run;
3. a rate-capped tenant whose requests bounce with 429 + Retry-After.

A real socket needs no extra code: ``repro-serve model.repro`` serves
the same app over stdlib HTTP, and ``serve_http(app, ...)`` does it
programmatically.

Run:  python examples/http_serving.py
"""

import json
import pathlib
import sys

# The load generator lives in benchmarks/ (repo root), which is not on
# sys.path when this file runs as a script.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from repro import GMPSVC, PredictorConfig, ServerApp, TenantPolicy
from repro.data import gaussian_blobs, train_test_split
from repro.gpusim import scaled_tesla_p100
from repro.server import AdmissionController, Dispatcher
from repro.server.protocol import decode_array, encode_matrix
from repro.serving import InferenceSession


def build_dispatcher(model, *, limited: bool = False) -> Dispatcher:
    session = InferenceSession(
        model, PredictorConfig(device=scaled_tesla_p100())
    )
    admission = AdmissionController(
        default_policy=TenantPolicy(
            rate_per_s=1e12, burst=1_000_000, max_queue=10
        ),
        policies=(
            {"capped": TenantPolicy(rate_per_s=1.0, burst=2, max_queue=10)}
            if limited
            else {}
        ),
        max_queue_global=12,
    )
    return Dispatcher(session, n_workers=2, max_batch=16, admission=admission)


def main() -> None:
    data, labels = gaussian_blobs(n=400, n_features=8, n_classes=3, seed=7)
    x_train, y_train, x_test, _ = train_test_split(
        data, labels, test_fraction=0.3, seed=1
    )
    classifier = GMPSVC(C=10.0, gamma=0.3, working_set_size=64)
    classifier.fit(x_train, y_train)
    model = classifier.model_

    # --- 1. HTTP round trip, bitwise-equal to the direct session call.
    app = ServerApp(build_dispatcher(model))
    batch = x_test[:4]
    body = json.dumps({"instances": encode_matrix(batch)}).encode()
    status, _, payload = app.handle_request(
        "POST", "/v1/predict_proba", body
    )
    served = decode_array(json.loads(payload)["result"])
    direct = InferenceSession(
        model, PredictorConfig(device=scaled_tesla_p100())
    ).predict_proba(batch)
    print(f"HTTP 200: {status == 200}")
    print(f"HTTP result vs direct session bitwise equal: "
          f"{served.tobytes() == direct.tobytes()}")

    # --- 2. Open-loop overload: offer 2x capacity, shed gracefully.
    from benchmarks.loadgen import (
        TrafficShape,
        run_closed_loop,
        run_open_loop,
    )

    rows = [x_test[i : i + 1] for i in range(32)]
    capacity = run_closed_loop(
        build_dispatcher(model), rows, n_clients=32, n_requests=256
    ).accepted_throughput_rps
    print(f"\ncalibrated capacity: {capacity:.3g} req/simulated-second")

    uncontended = run_open_loop(
        build_dispatcher(model),
        rows,
        TrafficShape(kind="steady", rate_rps=0.25 * capacity,
                     duration_s=800.0 / capacity),
        seed=5,
    )
    overload = run_open_loop(
        build_dispatcher(model),
        rows,
        TrafficShape(kind="steady", rate_rps=2.0 * capacity,
                     duration_s=400.0 / capacity),
        seed=7,
    )
    print(f"uncontended (0.25x): {uncontended.n_offered} offered, "
          f"shed rate {uncontended.shed_rate:.1%}, "
          f"p99 {uncontended.latency_percentile(99.0) * 1e9:.1f} ns")
    print(f"overload     (2.0x): {overload.n_offered} offered, "
          f"shed rate {overload.shed_rate:.1%} "
          f"(all explicit 429/503: "
          f"{all(s in (429, 503) for s in overload.shed_statuses)}), "
          f"p99 {overload.latency_percentile(99.0) * 1e9:.1f} ns")
    ratio = overload.latency_percentile(99.0) / max(
        uncontended.latency_percentile(99.0), 1e-300
    )
    print(f"accepted-p99 degradation at 2x overload: {ratio:.2f}x "
          f"(SLO contract: <= 3x)")

    # --- 3. A rate-capped tenant bounces with 429 + Retry-After.
    capped_app = ServerApp(build_dispatcher(model, limited=True))
    single = json.dumps({"instances": encode_matrix(x_test[:1])}).encode()
    statuses = []
    for _ in range(4):
        status, headers, _ = capped_app.handle_request(
            "POST", "/v1/predict", single, {"X-Tenant": "capped"}
        )
        statuses.append((status, headers.get("Retry-After")))
    print(f"\ncapped tenant burst of 4: "
          f"{[(s, ra) for s, ra in statuses]}")
    assert statuses[0][0] == 200 and statuses[-1][0] == 429


if __name__ == "__main__":
    main()
