"""Model selection and imbalanced data: grid search and class weighting.

Shows the workflow that produced the paper's per-dataset hyper-parameters
(Table 2's C and gamma come from "the existing studies", which grid-
searched them), then handles a 9:1 imbalanced problem with LibSVM-style
per-class penalties.

Run:  python examples/model_selection.py
"""

import numpy as np

from repro import GMPSVC
from repro.data import gaussian_blobs, train_test_split
from repro.model_selection import cross_val_score, grid_search


def main() -> None:
    # ------------------------------------------------------------------
    # Part 1: grid search for C and gamma.
    # ------------------------------------------------------------------
    data, labels = gaussian_blobs(
        n=500, n_features=6, n_classes=3, separation=1.3, noise=1.2, seed=31
    )
    x_train, y_train, x_test, y_test = train_test_split(
        data, labels, test_fraction=0.3, seed=32
    )

    print("grid search over C x gamma (3-fold cross-validation):\n")
    result = grid_search(
        lambda **params: GMPSVC(working_set_size=32, **params),
        {"C": [0.1, 1.0, 10.0, 100.0], "gamma": [0.01, 0.1, 0.5]},
        x_train,
        y_train,
        folds=3,
    )
    print(result.as_table())
    print(f"\nbest configuration: {result.best_params} "
          f"(cv accuracy {result.best_score:.3f})")

    best = GMPSVC(working_set_size=32, **result.best_params)
    best.fit(x_train, y_train)
    print(f"test accuracy with best configuration: "
          f"{best.score(x_test, y_test):.3f}")

    scores = cross_val_score(
        lambda: GMPSVC(working_set_size=32, **result.best_params),
        x_train, y_train, folds=5,
    )
    print(f"5-fold scores of the chosen model: {np.round(scores, 3).tolist()}")

    # ------------------------------------------------------------------
    # Part 2: class weighting on imbalanced data (LibSVM's -wi).
    # ------------------------------------------------------------------
    rng = np.random.default_rng(33)
    x_imb = np.vstack(
        [rng.normal(-0.7, 1.0, (360, 5)), rng.normal(0.7, 1.0, (40, 5))]
    )
    y_imb = np.concatenate([np.zeros(360), np.ones(40)])
    print(f"\nimbalanced problem: {int((y_imb == 0).sum())} majority vs "
          f"{int((y_imb == 1).sum())} minority instances")

    def minority_recall(classifier) -> float:
        predictions = classifier.predict(x_imb)
        return float(np.mean(predictions[y_imb == 1] == 1))

    plain = GMPSVC(C=1.0, gamma=0.3, working_set_size=32).fit(x_imb, y_imb)
    weighted = GMPSVC(
        C=1.0, gamma=0.3, working_set_size=32, class_weight={1: 9.0}
    ).fit(x_imb, y_imb)
    print(f"minority recall without weighting: {minority_recall(plain):.2f}")
    print(f"minority recall with class_weight={{1: 9.0}}: "
          f"{minority_recall(weighted):.2f}")
    print(f"(overall accuracy: {plain.score(x_imb, y_imb):.3f} -> "
          f"{weighted.score(x_imb, y_imb):.3f})")


if __name__ == "__main__":
    main()
