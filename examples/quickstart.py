"""Quickstart: train a multi-class probabilistic SVM and inspect its costs.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GMPSVC
from repro.data import gaussian_blobs, train_test_split
from repro.perf import PREDICT_GROUPS, TRAIN_GROUPS


def main() -> None:
    # A small 4-class problem (deterministic).
    data, labels = gaussian_blobs(n=600, n_features=10, n_classes=4, seed=42)
    x_train, y_train, x_test, y_test = train_test_split(
        data, labels, test_fraction=0.25, seed=0
    )

    # GMP-SVM with the paper's defaults scaled to this problem size:
    # Gaussian kernel, batched solver with a FIFO kernel buffer,
    # concurrent binary SVMs, kernel-value and SV sharing.
    classifier = GMPSVC(C=10.0, gamma=0.2, working_set_size=128)
    classifier.fit(x_train, y_train)

    accuracy = classifier.score(x_test, y_test)
    probabilities = classifier.predict_proba(x_test)

    print(f"test accuracy: {accuracy:.3f}")
    print(f"first test instance probabilities: {np.round(probabilities[0], 3)}")
    print(f"(they sum to {probabilities[0].sum():.6f})")

    train_report = classifier.training_report_
    print(f"\nsimulated training time on {train_report.device_name}: "
          f"{train_report.simulated_seconds * 1e3:.3f} ms")
    print(f"binary SVMs trained: {train_report.n_binary_svms} "
          f"(up to {train_report.max_concurrency} concurrently)")
    print(f"kernel-sharing hit rate: {train_report.sharing_hit_rate:.1%}")
    print("training-time breakdown (Figure 11 style):")
    for component, fraction in sorted(
        train_report.fraction_breakdown(TRAIN_GROUPS).items()
    ):
        print(f"  {component:15s} {fraction:6.1%}")

    predict_report = classifier.prediction_report_
    print(f"\nsimulated prediction time: "
          f"{predict_report.simulated_seconds * 1e3:.3f} ms "
          f"for {predict_report.n_instances} instances")
    print("prediction-time breakdown (Figure 12 style):")
    for component, fraction in sorted(
        predict_report.fraction_breakdown(PREDICT_GROUPS).items()
    ):
        print(f"  {component:25s} {fraction:6.1%}")


if __name__ == "__main__":
    main()
