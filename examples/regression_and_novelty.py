"""Beyond classification: epsilon-SVR and one-class novelty detection.

ThunderSVM — the open-source home of the paper's system — also exposes
regression and one-class estimation; this example exercises both on the
same simulated-GPU machinery.

Run:  python examples/regression_and_novelty.py
"""

import numpy as np

from repro import SVR, OneClassSVM


def main() -> None:
    rng = np.random.default_rng(7)

    # ------------------------------------------------------------------
    # Epsilon-SVR: fit a noisy sine wave.
    # ------------------------------------------------------------------
    x = np.sort(rng.uniform(-3, 3, 250)).reshape(-1, 1)
    y = np.sin(x).ravel() + rng.normal(0, 0.08, 250)

    svr = SVR(C=10.0, epsilon_tube=0.1, gamma=1.0)
    svr.fit(x, y)
    predictions = svr.predict(x)
    inside_tube = float(np.mean(np.abs(predictions - y) <= 0.1))

    print("epsilon-SVR on sin(x) + noise:")
    print(f"  R^2 on training data : {svr.score(x, y):.4f}")
    print(f"  residuals in the tube: {inside_tube:.1%} "
          f"(epsilon_tube = {svr.epsilon_tube})")
    print(f"  support vectors      : {svr.support_.size} of {x.shape[0]} "
          f"(the tube sparsifies the model)")
    print(f"  simulated train time : "
          f"{svr.training_report_.simulated_seconds * 1e3:.3f} ms")

    # A wider tube trades accuracy for sparsity.
    loose = SVR(C=10.0, epsilon_tube=0.3, gamma=1.0).fit(x, y)
    print(f"  with epsilon_tube=0.3: {loose.support_.size} support vectors, "
          f"R^2 {loose.score(x, y):.4f}")

    # ------------------------------------------------------------------
    # One-class SVM: learn the support of clean data, flag anomalies.
    # ------------------------------------------------------------------
    clean = rng.normal(0, 1, (300, 4))
    anomalies = rng.uniform(4, 7, (25, 4)) * rng.choice([-1, 1], (25, 4))

    detector = OneClassSVM(nu=0.1, gamma=0.25)
    detector.fit(clean)

    train_outlier_rate = float(np.mean(detector.predict(clean) == -1))
    caught = float(np.mean(detector.predict(anomalies) == -1))
    print("\none-class SVM (nu = 0.1) on a Gaussian cloud:")
    print(f"  training points flagged: {train_outlier_rate:.1%} "
          f"(the nu-property bounds this near 10%)")
    print(f"  injected anomalies caught: {caught:.1%}")
    print(f"  support vectors: {detector.support_.size} of {clean.shape[0]}")

    scores = detector.decision_function(np.vstack([clean[:3], anomalies[:3]]))
    print(f"  decision values, 3 inliers then 3 anomalies: "
          f"{np.round(scores, 3).tolist()}")


if __name__ == "__main__":
    main()
