"""Serving: seal a fitted model once, micro-batch many small requests.

A trained model answering single-instance requests one at a time pays
the whole prediction pipeline — engine setup, pool norms, sigmoid
stacking — per request.  The serving layer amortizes all of it:
``InferenceSession`` seals the fitted model into warm device state, and
``MicroBatcher`` fuses queued requests into batched dispatches whose
per-request results are *bitwise* what one-shot calls would return.

Run:  python examples/serving.py
"""

import numpy as np

from repro import GMPSVC, InferenceSession, MicroBatcher
from repro.data import gaussian_blobs, train_test_split


def main() -> None:
    data, labels = gaussian_blobs(n=500, n_features=8, n_classes=3, seed=21)
    x_train, y_train, x_test, y_test = train_test_split(
        data, labels, test_fraction=0.3, seed=1
    )
    classifier = GMPSVC(C=10.0, gamma=0.3, working_set_size=64)
    classifier.fit(x_train, y_train)

    # Seal once: pool shipped to the device, norms resident, sigmoid
    # arrays stacked.  Every subsequent call runs only per-request math.
    session = InferenceSession.from_estimator(classifier)
    print(f"sealed session: {session!r}")
    print(f"seal cost (simulated): "
          f"{session.stats.seal_simulated_s * 1e6:.3f} us, paid once")

    # Direct serving: bitwise-identical to the one-shot estimator path.
    served = session.predict_proba(x_test)
    one_shot = classifier.predict_proba(x_test)
    print(f"session vs one-shot bitwise equal: "
          f"{np.array_equal(served, one_shot)}")

    # Micro-batching: single-instance requests fused into one dispatch.
    batcher = MicroBatcher(session, max_batch=32, max_wait_s=1e-5)
    handles = [
        batcher.submit(x_test[i : i + 1], kind="predict_proba")
        for i in range(64)
    ]
    batcher.drain()
    fused = np.vstack([handle.result for handle in handles])
    print(f"micro-batched vs one-shot bitwise equal: "
          f"{np.array_equal(fused, one_shot[:64])}")

    stats = batcher.stats
    print(f"\nserved {stats.n_requests} requests in {stats.n_batches} "
          f"fused batches (mean {stats.mean_batch_size:.1f} req/batch)")
    print(f"simulated latency p50/p99: "
          f"{stats.latency_percentile(50.0) * 1e6:.3f} / "
          f"{stats.latency_percentile(99.0) * 1e6:.3f} us")
    print(f"total simulated serving time: "
          f"{session.stats.serve_simulated_s * 1e6:.3f} us "
          f"across {session.stats.n_calls} fused calls")


if __name__ == "__main__":
    main()
