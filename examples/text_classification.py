"""Sparse text classification with probabilistic output.

Exercises the CSR path end to end: a high-dimensional sparse workload
(News20-style), LibSVM-format file I/O, a 20-class probabilistic SVM, and
the calibration quality of the coupled probabilities.

Run:  python examples/text_classification.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import GMPSVC, dump_libsvm, load_libsvm
from repro.data import tfidf_like, train_test_split


def main() -> None:
    n_classes = 20
    data, labels = tfidf_like(
        n=800,
        n_features=2560,
        n_classes=n_classes,
        nnz_per_row=80,
        vocabulary_overlap=0.75,
        seed=7,
    )
    print(f"corpus: {data.shape[0]} documents x {data.shape[1]} terms, "
          f"density {data.density:.2%}, {n_classes} topics")

    # Round-trip through the LibSVM text format, as the real datasets ship.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "corpus.svm"
        dump_libsvm(data, labels, path)
        size_kb = path.stat().st_size / 1024
        data, labels = load_libsvm(path, n_features=2560)
        print(f"wrote and re-read {path.name} ({size_kb:.0f} KiB)")

    x_train, y_train, x_test, y_test = train_test_split(
        data, labels, test_fraction=0.25, seed=1
    )

    # News20's paper hyper-parameters: C=4, gamma=0.5.
    classifier = GMPSVC(C=4.0, gamma=0.5, working_set_size=64)
    classifier.fit(x_train, y_train)
    print(f"\ntrained {classifier.training_report_.n_binary_svms} binary SVMs "
          f"({n_classes} classes) in "
          f"{classifier.training_report_.simulated_seconds * 1e3:.2f} ms "
          f"simulated")
    print(f"support vectors stored once: "
          f"{classifier.model_.sv_pool.n_pool} "
          f"(referenced {classifier.model_.sv_pool.n_references} times; "
          f"sharing factor {classifier.model_.sv_pool.sharing_factor:.2f}x)")

    accuracy = classifier.score(x_test, y_test)
    probabilities = classifier.predict_proba(x_test)
    print(f"\ntest accuracy: {accuracy:.3f}")

    # Calibration check: when the model is confident it should be right.
    confidence = probabilities.max(axis=1)
    predictions = classifier.predict(x_test)
    correct = predictions == y_test
    for threshold in (0.15, 0.3):
        mask = confidence >= threshold
        if mask.any():
            print(f"accuracy when max probability >= {threshold:.1f}: "
                  f"{correct[mask].mean():.3f} "
                  f"({int(mask.sum())} of {mask.size} documents)")

    least_confident = int(np.argmin(confidence))
    top3 = np.argsort(probabilities[least_confident])[::-1][:3]
    print(f"\nleast confident document: true topic {y_test[least_confident]:g}, "
          f"top-3 predicted topics "
          f"{[int(classifier.classes_[t]) for t in top3]} with probabilities "
          f"{np.round(probabilities[least_confident][top3], 3).tolist()}")


if __name__ == "__main__":
    main()
