"""repro — GMP-SVM: efficient multi-class probabilistic SVMs.

A full reproduction of Wen, Shi, He, Chen & Chen, "Efficient Multi-Class
Probabilistic SVMs on GPUs" (ICDE 2019), with the GPU substrate replaced
by a cost-model simulator (see DESIGN.md).

Public entry points:

- :class:`GMPSVC` — the paper's system (batched solver, concurrent binary
  SVMs, kernel/SV sharing);
- :class:`SVC` — the binary special case;
- :class:`SVR` / :class:`OneClassSVM` — the regression and novelty-
  detection surfaces ThunderSVM (the paper's host project) also ships;
- :mod:`repro.baselines` — LibSVM, the GPU baseline, CMP-SVM, GTSVM,
  OHD-SVM and GPUSVM comparators;
- :mod:`repro.data` — synthetic workloads mirroring the paper's datasets;
- :func:`load_model` / model ``save`` — persistence.
"""

from repro.core.gmp import GMPSVC
from repro.core.oneclass import OneClassSVM
from repro.core.svc import SVC
from repro.core.svr import SVR
from repro.exceptions import (
    ConvergenceWarning,
    DeviceMemoryError,
    NotFittedError,
    ReproError,
    SolverError,
    SparseFormatError,
    ValidationError,
)
from repro.model.persistence import load_model, save_model
from repro.sparse import CSRMatrix, dump_libsvm, load_libsvm
from repro.telemetry import Tracer

__version__ = "1.0.0"

__all__ = [
    "CSRMatrix",
    "ConvergenceWarning",
    "DeviceMemoryError",
    "GMPSVC",
    "NotFittedError",
    "OneClassSVM",
    "ReproError",
    "SVC",
    "SVR",
    "SolverError",
    "SparseFormatError",
    "Tracer",
    "ValidationError",
    "__version__",
    "dump_libsvm",
    "load_libsvm",
    "load_model",
    "save_model",
]
