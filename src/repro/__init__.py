"""repro — GMP-SVM: efficient multi-class probabilistic SVMs.

A full reproduction of Wen, Shi, He, Chen & Chen, "Efficient Multi-Class
Probabilistic SVMs on GPUs" (ICDE 2019), with the GPU substrate replaced
by a cost-model simulator (see DESIGN.md).

This module is the stable public surface.  Everything in ``__all__`` is
covered by the API snapshot test (``tests/test_public_api.py``); the
deep-import paths the names come from keep working but are considered
implementation detail.

Public entry points:

- :class:`GMPSVC` — the paper's system (batched solver, concurrent binary
  SVMs, kernel/SV sharing); :class:`TrainerConfig` /
  :class:`PredictorConfig` are its underlying pipeline configurations;
- :class:`SVC` — the binary special case;
- :class:`SVR` / :class:`OneClassSVM` — the regression and novelty-
  detection surfaces ThunderSVM (the paper's host project) also ships;
- :class:`InferenceSession` / :class:`MicroBatcher` — the serving layer:
  seal a fitted model once, serve micro-batched requests against the warm
  state (DESIGN.md §11);
- :class:`ClusterSpec` / :func:`train_multiclass_sharded` /
  :class:`ShardedInferenceRouter` — multi-device sharding over a simulated
  GPU cluster; models and probabilities stay bitwise identical to the
  single-device paths (DESIGN.md §12);
- :class:`ServerApp` / :class:`TenantPolicy` — the HTTP front-end over
  the serving layer: lossless wire protocol, per-tenant admission
  control, worker-pool dispatch and graceful 429/503 shedding, behind
  the ``repro-serve`` CLI (DESIGN.md §13);
- :class:`ModelRegistry` / :class:`RegistryWatcher` — the versioned
  model registry and its polling side: content-hashed artifacts,
  lineage, integrity-checked loads, and zero-downtime hot swap into a
  live dispatcher (DESIGN.md §14);
- :class:`CascadeConfig` / :func:`train_cascade` — instance-sharded
  cascade SMO for single large binary problems over hierarchical
  clusters: seeded stratified partitioning, per-shard sub-solves, a
  topology-aware pairwise SV merge tree, and a global-KKT feedback loop
  gated by an explicit dual-gap error budget (DESIGN.md §17);
- :class:`FaultPlan` / :class:`FaultInjector` — deterministic, seeded
  fault injection over the simulated cluster (stragglers, device loss,
  link faults) with checkpoint/resume recovery that keeps models
  bitwise identical to fault-free runs (DESIGN.md §15);
- :class:`ComputeBackend` / :class:`BackendSpec` /
  :func:`register_backend` / :func:`get_backend` / :func:`list_backends`
  — the pluggable compute-backend registry: ``"numpy64"`` is the
  bitwise float64 reference, ``"numpy32"`` the delta-gated
  float32/mixed-precision fast path (DESIGN.md §16);
- :mod:`repro.baselines` — LibSVM, the GPU baseline, CMP-SVM, GTSVM,
  OHD-SVM and GPUSVM comparators;
- :mod:`repro.data` — synthetic workloads mirroring the paper's datasets;
- :func:`save_model` / :func:`load_model` — versioned persistence.
"""

from repro.backends import (
    BackendSpec,
    ComputeBackend,
    get_backend,
    list_backends,
    register_backend,
)
from repro.cascade import CascadeConfig, train_cascade
from repro.core.gmp import GMPSVC
from repro.distributed import (
    ClusterSpec,
    ShardedInferenceRouter,
    train_multiclass_sharded,
)
from repro.core.oneclass import OneClassSVM
from repro.core.predictor import PredictorConfig
from repro.core.svc import SVC
from repro.core.svr import SVR
from repro.core.trainer import TrainerConfig
from repro.exceptions import (
    CheckpointError,
    ConvergenceWarning,
    DeviceLostError,
    DeviceMemoryError,
    ModelFormatError,
    NotFittedError,
    RegistryError,
    ReproError,
    SolverError,
    SparseFormatError,
    ValidationError,
)
from repro.faults import FaultInjector, FaultPlan
from repro.model.persistence import load_model, save_model
from repro.registry import ModelRegistry, RegistryWatcher
from repro.server import ServerApp, TenantPolicy
from repro.serving import InferenceSession, MicroBatcher
from repro.sparse import CSRMatrix, dump_libsvm, load_libsvm
from repro.telemetry import Tracer

__version__ = "1.7.0"

__all__ = [
    "BackendSpec",
    "CSRMatrix",
    "CascadeConfig",
    "CheckpointError",
    "ClusterSpec",
    "ComputeBackend",
    "ConvergenceWarning",
    "DeviceLostError",
    "DeviceMemoryError",
    "FaultInjector",
    "FaultPlan",
    "GMPSVC",
    "InferenceSession",
    "MicroBatcher",
    "ModelFormatError",
    "ModelRegistry",
    "NotFittedError",
    "OneClassSVM",
    "PredictorConfig",
    "RegistryError",
    "RegistryWatcher",
    "ReproError",
    "SVC",
    "SVR",
    "ServerApp",
    "ShardedInferenceRouter",
    "SolverError",
    "SparseFormatError",
    "TenantPolicy",
    "Tracer",
    "TrainerConfig",
    "ValidationError",
    "__version__",
    "dump_libsvm",
    "get_backend",
    "list_backends",
    "load_libsvm",
    "load_model",
    "register_backend",
    "save_model",
    "train_cascade",
    "train_multiclass_sharded",
]
