"""Pluggable compute backends (DESIGN.md §16).

The registry-backed seam between the algorithm layers and the numeric
substrate.  ``"numpy64"`` is the float64 bitwise-parity reference;
``"numpy32"`` is the float32/mixed-precision fast path, delta-gated
instead of bitwise-gated.  Select one anywhere a
:class:`~repro.backends.base.BackendSpec` (or bare backend name) is
accepted: ``GMPSVC(backend="numpy32")``, ``TrainerConfig`` /
``PredictorConfig``, ``InferenceSession`` (via its config),
``train_multiclass_sharded``, or ``repro-train`` / ``repro-serve``
``--backend``.

The float64 reference numerics formerly importable as
``repro.sparse.ops.matmul_transpose`` and
``repro.probability.linalg.gaussian_elimination_batch`` live here now
(:mod:`repro.backends.reference`); the old paths keep working as
deprecation shims.
"""

from repro.backends.base import (
    DEFAULT_BACKEND,
    BackendSpec,
    ComputeBackend,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend,
)

# reference must load before the backend modules that delegate to it
# (package initialisation can be re-entered mid-import via repro.core).
from repro.backends.reference import (
    MATMUL_TILE_COLS,
    MATMUL_TILE_ROWS,
    gaussian_elimination,
    gaussian_elimination_batch,
    matmul_transpose,
)
from repro.backends.numpy32 import Numpy32Backend
from repro.backends.numpy64 import Numpy64Backend

__all__ = [
    "BackendSpec",
    "ComputeBackend",
    "DEFAULT_BACKEND",
    "MATMUL_TILE_COLS",
    "MATMUL_TILE_ROWS",
    "Numpy32Backend",
    "Numpy64Backend",
    "gaussian_elimination",
    "gaussian_elimination_batch",
    "get_backend",
    "list_backends",
    "matmul_transpose",
    "register_backend",
    "resolve_backend",
]

# The in-tree backends register on import; user backends call
# register_backend the same way.
register_backend(Numpy64Backend())
register_backend(Numpy32Backend())
