"""The compute-backend contract and registry.

A :class:`ComputeBackend` owns the numeric primitives every layer of the
pipeline is built on — the batched kernel-row products (``a @ b.T`` plus
the squared row norms the Gaussian expansion needs), the batched Gaussian
elimination of the coupling stage, and the reduction primitives of the
solvers.  The simulated :class:`~repro.gpusim.engine.Engine` dispatches
its numeric work to whichever backend it was built with, so swapping a
backend changes the arithmetic (and the cost model's precision width)
without touching solver, serving or distributed code.

Two backends ship in-tree:

- ``"numpy64"`` — the float64 reference path.  Its arithmetic is the
  pre-registry implementation moved verbatim (fixed-shape tiled products,
  batched partial-pivot elimination), so results are **bitwise identical**
  to what the library produced before backends existed.
- ``"numpy32"`` — the float32/mixed-precision fast path: kernel rows,
  cross products and row norms in float32, accumulation (decision-value
  sums, coupling, elimination, reductions) in float64.  It is held to
  accuracy-*delta* gates (probability L-infinity, argmax agreement)
  rather than bitwise parity; see DESIGN.md §16.

Future backends (numba, JAX, a real CUDA binding) drop into the same
registry: subclass :class:`ComputeBackend`, call :func:`register_backend`,
and every entry point that accepts a :class:`BackendSpec` can name it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.core.validation import strict_config
from repro.exceptions import ValidationError

__all__ = [
    "ComputeBackend",
    "BackendSpec",
    "register_backend",
    "get_backend",
    "list_backends",
    "resolve_backend",
    "DEFAULT_BACKEND",
]

DEFAULT_BACKEND = "numpy64"


class ComputeBackend(ABC):
    """Numeric primitives one precision/implementation regime provides.

    Subclasses set :attr:`name` (the registry key), :attr:`dtype` (the
    working element type of kernel rows and cross products) and the two
    cost-model scales the simulator applies to every charge:

    - :attr:`flop_time_scale` — multiplier on the FLOP term of the cost
      model (a float32 pipe runs ~2x the float64 peak, so 0.5);
    - :attr:`dram_byte_scale` — multiplier on DRAM/PCIe byte traffic
      (half-width elements move half the bytes, so 0.5).

    The reference backend keeps both at exactly 1.0 so the simulated
    timeline is bit-for-bit what the pre-registry engine produced.
    """

    name: str = "abstract"
    dtype: type = np.float64
    flop_time_scale: float = 1.0
    dram_byte_scale: float = 1.0

    # -- kernel-row evaluation ------------------------------------------
    @abstractmethod
    def matmul_transpose(self, a: object, b: object) -> np.ndarray:
        """Cross product ``a @ b.T`` for dense/CSR operands.

        This is the single product batched kernel-row evaluation is built
        on (the paper computes it with cuSPARSE/cuBLAS); the kernel
        transforms (exp/tanh/power) then run in the dtype this returns.
        """

    @abstractmethod
    def row_norms_sq(self, matrix: object) -> np.ndarray:
        """Squared Euclidean row norms, in the backend's working dtype."""

    # -- batched elimination --------------------------------------------
    @abstractmethod
    def gaussian_elimination_batch(
        self,
        matrices: np.ndarray,
        rhs: np.ndarray,
        *,
        pivot_tolerance: float = 1e-12,
        on_singular: str = "raise",
    ) -> Union[np.ndarray, tuple[np.ndarray, np.ndarray]]:
        """Solve a ``(m, n, n)`` stack of linear systems (coupling Eq. 15).

        Accumulation stays float64 on every in-tree backend — the coupling
        systems are tiny and ill-conditioned near-degenerate ``r``, so the
        mixed-precision contract narrows storage, never the solve.
        """

    # -- reduction primitives -------------------------------------------
    @abstractmethod
    def reduce_sum(self, values: np.ndarray) -> float:
        """Sum-reduce a vector (float64 accumulation on every backend)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r} dtype={np.dtype(self.dtype).name}>"


_REGISTRY: dict[str, ComputeBackend] = {}


def register_backend(backend: ComputeBackend) -> ComputeBackend:
    """Add a backend instance to the registry under ``backend.name``.

    Duplicate names raise :class:`~repro.exceptions.ValidationError` —
    silently replacing a registered backend would let two estimators
    resolve the same spec to different arithmetic.
    """
    if not isinstance(backend, ComputeBackend):
        raise ValidationError(
            f"register_backend expects a ComputeBackend instance, got "
            f"{type(backend).__name__}"
        )
    name = backend.name
    if not name or name == "abstract":
        raise ValidationError("backend must set a concrete, non-empty name")
    if name in _REGISTRY:
        raise ValidationError(
            f"backend {name!r} is already registered; backend names are "
            f"unique (registered: {list_backends()})"
        )
    _REGISTRY[name] = backend
    return backend


def get_backend(name: str) -> ComputeBackend:
    """Look up a registered backend; unknown names list the registry."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValidationError(
            f"unknown compute backend {name!r}; registered backends: "
            f"{list_backends()}"
        ) from None


def list_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


@strict_config
@dataclass(frozen=True)
class BackendSpec:
    """The one value every entry point threads to select a backend.

    ``GMPSVC``/``TrainerConfig``/``PredictorConfig``, the serving session,
    the distributed trainer and the CLIs all accept a spec (or a bare
    backend name, which is shorthand for ``BackendSpec(name=...)``).
    Unknown keyword arguments and non-registered names both fail at
    construction with an error naming the valid choices.
    """

    name: str = DEFAULT_BACKEND

    def __post_init__(self) -> None:
        if self.name not in _REGISTRY:
            raise ValidationError(
                f"unknown compute backend {self.name!r}; registered "
                f"backends: {list_backends()}"
            )

    def resolve(self) -> ComputeBackend:
        """The registered backend instance this spec names."""
        return get_backend(self.name)


def resolve_backend(
    value: Union[None, str, BackendSpec, ComputeBackend],
) -> ComputeBackend:
    """Coerce any accepted backend designator to a backend instance.

    ``None`` means the default (``numpy64``); a string is shorthand for
    ``BackendSpec(name=value)``; specs resolve through the registry;
    instances pass through (the seam for not-yet-registered backends in
    tests).
    """
    if value is None:
        return get_backend(DEFAULT_BACKEND)
    if isinstance(value, ComputeBackend):
        return value
    if isinstance(value, BackendSpec):
        return value.resolve()
    if isinstance(value, str):
        return get_backend(value)
    raise ValidationError(
        f"backend must be None, a name, a BackendSpec or a ComputeBackend "
        f"instance, got {type(value).__name__}"
    )
