"""The ``numpy32`` mixed-precision fast path.

Storage-bound work runs in float32, accumulation-bound work stays
float64 — the trade "Recipe for Fast Large-scale SVM Training" shows
dominates large-scale SVM throughput:

- **float32**: cross products (a single SGEMM per block — no fixed-shape
  tiling, since this backend is delta-gated rather than bitwise-gated)
  and squared row norms.  Kernel transforms downstream (exp/tanh/power)
  inherit float32 from the dots, so kernel rows are float32 end to end.
- **float64**: the decision-value weighted sums (float32 kernel blocks
  against float64 coefficients promote under NumPy's type rules), the
  coupling elimination (tiny ill-conditioned systems; narrowed storage,
  never the solve) and all reductions.

Sparse (CSR) operands take the float64 reference path and narrow the
result — the CSR kernels are per-row loops whose wall-clock cost is not
precision-bound, so a float32 re-implementation would add parity risk
for no measured gain.

Accuracy is enforced by the delta gates of the conformance suite and the
``BENCH_backends`` SLOs: probability L-infinity delta <= 1e-3 against
``numpy64`` and argmax agreement >= 99.9%.  The cost-model scales (0.5x
FLOP time, 0.5x DRAM/PCIe bytes) model the 2x float32 throughput and
half-width traffic of the simulated device.
"""

from __future__ import annotations

import numpy as np

from repro.backends import reference
from repro.backends.base import ComputeBackend
from repro.exceptions import ValidationError
from repro.sparse import ops as mops
from repro.sparse.csr import CSRMatrix

__all__ = ["Numpy32Backend"]


class Numpy32Backend(ComputeBackend):
    """Float32 storage / float64 accumulation NumPy backend."""

    name = "numpy32"
    dtype = np.float32
    flop_time_scale = 0.5
    dram_byte_scale = 0.5

    def matmul_transpose(self, a: object, b: object) -> np.ndarray:
        if isinstance(a, CSRMatrix) or isinstance(b, CSRMatrix):
            return reference.matmul_transpose(a, b).astype(np.float32)
        if a.shape[1] != b.shape[1]:
            raise ValidationError(f"column mismatch: {a.shape} vs {b.shape}")
        a32 = np.asarray(a, dtype=np.float32)
        b32 = np.asarray(b, dtype=np.float32)
        return a32 @ b32.T

    def row_norms_sq(self, matrix: object) -> np.ndarray:
        if isinstance(matrix, CSRMatrix):
            return mops.row_norms_sq(matrix).astype(np.float32)
        m32 = np.asarray(matrix, dtype=np.float32)
        return np.einsum("ij,ij->i", m32, m32)

    def gaussian_elimination_batch(
        self,
        matrices: np.ndarray,
        rhs: np.ndarray,
        *,
        pivot_tolerance: float = 1e-12,
        on_singular: str = "raise",
    ):
        # Float64 accumulation by contract (the reference routine widens
        # its inputs); float32 Q matrices narrow only the inputs.
        return reference.gaussian_elimination_batch(
            matrices,
            rhs,
            pivot_tolerance=pivot_tolerance,
            on_singular=on_singular,
        )

    def reduce_sum(self, values: np.ndarray) -> float:
        return float(np.asarray(values).sum(dtype=np.float64))
