"""The ``numpy64`` reference backend: float64, bitwise-stable.

Every primitive delegates to the exact implementation the library used
before the registry existed (now housed in
:mod:`repro.backends.reference` and :mod:`repro.sparse.ops`), so an
engine built on this backend produces results — and, with both cost
scales at 1.0, simulated timelines — bit-for-bit identical to the
pre-registry code.  This is the default backend everywhere.
"""

from __future__ import annotations

import numpy as np

from repro.backends import reference
from repro.backends.base import ComputeBackend
from repro.sparse import ops as mops

__all__ = ["Numpy64Backend"]


class Numpy64Backend(ComputeBackend):
    """Float64 NumPy backend; the bitwise-parity reference."""

    name = "numpy64"
    dtype = np.float64
    flop_time_scale = 1.0
    dram_byte_scale = 1.0

    def matmul_transpose(self, a: object, b: object) -> np.ndarray:
        return reference.matmul_transpose(a, b)

    def row_norms_sq(self, matrix: object) -> np.ndarray:
        return mops.row_norms_sq(matrix)

    def gaussian_elimination_batch(
        self,
        matrices: np.ndarray,
        rhs: np.ndarray,
        *,
        pivot_tolerance: float = 1e-12,
        on_singular: str = "raise",
    ):
        return reference.gaussian_elimination_batch(
            matrices,
            rhs,
            pivot_tolerance=pivot_tolerance,
            on_singular=on_singular,
        )

    def reduce_sum(self, values: np.ndarray) -> float:
        return float(values.sum())
