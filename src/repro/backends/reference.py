"""The float64 reference numerics (the pre-registry implementations).

These are the exact routines that used to live in
``repro.sparse.ops.matmul_transpose`` and
``repro.probability.linalg.gaussian_elimination[_batch]``, moved here —
not rewritten — when the backend registry was introduced.  Bitwise
stability of every existing parity suite (training, serving, distributed)
rests on this code not changing; the old import paths keep working as
deprecation shims that delegate back here.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.exceptions import SolverError, ValidationError
from repro.sparse.csr import CSRMatrix

__all__ = [
    "MATMUL_TILE_ROWS",
    "MATMUL_TILE_COLS",
    "matmul_transpose",
    "gaussian_elimination",
    "gaussian_elimination_batch",
]

# Fixed tiles for the dense-dense product.  BLAS derives its internal
# blocking — and with it the per-element accumulation order — from the
# operand shapes, so the same row can come out bitwise-different depending
# on how many rows it is batched with (a lone row even dispatches to a
# different GEMV path), and the same *column* can come out different
# depending on which other columns ride along.  Computing every product
# through constant-shape ``(MATMUL_TILE_ROWS, k) @ (k, MATMUL_TILE_COLS)``
# calls on contiguous zero-padded tiles makes each output element a pure
# function of ``(a_row, b_row)``, independent of batch composition on
# *either* axis.  The interleaved trainer relies on the row half (it fuses
# kernel-row demand of concurrent SVMs into union batches); the distributed
# inference router relies on the column half (a pair-partitioned shard
# computes test-vs-sub-pool blocks whose columns sit at different offsets
# than in the single-device pool, and must still reproduce the same bits).
# The CSR code paths are per-row loops / fixed-segment reductions and carry
# the invariant for free.
MATMUL_TILE_ROWS = 256
MATMUL_TILE_COLS = 256


def matmul_transpose(a: object, b: object) -> np.ndarray:
    """Dense ``a @ b.T`` for any combination of dense/CSR operands.

    This is the single product the whole kernel machinery is built on
    (the paper computes it with cuSPARSE/cuBLAS).  Output rows are
    bitwise-independent of how the ``a`` batch is composed (see
    :data:`MATMUL_TILE_ROWS`).
    """
    if a.shape[1] != b.shape[1]:
        raise ValidationError(f"column mismatch: {a.shape} vs {b.shape}")
    a_sparse = isinstance(a, CSRMatrix)
    b_sparse = isinstance(b, CSRMatrix)
    if a_sparse and b_sparse:
        return a.matmul_transpose(b)
    if a_sparse:
        return a.dot_dense(np.ascontiguousarray(np.asarray(b).T))
    if b_sparse:
        return b.dot_dense(np.ascontiguousarray(np.asarray(a).T)).T
    dense_a = np.asarray(a)
    dense_b = np.asarray(b)
    tile_r = MATMUL_TILE_ROWS
    tile_c = MATMUL_TILE_COLS
    m, k = dense_a.shape
    n = dense_b.shape[0]
    dtype = np.result_type(dense_a, dense_b)
    out = np.empty((m, n), dtype=dtype)
    # Materialise every column tile as a contiguous (k, tile_c) operand up
    # front: a strided transpose view and a padded copy can dispatch to
    # different GEMM paths, which would break element purity between full
    # and partial tiles.
    col_tiles = []
    for c_start in range(0, n, tile_c):
        cols = min(tile_c, n - c_start)
        block = np.zeros((k, tile_c), dtype=dtype)
        block[:, :cols] = dense_b[c_start : c_start + cols].T
        col_tiles.append((c_start, cols, block))
    for r_start in range(0, m, tile_r):
        chunk = dense_a[r_start : r_start + tile_r]
        rows = chunk.shape[0]
        if rows < tile_r or not chunk.flags.c_contiguous:
            padded = np.zeros((tile_r, k), dtype=dtype)
            padded[:rows] = chunk
            chunk = padded
        for c_start, cols, block in col_tiles:
            out[r_start : r_start + rows, c_start : c_start + cols] = (
                chunk @ block
            )[:rows, :cols]
    return out


def gaussian_elimination(
    matrix: np.ndarray,
    rhs: np.ndarray,
    *,
    pivot_tolerance: float = 1e-12,
) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` by Gaussian elimination with partial pivoting.

    Raises :class:`~repro.exceptions.SolverError` when a pivot falls below
    ``pivot_tolerance`` times the matrix scale (numerically singular) —
    callers regularise and retry, as the paper does ("a small value is
    added to Q when its inversion does not exist").

    Implemented as a batch of one (see :func:`gaussian_elimination_batch`),
    so scalar and batched solves of the same system agree exactly.
    """
    a = np.asarray(matrix, dtype=np.float64)
    b = np.asarray(rhs, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValidationError(f"matrix must be square, got shape {a.shape}")
    n = a.shape[0]
    if b.shape not in ((n,), (n, 1)):
        raise ValidationError(f"rhs shape {b.shape} incompatible with {a.shape}")
    x = gaussian_elimination_batch(
        a[None, :, :], b.reshape(1, n), pivot_tolerance=pivot_tolerance
    )
    return x[0]


def gaussian_elimination_batch(
    matrices: np.ndarray,
    rhs: np.ndarray,
    *,
    pivot_tolerance: float = 1e-12,
    on_singular: str = "raise",
) -> Union[np.ndarray, tuple[np.ndarray, np.ndarray]]:
    """Solve ``matrices[i] @ x[i] = rhs[i]`` for a whole ``(m, n, n)`` stack.

    One pass of partial-pivot elimination runs over the batch: each of the
    ``n`` column steps performs its pivot search, row swap and rank-1 update
    for *all* ``m`` systems at once, so the Python-level loop is O(n)
    instead of O(m * n).  ``rhs`` has shape ``(m, n)``, or ``(n,)`` to share
    one right-hand side across the batch.

    ``on_singular`` selects what happens when a system's pivot falls below
    ``pivot_tolerance`` times that system's scale:

    - ``"raise"`` (default) — raise :class:`~repro.exceptions.SolverError`
      naming the first offending batch index, matching the scalar contract;
    - ``"mask"`` — keep going, return ``(x, singular)`` where ``singular``
      is a boolean ``(m,)`` mask and flagged rows of ``x`` are NaN; callers
      ridge-regularise and retry just those systems.
    """
    if on_singular not in ("raise", "mask"):
        raise ValidationError(
            f"on_singular must be 'raise' or 'mask', got {on_singular!r}"
        )
    a = np.array(matrices, dtype=np.float64)
    if a.ndim != 3 or a.shape[1] != a.shape[2]:
        raise ValidationError(f"matrices must be (m, n, n), got shape {a.shape}")
    m, n = a.shape[0], a.shape[1]
    b = np.array(rhs, dtype=np.float64)
    if b.shape == (n,):
        b = np.broadcast_to(b, (m, n)).copy()
    if b.shape != (m, n):
        raise ValidationError(f"rhs shape {b.shape} incompatible with {a.shape}")
    if m == 0:
        x = np.empty((0, n))
        return (x, np.zeros(0, dtype=bool)) if on_singular == "mask" else x

    batch = np.arange(m)
    scale = np.maximum(np.abs(a).reshape(m, -1).max(axis=1), 1.0)
    singular = np.zeros(m, dtype=bool)

    # Forward elimination, one column step across the whole batch.
    for col in range(n):
        pivot_rows = col + np.argmax(np.abs(a[:, col:, col]), axis=1)
        pivots = a[batch, pivot_rows, col]
        bad = np.abs(pivots) < pivot_tolerance * scale
        if bad.any():
            if on_singular == "raise":
                first = int(np.flatnonzero(bad)[0])
                raise SolverError(
                    f"singular matrix: pivot {pivots[first]:.3e} at column "
                    f"{col}" + (f" (batch index {first})" if m > 1 else "")
                )
            singular |= bad
        swap = pivot_rows != col
        if swap.any():
            who = np.flatnonzero(swap)
            rows = pivot_rows[who]
            a[who, col], a[who, rows] = a[who, rows], a[who, col].copy()
            b[who, col], b[who, rows] = b[who, rows], b[who, col].copy()
        # Give flagged systems a harmless pivot so the rest of the batch can
        # proceed; their results are overwritten with NaN below.
        if singular.any():
            a[singular, col, col] = scale[singular]
        factors = a[:, col + 1 :, col] / a[:, col, None, col]
        a[:, col + 1 :, col:] -= factors[:, :, None] * a[:, None, col, col:]
        b[:, col + 1 :] -= factors * b[:, None, col]

    # Back substitution.
    x = np.zeros((m, n))
    for row in range(n - 1, -1, -1):
        residual = b[:, row] - (a[:, row, row + 1 :] * x[:, row + 1 :]).sum(axis=1)
        x[:, row] = residual / a[:, row, row]
    if on_singular == "mask":
        x[singular] = np.nan
        return x, singular
    return x
