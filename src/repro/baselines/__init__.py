"""The comparison systems of the paper's evaluation (Section 4).

Every baseline runs the *same* numerics as GMP-SVM (so Table 4's
classifier-equivalence holds by construction) but under its own system
configuration — solver variant, device, caching, sharing and concurrency
flags — reproducing each system's characteristic performance behaviour:

- :class:`LibSVMClassifier` — classic SMO, sequential pairs, scalar CPU
  code with the stock 100 MB LRU kernel cache; ``openmp=True`` enables the
  40-thread configuration.
- :class:`GPUBaselineClassifier` — Section 3.2: classic SMO on the GPU,
  one binary SVM at a time, 4 GB kernel cache, no sharing.
- :class:`CMPSVMClassifier` — the paper's CPU port of GMP-SVM (same
  algorithm, 40 threads).
- :class:`GTSVMClassifier` — Cotter et al.: multi-class capable, sparse,
  tiny fixed working set, *no probability support*.
- :class:`OHDSVMClassifier` — Vanek et al.: binary only, hierarchical
  decomposition without cross-round buffer reuse.
- :class:`GPUSVMClassifier` — Catanzaro et al.: binary only, **dense**
  data representation (the Figure 10 pathology on sparse data).
"""

from repro.baselines.cmp_svm import CMPSVMClassifier
from repro.baselines.gpu_baseline import GPUBaselineClassifier
from repro.baselines.gpusvm import GPUSVMClassifier
from repro.baselines.gtsvm import GTSVMClassifier
from repro.baselines.libsvm import LibSVMClassifier
from repro.baselines.ohdsvm import OHDSVMClassifier

__all__ = [
    "CMPSVMClassifier",
    "GPUBaselineClassifier",
    "GPUSVMClassifier",
    "GTSVMClassifier",
    "LibSVMClassifier",
    "OHDSVMClassifier",
]
