"""CMP-SVM: the paper's multi-threaded CPU port of GMP-SVM.

"To investigate the significance of GPUs, we also compare GMP-SVM with our
multi-threaded CPU version of GMP-SVM."  Same algorithm end to end —
batched working-set solver, kernel-value sharing, support-vector sharing,
parallel line search — running on the 40-thread Xeon cost model.  The
remaining gap to GMP-SVM is therefore pure hardware (throughput and
bandwidth), which is exactly the comparison the paper draws.
"""

from __future__ import annotations

from typing import Optional

from repro.core.gmp import GMPSVC
from repro.gpusim.device import xeon_e5_2640v4

__all__ = ["CMPSVMClassifier"]


class CMPSVMClassifier(GMPSVC):
    """GMP-SVM's algorithm on the dual-Xeon cost model."""

    def __init__(
        self,
        C: float = 1.0,
        kernel: str = "gaussian",
        gamma: Optional[float] = None,
        degree: int = 3,
        coef0: float = 0.0,
        *,
        epsilon: float = 1e-3,
        probability: bool = True,
        threads: int = 40,
        working_set_size: int = 48,
        new_per_round: Optional[int] = None,
    ) -> None:
        super().__init__(
            C,
            kernel,
            gamma,
            degree,
            coef0,
            epsilon=epsilon,
            probability=probability,
            working_set_size=working_set_size,
            new_per_round=new_per_round,
            # One binary SVM per pool of cores; the CPU "SM" count is its
            # physical core count, so a couple of SVMs train concurrently.
            blocks_per_svm=8,
            device=xeon_e5_2640v4(threads),
        )
        self.threads = threads
