"""The paper's GPU baseline (Section 3.2).

"A naive approach is to train the binary SVMs on the GPU one by one, and
to estimate probability for multiple instances using one binary SVM at a
time."  Concretely:

- classic SMO on the GPU: per-iteration reductions and two single-row
  kernel computations, each its own kernel launch (the small-op pattern
  whose overhead GMP-SVM amortises);
- a 4 GB device-memory kernel-row cache (Section 4.1), scaled with the
  device;
- sequential binary SVMs — no concurrency, no kernel-value sharing;
- prediction one binary SVM at a time — no support-vector sharing;
- sequential backtracking in the sigmoid fit (Section 3.3.2 contrasts
  GMP-SVM's parallel candidate evaluation against exactly this).
"""

from __future__ import annotations

from typing import Optional

from repro.core.gmp import GMPSVC
from repro.core.predictor import PredictorConfig
from repro.core.trainer import TrainerConfig
from repro.gpusim.device import DEFAULT_MEMORY_SCALE, DeviceSpec, scaled_tesla_p100

__all__ = ["GPUBaselineClassifier"]

PAPER_CACHE_BYTES = 4 * 1024**3  # "4GB of GPU memory for kernel value caching"


class GPUBaselineClassifier(GMPSVC):
    """Naive GPU MP-SVM: one binary SVM at a time, classic SMO."""

    def __init__(
        self,
        C: float = 1.0,
        kernel: str = "gaussian",
        gamma: Optional[float] = None,
        degree: int = 3,
        coef0: float = 0.0,
        *,
        epsilon: float = 1e-3,
        probability: bool = True,
        device: Optional[DeviceSpec] = None,
        memory_scale: int = DEFAULT_MEMORY_SCALE,
        cache_bytes: Optional[int] = None,
    ) -> None:
        super().__init__(
            C,
            kernel,
            gamma,
            degree,
            coef0,
            epsilon=epsilon,
            probability=probability,
            device=device if device is not None else scaled_tesla_p100(memory_scale),
        )
        # The benchmarks pass a per-dataset cache sized to match the
        # paper's 4 GB *coverage* (DatasetSpec.scaled_cache_bytes); the
        # default divides by the device scale, which is right when the
        # workload is scaled about as much as the device.
        self.cache_bytes = (
            cache_bytes if cache_bytes is not None
            else PAPER_CACHE_BYTES // memory_scale
        )

    def _trainer_config(self) -> TrainerConfig:
        return TrainerConfig(
            device=self.device,
            solver="classic",
            concurrent=False,
            share_kernel_values=False,
            parallel_line_search=False,
            probability=self.probability,
            epsilon=self.epsilon,
            classic_cache_bytes=self.cache_bytes,
            classic_cache_policy="lru",
            class_weight=self.class_weight,
        )

    def _predictor_config(self) -> PredictorConfig:
        return PredictorConfig(
            device=self.device,
            sv_sharing=False,  # "one binary SVM at a time"
            coupling_method="eq15",
        )
