"""GPUSVM comparator (Catanzaro, Sundaram & Keutzer, ICML 2008).

The first GPU SVM trainer: classic SMO on the GPU with the training data
held in **dense** format.  "GPUSVM uses the dense data representation,
which leads to higher computation cost for large datasets and also
requires more memory to store the training data.  This is the key reason
why GPUSVM is much slower than GMP-SVM on the RCV1 dataset"
(Section 4.3.2).  The comparator therefore:

- accepts binary problems only, without probabilistic output;
- densifies CSR inputs before training (``force_dense``), so every kernel
  row streams the full dense matrix — the Figure 10 pathology;
- runs classic two-element SMO with a modest device row cache.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.gmp import GMPSVC
from repro.core.predictor import PredictorConfig
from repro.core.trainer import TrainerConfig
from repro.exceptions import ValidationError
from repro.gpusim.device import DEFAULT_MEMORY_SCALE, DeviceSpec, scaled_tesla_p100
from repro.sparse import ops as mops

__all__ = ["GPUSVMClassifier"]

CACHE_BYTES = 4 * 1024**3  # caches kernel rows in all spare device memory


class GPUSVMClassifier(GMPSVC):
    """Binary (non-probabilistic) dense-representation GPU SVM."""

    def __init__(
        self,
        C: float = 1.0,
        kernel: str = "gaussian",
        gamma: Optional[float] = None,
        degree: int = 3,
        coef0: float = 0.0,
        *,
        epsilon: float = 1e-3,
        device: Optional[DeviceSpec] = None,
        memory_scale: int = DEFAULT_MEMORY_SCALE,
    ) -> None:
        super().__init__(
            C,
            kernel,
            gamma,
            degree,
            coef0,
            epsilon=epsilon,
            probability=False,
            device=device if device is not None else scaled_tesla_p100(memory_scale),
        )
        self.cache_bytes = CACHE_BYTES // memory_scale

    def fit(self, X: object, y: object) -> "GPUSVMClassifier":
        if np.unique(np.asarray(y).ravel()).size != 2:
            raise ValidationError("GPUSVM supports binary problems only")
        super().fit(X, y)
        return self

    def _trainer_config(self) -> TrainerConfig:
        return TrainerConfig(
            device=self.device,
            solver="classic",
            concurrent=False,
            share_kernel_values=False,
            parallel_line_search=False,
            probability=False,
            epsilon=self.epsilon,
            classic_cache_bytes=self.cache_bytes,
            classic_cache_policy="lru",
            force_dense=True,
        )

    def _predictor_config(self) -> PredictorConfig:
        return PredictorConfig(device=self.device, sv_sharing=False)

    def predict(self, X: object) -> np.ndarray:
        # Prediction also runs on the densified representation.
        return super().predict(mops.to_dense(mops.as_supported_matrix(X)))

    def predict_proba(self, X: object) -> np.ndarray:
        raise ValidationError("GPUSVM does not support probabilistic output")
