"""GTSVM comparator (Cotter, Srebro & Keshet, KDD 2011).

GTSVM trains binary and multi-class SVMs on the GPU with sparse (CSR)
data and a small fixed working set optimised in lock-step, but "does not
support MP-SVMs and cannot be extended to train MP-SVMs" (Section 4.3.1 /
Section 5).  The comparator therefore:

- uses the batched solver with GTSVM's small working set (16) and a fixed
  inner-iteration rule — many more outer rounds, far smaller batches, so
  kernel-row computation amortises poorly;
- trains pairs sequentially with no kernel-value sharing;
- refuses probability estimation (``predict_proba`` raises), matching the
  real system's capability;
- predicts by pairwise voting.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.gmp import GMPSVC
from repro.core.predictor import PredictorConfig
from repro.core.trainer import TrainerConfig
from repro.exceptions import ValidationError
from repro.gpusim.device import DeviceSpec, scaled_tesla_p100

__all__ = ["GTSVMClassifier"]

GTSVM_WORKING_SET = 16
# GTSVM's clustering approximation and lock-step multi-pair updates do
# redundant per-row work; its effective throughput sits well below
# ThunderSVM-class kernels (Section 4.3.1 reports ~5x end to end).
GTSVM_FLOP_EFFICIENCY = 0.12
GTSVM_BANDWIDTH_EFFICIENCY = 0.30


class GTSVMClassifier(GMPSVC):
    """Multi-class (non-probabilistic) SVM in GTSVM's style."""

    def __init__(
        self,
        C: float = 1.0,
        kernel: str = "gaussian",
        gamma: Optional[float] = None,
        degree: int = 3,
        coef0: float = 0.0,
        *,
        epsilon: float = 1e-3,
        device: Optional[DeviceSpec] = None,
    ) -> None:
        super().__init__(
            C,
            kernel,
            gamma,
            degree,
            coef0,
            epsilon=epsilon,
            probability=False,
            working_set_size=GTSVM_WORKING_SET,
            device=device if device is not None else scaled_tesla_p100(),
        )

    def _trainer_config(self) -> TrainerConfig:
        return TrainerConfig(
            device=self.device,
            solver="batched",
            flop_efficiency=GTSVM_FLOP_EFFICIENCY,
            bandwidth_efficiency=GTSVM_BANDWIDTH_EFFICIENCY,
            concurrent=False,
            share_kernel_values=False,
            parallel_line_search=False,
            probability=False,
            epsilon=self.epsilon,
            working_set_size=GTSVM_WORKING_SET,
            new_per_round=GTSVM_WORKING_SET // 2,
            inner_rule="fixed",
        )

    def _predictor_config(self) -> PredictorConfig:
        return PredictorConfig(
            device=self.device,
            flop_efficiency=GTSVM_FLOP_EFFICIENCY,
            bandwidth_efficiency=GTSVM_BANDWIDTH_EFFICIENCY,
            sv_sharing=False,
        )

    def predict_proba(self, X: object) -> np.ndarray:
        raise ValidationError(
            "GTSVM does not support multi-class probability estimation "
            "(see Section 5 of the paper); use GMPSVC for MP-SVMs"
        )
