"""LibSVM-equivalent baseline (with and without OpenMP).

Models the reference implementation the paper compares against:

- classic two-element SMO with second-order working-set selection and
  the shrinking heuristic (LibSVM's default; ``shrinking=False`` turns it
  off, LibSVM's ``-h 0``);
- one binary SVM at a time (no MP-SVM-level concurrency);
- the stock LRU kernel-row cache (default 100 MB, host memory — not
  scaled, since host RAM is not the scarce resource);
- scalar C++ code, modelled as a low fraction of CPU peak FLOPS;
- Platt fitting with the sequential backtracking line search;
- prediction through the deduplicated SV set LibSVM's model format keeps,
  using LibSVM's *iterative* coupling method rather than Eq. 15.

``openmp=True`` switches the device to 40 threads (the paper's best CPU
configuration).
"""

from __future__ import annotations

from typing import Optional

from repro.core.gmp import GMPSVC
from repro.core.predictor import PredictorConfig
from repro.core.trainer import TrainerConfig
from repro.gpusim.device import xeon_e5_2640v4

__all__ = ["LibSVMClassifier"]

DEFAULT_CACHE_BYTES = 100 * 1024 * 1024
# Scalar (non-SIMD) inner loops reach a small fraction of AVX peak.
SCALAR_FLOP_EFFICIENCY = 0.30


class LibSVMClassifier(GMPSVC):
    """Multi-class probabilistic SVM the way LibSVM runs it."""

    def __init__(
        self,
        C: float = 1.0,
        kernel: str = "gaussian",
        gamma: Optional[float] = None,
        degree: int = 3,
        coef0: float = 0.0,
        *,
        epsilon: float = 1e-3,
        probability: bool = True,
        openmp: bool = False,
        threads: int = 40,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        shrinking: bool = True,
        class_weight: Optional[dict] = None,
    ) -> None:
        super().__init__(
            C,
            kernel,
            gamma,
            degree,
            coef0,
            epsilon=epsilon,
            probability=probability,
            class_weight=class_weight,
            coupling_method="iterative",
            device=xeon_e5_2640v4(threads if openmp else 1),
        )
        self.openmp = openmp
        self.threads = threads
        self.cache_bytes = cache_bytes
        self.shrinking = shrinking

    def _trainer_config(self) -> TrainerConfig:
        return TrainerConfig(
            device=self.device,
            solver="classic",
            flop_efficiency=SCALAR_FLOP_EFFICIENCY,
            concurrent=False,
            share_kernel_values=False,
            parallel_line_search=False,
            probability=self.probability,
            epsilon=self.epsilon,
            classic_cache_bytes=self.cache_bytes,
            classic_cache_policy="lru",
            classic_shrinking=self.shrinking,
            class_weight=self.class_weight,
        )

    def _predictor_config(self) -> PredictorConfig:
        return PredictorConfig(
            device=self.device,
            flop_efficiency=SCALAR_FLOP_EFFICIENCY,
            sv_sharing=True,  # LibSVM's model stores each SV once
            coupling_method="iterative",
        )
