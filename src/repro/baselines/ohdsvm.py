"""OHD-SVM comparator (Vanek, Michalek & Psutka, TPDS 2017).

OHD-SVM is a GPU-architecture-optimised *binary* SVM trainer using
hierarchical decomposition: it optimises a working set, replaces it
wholesale, and carries no kernel values across rounds.  "The work only
focuses on binary SVMs and no multi-class SVMs or probabilistic SVMs are
presented" (Section 5), so this comparator:

- accepts binary problems only;
- uses the batched solver with full working-set replacement
  (``new_per_round == working_set_size``) — every round recomputes all of
  its kernel rows, forfeiting GMP-SVM's buffer reuse and retained-half
  convergence aid;
- offers no probability output.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.gmp import GMPSVC
from repro.core.predictor import PredictorConfig
from repro.core.trainer import TrainerConfig
from repro.exceptions import ValidationError
from repro.gpusim.device import DeviceSpec, scaled_tesla_p100

__all__ = ["OHDSVMClassifier"]

OHD_WORKING_SET = 48
# OHD-SVM's hierarchical decomposition is well-tuned but predates the
# batching/reuse tricks, and its nested working-set levels re-stream the
# training data once per level; modelled below ThunderSVM-class kernels.
OHD_FLOP_EFFICIENCY = 0.20
OHD_BANDWIDTH_EFFICIENCY = 0.40


class OHDSVMClassifier(GMPSVC):
    """Binary (non-probabilistic) SVM in OHD-SVM's style."""

    def __init__(
        self,
        C: float = 1.0,
        kernel: str = "gaussian",
        gamma: Optional[float] = None,
        degree: int = 3,
        coef0: float = 0.0,
        *,
        epsilon: float = 1e-3,
        working_set_size: int = OHD_WORKING_SET,
        device: Optional[DeviceSpec] = None,
    ) -> None:
        super().__init__(
            C,
            kernel,
            gamma,
            degree,
            coef0,
            epsilon=epsilon,
            probability=False,
            working_set_size=working_set_size,
            device=device if device is not None else scaled_tesla_p100(),
        )

    def fit(self, X: object, y: object) -> "OHDSVMClassifier":
        if np.unique(np.asarray(y).ravel()).size != 2:
            raise ValidationError("OHD-SVM supports binary problems only")
        super().fit(X, y)
        return self

    def _trainer_config(self) -> TrainerConfig:
        return TrainerConfig(
            device=self.device,
            solver="batched",
            flop_efficiency=OHD_FLOP_EFFICIENCY,
            bandwidth_efficiency=OHD_BANDWIDTH_EFFICIENCY,
            concurrent=False,
            share_kernel_values=False,
            parallel_line_search=False,
            probability=False,
            epsilon=self.epsilon,
            working_set_size=self.working_set_size,
            new_per_round=self.working_set_size,  # wholesale replacement
            inner_rule="fixed",
        )

    def _predictor_config(self) -> PredictorConfig:
        return PredictorConfig(device=self.device, sv_sharing=False)

    def predict_proba(self, X: object) -> np.ndarray:
        raise ValidationError("OHD-SVM does not support probabilistic output")
