"""Instance-sharded cascade SMO over hierarchical clusters.

Where :mod:`repro.distributed` shards the *pairwise problems* of a
multiclass workload across devices (bitwise-preserving), this package
shards the *instances of one binary problem*: seeded stratified
partitioning (:mod:`~repro.cascade.partition`), per-shard sub-solves
under the existing wave scheduler, a topology-aware pairwise SV merge
tree (:mod:`~repro.cascade.tree`) over the :class:`~repro.distributed.
cluster.DevicePool` peer links, and a global-KKT feedback loop gated by
an explicit dual-gap error budget (:mod:`~repro.cascade.driver`).

Entry points: :func:`train_cascade` for one binary problem, or a
:class:`CascadeConfig` handed to the multiclass trainers (``cascade=``
on :class:`~repro.core.trainer.TrainerConfig` /
:func:`~repro.distributed.trainer.train_multiclass_sharded`) to route
only the pairs above ``threshold`` instances through the cascade.
"""

from repro.cascade.config import CascadeConfig
from repro.cascade.driver import CascadeReport, train_cascade
from repro.cascade.partition import effective_shards, shard_instances
from repro.cascade.tree import (
    MergeStep,
    ReductionTree,
    assign_shards,
    build_reduction_tree,
)

__all__ = [
    "CascadeConfig",
    "CascadeReport",
    "MergeStep",
    "ReductionTree",
    "assign_shards",
    "build_reduction_tree",
    "effective_shards",
    "shard_instances",
    "train_cascade",
]
