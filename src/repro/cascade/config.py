"""Configuration of the instance-sharded cascade trainer.

One :class:`CascadeConfig` describes how a single binary SVM is split
across devices: how many instance shards to cut, which pairwise problems
are large enough to bother (the routing threshold used by the multiclass
trainers), how hard the feedback loop may work, and the explicit dual-gap
error budget the converged model must meet (the cascade merge is
approximate, so bitwise parity is replaced by gates — see DESIGN.md §17).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.validation import strict_config
from repro.exceptions import ValidationError

__all__ = ["CascadeConfig"]


@strict_config
@dataclass(frozen=True)
class CascadeConfig:
    """Knobs of the cascade (instance-sharded) binary SVM trainer."""

    # How many instance shards the binary problem is cut into.  Clamped
    # down at train time when a class has fewer instances than shards
    # (every shard must see both classes).
    n_shards: int = 4
    # Routing policy for the multiclass trainers: pairs with at least
    # this many instances go through the cascade, smaller pairs keep the
    # bitwise pair-sharded path.
    threshold: int = 2048
    # Seed of the deterministic instance partitioner.
    seed: int = 0
    # Feedback loop: after the reduction tree converges on the root's
    # active set, globally KKT-violating instances are pulled into the
    # root problem and re-solved — at most this many times, adding at
    # most ``feedback_chunk`` instances per round.
    max_feedback_rounds: int = 8
    feedback_chunk: int = 256
    # Dual-gap ceiling the final full-KKT verification pass must meet.
    # ``None`` defaults to ``10 x`` the solver's epsilon at train time;
    # values below epsilon are unreachable and rejected there.
    dual_gap_budget: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValidationError(
                f"n_shards must be >= 1, got {self.n_shards}"
            )
        if self.threshold < 2:
            raise ValidationError(
                f"threshold must be >= 2, got {self.threshold}"
            )
        if self.max_feedback_rounds < 0:
            raise ValidationError(
                "max_feedback_rounds must be >= 0, "
                f"got {self.max_feedback_rounds}"
            )
        if self.feedback_chunk < 1:
            raise ValidationError(
                f"feedback_chunk must be >= 1, got {self.feedback_chunk}"
            )
        if self.dual_gap_budget is not None and self.dual_gap_budget <= 0:
            raise ValidationError(
                f"dual_gap_budget must be positive, got {self.dual_gap_budget}"
            )

    def resolve_budget(self, epsilon: float) -> float:
        """The effective dual-gap ceiling under a solver ``epsilon``.

        The root/feedback sub-solves only converge to ``epsilon`` on
        their active set, so a tighter global budget is unreachable.
        """
        if self.dual_gap_budget is None:
            return 10.0 * epsilon
        if self.dual_gap_budget < epsilon:
            raise ValidationError(
                f"dual_gap_budget {self.dual_gap_budget} is tighter than "
                f"the solver epsilon {epsilon}; the cascade cannot "
                "converge past the sub-solver tolerance"
            )
        return float(self.dual_gap_budget)
