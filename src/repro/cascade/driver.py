"""The cascade driver: instance-sharded training of one binary SVM.

The pipeline (Govada et al.'s cascade, PAPERS.md "A Novel Approach to
Distributed Multi-Class SVM"):

1. **Partition** — the instances are cut into seeded, stratified shards
   (:mod:`repro.cascade.partition`), assigned node-major to the cluster's
   devices, and their rows shipped over the host link.
2. **Shard sub-solves** — every shard trains its own sub-SVM through the
   existing resumable :class:`~repro.solvers.batch_smo.BatchSMOSession`
   under the interleaved wave scheduler, one wave group per device (the
   same machinery single-device and pair-sharded training use).  Fault
   injection plugs in here exactly as in ``train_multiclass_sharded``:
   stragglers stretch the device clock, a scripted device loss aborts at
   a wave boundary and the lost shards re-solve on the survivors from
   the last shipped checkpoint.
3. **Reduction-tree merge** — surviving support vectors fold pairwise up
   a topology-aware tree (:mod:`repro.cascade.tree`): the src slot's SV
   rows and weights cross a ``DevicePool`` peer link (intra-node tier
   first; bytes land in the link ledger), the union warm-starts a merged
   sub-solve on the destination device, and only its support vectors
   survive to the next level.
4. **Feedback loop** — the root's active set is only locally optimal, so
   the driver reconstructs the full-problem optimality indicators
   ``f_i`` (each device scores its own resident instances against the
   broadcast root SVs), pulls the worst globally KKT-violating instances
   into the root problem, and re-solves warm-started — until the global
   dual gap meets the error budget or the round cap is hit.  The loop
   head doubles as the **final full-KKT verification pass**: the
   reported gap is always computed from the final weights over *all*
   instances.

The merge is approximate (a support vector discarded at level 0 can in
principle re-enter only through the feedback loop), so unlike the
pair-sharded trainer there is **no bitwise-parity claim** — correctness
is gated by the explicit dual-gap budget plus the decision-delta /
argmax-agreement gates enforced in the test-suite and CI benchmarks.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Optional

import numpy as np

from repro.cascade.config import CascadeConfig
from repro.cascade.partition import effective_shards, shard_instances
from repro.cascade.tree import build_reduction_tree, assign_shards
from repro.core.interleave import PairMember, run_interleaved
from repro.exceptions import (
    ConvergenceWarning,
    DeviceLostError,
    SolverError,
    ValidationError,
)
from repro.faults.checkpoint import (
    CheckpointStore,
    SessionSnapshot,
    TrainingCheckpoint,
)
from repro.faults.plan import FaultInjector, FaultPlan
from repro.gpusim.clock import SimClock
from repro.gpusim.engine import FLOAT_BYTES, make_engine
from repro.kernels.functions import KernelFunction
from repro.kernels.rows import KernelRowComputer
from repro.solvers.base import (
    SolverResult,
    bias_from_f,
    dual_objective,
    lower_mask,
    optimality_gap,
    resolve_penalty_vector,
    upper_mask,
    validate_binary_problem,
)
from repro.solvers.warm_start import reconstruct_gradient
from repro.sparse import ops as mops
from repro.telemetry.schema import REPORT_SCHEMA_VERSION
from repro.telemetry.tracer import _json_safe, maybe_span

__all__ = ["CascadeReport", "train_cascade"]

# Constants shipped alongside a slot's SV payload in a merge: the SV
# count, the child's bias, its local gap and iteration count.
_SLOT_HEADER_BYTES = 4 * FLOAT_BYTES


@dataclass(eq=False)
class _ShardMember(PairMember):
    """A cascade shard in the wave driver (named ``shard_<i>``)."""

    @property
    def name(self) -> str:
        return f"shard_{self.index}"


@dataclass
class _ShardProblem:
    """What the wave driver needs to know about one shard."""

    s: int  # shard id
    t: int  # -2 marks cascade shards in any shared tooling
    n: int
    labels: np.ndarray
    global_indices: np.ndarray  # into the *binary problem's* row order


@dataclass
class _Slot:
    """One surviving sub-solution flowing up the reduction tree."""

    indices: np.ndarray  # binary-problem-local instance ids (SVs only)
    alpha: np.ndarray  # matching dual weights (> 0)
    device: int

    @property
    def n_sv(self) -> int:
        return int(self.indices.size)


@dataclass
class CascadeReport:
    """What one cascade solve did and what it cost.

    ``levels`` carries the per-level timeline: the shard phase, then one
    entry per reduction-tree level (SV survival, link tier, bytes), then
    one entry per feedback round.  ``transfer_bytes`` is the per-tier
    interconnect volume the cascade itself moved.
    """

    n_instances: int
    n_shards: int
    requested_shards: int
    n_devices: int
    n_nodes: int
    levels: list[dict] = field(default_factory=list)
    feedback_rounds: int = 0
    kkt_passes: int = 0
    instances_fed_back: int = 0
    final_gap: float = float("inf")
    gap_budget: float = 0.0
    budget_met: bool = False
    n_support: int = 0
    total_iterations: int = 0
    transfer_bytes: dict = field(default_factory=dict)
    tree: dict = field(default_factory=dict)
    simulated_seconds: float = 0.0
    faults: dict = field(default_factory=dict)

    @property
    def sv_survival(self) -> float:
        """Final support count over the instance count."""
        if self.n_instances <= 0:
            return 0.0
        return self.n_support / self.n_instances

    def to_dict(self) -> dict[str, Any]:
        """Flat, JSON-native, schema-versioned snapshot of this report."""
        payload = asdict(self)
        payload["schema_version"] = REPORT_SCHEMA_VERSION
        payload["kind"] = "cascade_report"
        payload["sv_survival"] = self.sv_survival
        return _json_safe(payload)

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """The :meth:`to_dict` snapshot serialized to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)


def _row_bytes(data: mops.MatrixLike) -> float:
    """Average resident bytes of one training row."""
    return mops.matrix_nbytes(data) / max(mops.n_rows(data), 1)


def _slot_payload_bytes(slot: _Slot, per_row: float) -> int:
    """Interconnect bytes one slot costs to ship (SV rows + weights)."""
    return int(
        round(slot.n_sv * per_row)
        + slot.n_sv * FLOAT_BYTES
        + _SLOT_HEADER_BYTES
    )


def _member_snapshot(member: PairMember) -> SessionSnapshot:
    """One shard member's resumable solver state (keyed by shard id)."""
    state = member.session.snapshot_state()
    return SessionSnapshot(
        problem_index=member.index,
        alpha=state["alpha"],
        f=state["f"],
        rounds=state["rounds"],
        inner_total=state["inner_total"],
        ws_order=tuple(state["ws_order"]),
        stalled=state["stalled"],
        converged=state["converged"],
        finished=state["finished"],
    )


def _make_shard_member(
    config,
    shard: int,
    indices: np.ndarray,
    data: mops.MatrixLike,
    labels: np.ndarray,
    kernel: KernelFunction,
    penalty: float,
    box: Optional[np.ndarray],
    counters,
) -> _ShardMember:
    """A resumable wave-driver member for one instance shard."""
    from repro.core.trainer import _batched_solver, _batched_task_bytes

    engine = make_engine(
        config.device,
        flop_efficiency=config.flop_efficiency,
        bandwidth_efficiency=config.bandwidth_efficiency,
        backend=config.backend,
        counters=counters,
    )
    rows = KernelRowComputer(
        engine, kernel, mops.take_rows(data, indices), category="cascade_shard"
    )
    solver = _batched_solver(config, penalty, tracer=None, record_rounds=False)
    session = solver.start(
        rows,
        labels[indices],
        penalty_vector=None if box is None else box[indices],
    )
    problem = _ShardProblem(
        s=shard,
        t=-2,
        n=int(indices.size),
        labels=labels[indices],
        global_indices=indices,
    )
    return _ShardMember(
        index=shard,
        problem=problem,
        engine=engine,
        session=session,
        mem_bytes=_batched_task_bytes(config, int(indices.size)),
        blocks=config.blocks_per_svm,
    )


def _merge_solve(
    config,
    pool,
    slots: dict[int, _Slot],
    step,
    data: mops.MatrixLike,
    labels: np.ndarray,
    kernel: KernelFunction,
    penalty: float,
    box: Optional[np.ndarray],
    per_row: float,
    member_clocks: list[SimClock],
    tracer,
) -> dict:
    """Fold slot ``step.src`` into ``step.dst`` and re-solve the union.

    The src payload crosses the peer link (the pool picks the tier from
    the topology and records the bytes), the concatenated dual weights
    warm-start the merged sub-solve (the children partition the
    instances, so ``sum alpha_i y_i = 0`` is preserved exactly), and the
    destination slot keeps only the surviving support vectors.
    """
    from repro.core.trainer import _batched_solver

    src, dst = slots[step.src], slots[step.dst]
    payload = _slot_payload_bytes(src, per_row)
    pool.device_to_device(
        src.device, dst.device, payload, category="cascade_merge"
    )
    merged_idx = np.concatenate([dst.indices, src.indices])
    merged_alpha = np.concatenate([dst.alpha, src.alpha])
    merged_labels = labels[merged_idx]
    sv_in = int(merged_idx.size)

    engine = make_engine(
        config.device,
        flop_efficiency=config.flop_efficiency,
        bandwidth_efficiency=config.bandwidth_efficiency,
        backend=config.backend,
        counters=pool.engine(dst.device).counters,
    )
    with maybe_span(
        tracer,
        "cascade_merge",
        clock=engine.clock,
        src_slot=step.src,
        dst_slot=step.dst,
        tier=step.tier,
        sv_in=sv_in,
        nbytes=payload,
    ) as span:
        rows = KernelRowComputer(
            engine,
            kernel,
            mops.take_rows(data, merged_idx),
            category="cascade_merge",
        )
        initial_f = reconstruct_gradient(
            rows, merged_labels, merged_alpha, category="cascade_merge"
        )
        solver = _batched_solver(
            config, penalty, tracer=None, record_rounds=False
        )
        result = solver.solve(
            rows,
            merged_labels,
            penalty_vector=None if box is None else box[merged_idx],
            initial_alpha=merged_alpha,
            initial_f=initial_f,
        )
        support = result.support_indices
        slots[step.dst] = _Slot(
            indices=merged_idx[support],
            alpha=result.alpha[support],
            device=dst.device,
        )
        del slots[step.src]
        span.set(
            sv_out=int(support.size),
            iterations=result.iterations,
            converged=result.converged,
        )
    member_clocks[dst.device].merge(engine.clock)
    return {
        "src": int(step.src),
        "dst": int(step.dst),
        "tier": step.tier,
        "nbytes": int(payload),
        "sv_in": sv_in,
        "sv_out": int(support.size),
        "iterations": int(result.iterations),
        "simulated_seconds": float(engine.clock.elapsed_s),
    }


def _global_kkt_pass(
    config,
    pool,
    root: _Slot,
    home_device: np.ndarray,
    data: mops.MatrixLike,
    labels: np.ndarray,
    box: np.ndarray,
    kernel: KernelFunction,
    per_row: float,
    member_clocks: list[SimClock],
    tracer,
) -> tuple[np.ndarray, float, dict]:
    """Reconstruct the full-problem ``f`` and the global dual gap.

    Distributed: the root broadcasts its SV rows to every device that
    still owns instances (peer links, tier-charged), each device scores
    its own resident rows as one batched kernel product on its own
    clock, and the per-instance indicators flow back to the root.
    Numerically this is exact — ``f_i = sum_j alpha_j y_j K_ij - y_i``
    with zeros outside the active set.
    """
    n = labels.size
    f_full = np.empty(n)
    coefficients = root.alpha * labels[root.indices]
    sv_rows = mops.take_rows(data, root.indices)
    sv_payload = int(round(root.n_sv * per_row)) + _SLOT_HEADER_BYTES
    devices = sorted(set(int(d) for d in home_device))
    seconds = 0.0
    for device in devices:
        owned = np.flatnonzero(home_device == device)
        if device != root.device:
            pool.device_to_device(
                root.device, device, sv_payload, category="cascade_kkt"
            )
        engine = make_engine(
            config.device,
            flop_efficiency=config.flop_efficiency,
            bandwidth_efficiency=config.bandwidth_efficiency,
            backend=config.backend,
            counters=pool.engine(device).counters,
        )
        computer = KernelRowComputer(
            engine,
            kernel,
            mops.take_rows(data, owned),
            category="cascade_kkt",
        )
        block = computer.block(sv_rows, category="cascade_kkt")
        f_full[owned] = coefficients @ block - labels[owned]
        engine.charge(
            "cascade_kkt",
            flops=2 * root.n_sv * owned.size,
            bytes_read=root.n_sv * owned.size * FLOAT_BYTES,
            bytes_written=owned.size * FLOAT_BYTES,
            launches=1,
        )
        if device != root.device:
            pool.device_to_device(
                device, root.device, owned.size * FLOAT_BYTES,
                category="cascade_kkt",
            )
        member_clocks[device].merge(engine.clock)
        seconds = max(seconds, engine.clock.elapsed_s)
    alpha_full = np.zeros(n)
    alpha_full[root.indices] = root.alpha
    gap = optimality_gap(f_full, labels, alpha_full, box)
    stats = {
        "kind": "kkt",
        "n_sv": root.n_sv,
        "gap": float(gap),
        "devices": len(devices),
        "simulated_seconds": float(seconds),
    }
    if tracer is not None:
        with maybe_span(
            tracer,
            "cascade_kkt",
            clock=pool.engine(root.device).clock,
            n_sv=root.n_sv,
            gap=float(gap),
            devices=len(devices),
        ):
            pass
    return f_full, gap, stats


def _select_violators(
    f: np.ndarray,
    labels: np.ndarray,
    alpha_full: np.ndarray,
    box: np.ndarray,
    active: np.ndarray,
    chunk: int,
    epsilon: float,
) -> np.ndarray:
    """The worst globally KKT-violating instances outside the active set.

    Violation magnitude mirrors the gap definition: for ``i`` in
    ``I_up``, how far ``f_i`` sits below ``max_{I_low} f``; for ``i`` in
    ``I_low``, how far above ``min_{I_up} f``.  Only violations beyond
    the sub-solver tolerance count (anything smaller cannot move the
    converged gap).
    """
    up = upper_mask(labels, alpha_full, box)
    low = lower_mask(labels, alpha_full, box)
    if not up.any() or not low.any():
        return np.empty(0, dtype=np.int64)
    b_up = float(f[up].min())
    b_low = float(f[low].max())
    violation = np.full(labels.size, -np.inf)
    violation[up] = b_low - f[up]
    violation[low] = np.maximum(violation[low], (f - b_up)[low])
    violation[active] = -np.inf  # already in the root problem
    candidates = np.flatnonzero(violation > epsilon)
    if candidates.size == 0:
        return candidates.astype(np.int64)
    order = candidates[np.argsort(-violation[candidates], kind="stable")]
    return np.sort(order[:chunk]).astype(np.int64)


def _cascade_solve(
    config,
    cascade: CascadeConfig,
    pool,
    data: mops.MatrixLike,
    labels: np.ndarray,
    kernel: KernelFunction,
    penalty: float,
    *,
    penalty_vector: Optional[np.ndarray] = None,
    injector: Optional[FaultInjector] = None,
    store: Optional[CheckpointStore] = None,
    checkpoint_every: int = 4,
    member_clocks: Optional[list[SimClock]] = None,
    tracer=None,
) -> tuple[SolverResult, CascadeReport]:
    """Run one cascade solve over an existing :class:`DevicePool`.

    ``member_clocks`` (one per device) accumulate the wave-scaled member
    time; the caller folds them with the pool's engine clocks to obtain
    the timeline.  Returns the full-problem :class:`SolverResult` (alpha
    over every instance, exact final ``f``, bias, global gap) plus the
    :class:`CascadeReport`.
    """
    from repro.core.trainer import _batched_solver, _interleave_limits

    cluster = pool.cluster
    labels = validate_binary_problem(labels, penalty)
    n = labels.size
    box = resolve_penalty_vector(penalty, n, penalty_vector)
    weighted_box = None if penalty_vector is None else box
    budget = cascade.resolve_budget(config.epsilon)
    n_shards = effective_shards(labels, cascade.n_shards)
    shards = shard_instances(labels, n_shards, cascade.seed)
    shard_device = assign_shards(n_shards, pool.n_devices)
    per_row = _row_bytes(data)
    if member_clocks is None:
        member_clocks = [SimClock() for _ in range(pool.n_devices)]

    report = CascadeReport(
        n_instances=n,
        n_shards=n_shards,
        requested_shards=cascade.n_shards,
        n_devices=pool.n_devices,
        n_nodes=cluster.n_nodes,
        gap_budget=budget,
    )
    ledger_before = dict(pool.transfer_ledger)
    total_iterations = 0
    total_rows_computed = 0

    # ------------------------------------------------------------------
    # Phase 1: per-device shard sub-solves under the wave scheduler.
    # ------------------------------------------------------------------
    members_by_device: dict[int, list[_ShardMember]] = {}
    for shard, indices in enumerate(shards):
        device = shard_device[shard]
        members_by_device.setdefault(device, []).append(
            _make_shard_member(
                config, shard, indices, data, labels, kernel, penalty,
                weighted_box, pool.engine(device).counters,
            )
        )
    lost_devices: dict[int, float] = {}
    results: dict[int, SolverResult] = {}
    shard_seconds = 0.0
    for device in sorted(members_by_device):
        members = members_by_device[device]
        master = pool.engine(device)
        if tracer is not None:
            tracer.bind_clock(master.clock)
        resident = int(
            round(sum(m.problem.n for m in members) * per_row)
        )
        with maybe_span(
            tracer,
            "cascade_shard_wave",
            clock=master.clock,
            device=device,
            n_shards=len(members),
            resident_bytes=resident,
        ) as device_span:
            pool.host_to_device(device, resident)
            if injector is not None:
                rate = injector.straggler_rate(device)
                if rate != 1.0:
                    for member in members:
                        member.engine.clock.rate = rate
            loss_at = (
                injector.loss_time(device) if injector is not None else None
            )
            on_wave = None
            if loss_at is not None or store is not None:

                def on_wave(
                    wave_index,
                    running,
                    finished,
                    wave_outcome,
                    *,
                    _device=device,
                    _members=members,
                    _master=master,
                    _loss_at=loss_at,
                ):
                    now_s = (
                        _master.clock.elapsed_s
                        + wave_outcome.timeline.elapsed_s
                    )
                    # Loss first: a checkpoint "taken" on the wave that
                    # crosses the loss time never reached the host.
                    if _loss_at is not None and now_s >= _loss_at:
                        injector.check_device(_device, now_s)
                    if store is not None and wave_index % checkpoint_every == 0:
                        checkpoint = TrainingCheckpoint(
                            device=_device,
                            wave=wave_index,
                            simulated_s=now_s,
                            snapshots={
                                m.index: _member_snapshot(m)
                                for m in _members
                            },
                        )
                        pool.device_to_host(
                            _device, checkpoint.nbytes, category="checkpoint"
                        )
                        store.save(checkpoint)

            limits = _interleave_limits(config, resident)
            try:
                outcome = run_interleaved(
                    members,
                    limits,
                    tracer=tracer,
                    span_clock=master.clock,
                    on_wave=on_wave,
                )
            except DeviceLostError as exc:
                lost_devices[device] = exc.at_s
                device_span.set(lost=True, lost_at_s=exc.at_s)
                continue
            member_clocks[device].merge(outcome.timeline)
            shard_seconds = max(shard_seconds, outcome.timeline.elapsed_s)
            for member in members:
                results[member.index] = member.result
            device_span.set(
                simulated_seconds=outcome.timeline.elapsed_s,
                max_concurrency=outcome.max_concurrency,
            )
        if tracer is not None:
            tracer.bind_clock(None)

    # ------------------------------------------------------------------
    # Recovery: lost devices hand their shards to the survivors, which
    # restore the last shipped checkpoint (or restart) and re-solve.
    # ------------------------------------------------------------------
    if lost_devices:
        survivors = [
            d for d in range(pool.n_devices) if d not in lost_devices
        ]
        if not survivors:
            raise SolverError(
                "every device in the cluster was lost mid-cascade; "
                "nothing survives to recover on"
            )
        lost_shards = sorted(
            member.index
            for device in lost_devices
            for member in members_by_device.get(device, [])
        )
        snapshots: dict[int, SessionSnapshot] = {}
        if store is not None:
            for device in lost_devices:
                checkpoint = store.latest(device)
                if checkpoint is not None:
                    snapshots.update(checkpoint.snapshots)
        regrouped: dict[int, list[int]] = {}
        for position, shard in enumerate(lost_shards):
            survivor = survivors[position % len(survivors)]
            regrouped.setdefault(survivor, []).append(shard)
            shard_device[shard] = survivor
        with maybe_span(
            tracer,
            "cascade_recovery",
            n_shards=len(lost_shards),
            n_survivors=len(survivors),
            resumed_from_checkpoint=sum(
                1 for shard in lost_shards if shard in snapshots
            ),
        ):
            for survivor in sorted(regrouped):
                shards_here = regrouped[survivor]
                master = pool.engine(survivor)
                if tracer is not None:
                    tracer.bind_clock(master.clock)
                resident = int(
                    round(sum(shards[s].size for s in shards_here) * per_row)
                )
                with maybe_span(
                    tracer,
                    "cascade_shard_wave",
                    clock=master.clock,
                    device=survivor,
                    n_shards=len(shards_here),
                    resident_bytes=resident,
                    recovery=True,
                ):
                    pool.host_to_device(survivor, resident)
                    restore_bytes = sum(
                        snapshots[s].nbytes
                        for s in shards_here
                        if s in snapshots
                    )
                    if restore_bytes:
                        pool.host_to_device(
                            survivor, restore_bytes, category="checkpoint"
                        )
                    recovered = [
                        _make_shard_member(
                            config, shard, shards[shard], data, labels,
                            kernel, penalty, weighted_box, master.counters,
                        )
                        for shard in shards_here
                    ]
                    if injector is not None:
                        rate = injector.straggler_rate(survivor)
                        if rate != 1.0:
                            for member in recovered:
                                member.engine.clock.rate = rate
                    for member in recovered:
                        snapshot = snapshots.get(member.index)
                        if snapshot is not None:
                            member.session.restore_state(
                                {
                                    "alpha": snapshot.alpha,
                                    "f": snapshot.f,
                                    "rounds": snapshot.rounds,
                                    "inner_total": snapshot.inner_total,
                                    "ws_order": list(snapshot.ws_order),
                                    "stalled": snapshot.stalled,
                                    "converged": snapshot.converged,
                                    "finished": snapshot.finished,
                                }
                            )
                    limits = _interleave_limits(config, resident)
                    outcome = run_interleaved(
                        recovered,
                        limits,
                        tracer=tracer,
                        span_clock=master.clock,
                    )
                    member_clocks[survivor].merge(outcome.timeline)
                    shard_seconds = max(
                        shard_seconds, outcome.timeline.elapsed_s
                    )
                    for member in recovered:
                        results[member.index] = member.result
                if tracer is not None:
                    tracer.bind_clock(None)
        report.faults = {
            "devices_lost": {
                int(d): float(at) for d, at in sorted(lost_devices.items())
            },
            "survivors": [int(d) for d in survivors],
            "recovered_shards": len(lost_shards),
            "resumed_from_checkpoint": sum(
                1 for shard in lost_shards if shard in snapshots
            ),
        }

    # Collapse the shard results into tree slots (SVs only).
    slots: dict[int, _Slot] = {}
    shard_entries = []
    for shard in range(n_shards):
        result = results[shard]
        support = result.support_indices
        slots[shard] = _Slot(
            indices=shards[shard][support],
            alpha=result.alpha[support],
            device=shard_device[shard],
        )
        total_iterations += result.iterations
        total_rows_computed += result.kernel_rows_computed
        shard_entries.append(
            {
                "shard": shard,
                "device": int(shard_device[shard]),
                "n": int(shards[shard].size),
                "sv_out": int(support.size),
                "iterations": int(result.iterations),
                "converged": bool(result.converged),
            }
        )
    report.levels.append(
        {
            "kind": "shard",
            "n_slots": n_shards,
            "sv_in": n,
            "sv_out": int(sum(e["sv_out"] for e in shard_entries)),
            "survival": float(
                sum(e["sv_out"] for e in shard_entries) / max(n, 1)
            ),
            "iterations": int(sum(e["iterations"] for e in shard_entries)),
            "simulated_seconds": float(shard_seconds),
            "shards": shard_entries,
        }
    )

    # ------------------------------------------------------------------
    # Phase 2: pairwise SV merge up the topology-aware reduction tree.
    # ------------------------------------------------------------------
    tree = build_reduction_tree(
        [slots[s].device for s in range(n_shards)], cluster
    )
    for level_steps in tree.levels:
        merges = [
            _merge_solve(
                config, pool, slots, step, data, labels, kernel, penalty,
                weighted_box, per_row, member_clocks, tracer,
            )
            for step in level_steps
        ]
        total_iterations += sum(m["iterations"] for m in merges)
        tier_bytes: dict[str, int] = {}
        for m in merges:
            tier_bytes[m["tier"]] = tier_bytes.get(m["tier"], 0) + m["nbytes"]
        sv_in = sum(m["sv_in"] for m in merges)
        sv_out = sum(m["sv_out"] for m in merges)
        report.levels.append(
            {
                "kind": "merge",
                "n_merges": len(merges),
                "sv_in": int(sv_in),
                "sv_out": int(sv_out),
                "survival": float(sv_out / sv_in) if sv_in else 1.0,
                "iterations": int(sum(m["iterations"] for m in merges)),
                "simulated_seconds": float(
                    max((m["simulated_seconds"] for m in merges), default=0.0)
                ),
                "tier_bytes": tier_bytes,
                "merges": merges,
            }
        )
    report.tree = {
        "n_levels": len(tree.levels),
        "n_merges": tree.n_merges,
        "tier_counts": tree.tier_counts(),
        "root_slot": int(tree.root),
        "root_device": int(slots[tree.root].device),
    }

    # ------------------------------------------------------------------
    # Phase 3: feedback loop + final full-KKT verification.  Every pass
    # recomputes the exact global indicators from the current weights,
    # so the loop head is the verification of whatever solve came last.
    # ------------------------------------------------------------------
    root = slots[tree.root]
    home_device = np.empty(n, dtype=np.int64)
    for shard in range(n_shards):
        home_device[shards[shard]] = shard_device[shard]
    feedback_entries: list[dict] = []
    while True:
        f_full, gap, kkt_stats = _global_kkt_pass(
            config, pool, root, home_device, data, labels, box, kernel,
            per_row, member_clocks, tracer,
        )
        report.kkt_passes += 1
        if gap <= budget:
            report.budget_met = True
            break
        if report.feedback_rounds >= cascade.max_feedback_rounds:
            break
        alpha_full = np.zeros(n)
        alpha_full[root.indices] = root.alpha
        violators = _select_violators(
            f_full, labels, alpha_full, box, root.indices,
            cascade.feedback_chunk, config.epsilon,
        )
        if violators.size == 0:
            break
        # Ship the violating rows from their home devices to the root.
        for device in sorted(set(int(d) for d in home_device[violators])):
            if device == root.device:
                continue
            owned = int(np.count_nonzero(home_device[violators] == device))
            pool.device_to_device(
                device,
                root.device,
                int(round(owned * per_row)) + owned * FLOAT_BYTES,
                category="cascade_feedback",
            )
        active = np.sort(np.concatenate([root.indices, violators]))
        position_of = {int(g): i for i, g in enumerate(active)}
        alpha0 = np.zeros(active.size)
        for g, a in zip(root.indices, root.alpha):
            alpha0[position_of[int(g)]] = a
        engine = make_engine(
            config.device,
            flop_efficiency=config.flop_efficiency,
            bandwidth_efficiency=config.bandwidth_efficiency,
            backend=config.backend,
            counters=pool.engine(root.device).counters,
        )
        with maybe_span(
            tracer,
            "cascade_feedback",
            clock=engine.clock,
            round=report.feedback_rounds + 1,
            n_violators=int(violators.size),
            n_active=int(active.size),
            gap=float(gap),
        ) as span:
            rows = KernelRowComputer(
                engine,
                kernel,
                mops.take_rows(data, active),
                category="cascade_feedback",
            )
            solver = _batched_solver(
                config, penalty, tracer=None, record_rounds=False
            )
            result = solver.solve(
                rows,
                labels[active],
                penalty_vector=None if weighted_box is None else box[active],
                initial_alpha=alpha0,
                initial_f=f_full[active],
            )
            support = result.support_indices
            root = _Slot(
                indices=active[support],
                alpha=result.alpha[support],
                device=root.device,
            )
            slots[tree.root] = root
            span.set(
                sv_out=int(support.size),
                iterations=result.iterations,
                converged=result.converged,
            )
        member_clocks[root.device].merge(engine.clock)
        total_iterations += result.iterations
        total_rows_computed += result.kernel_rows_computed
        report.feedback_rounds += 1
        report.instances_fed_back += int(violators.size)
        feedback_entries.append(
            {
                "kind": "feedback",
                "round": report.feedback_rounds,
                "gap_before": float(gap),
                "n_violators": int(violators.size),
                "n_active": int(active.size),
                "sv_out": int(support.size),
                "iterations": int(result.iterations),
                "simulated_seconds": float(engine.clock.elapsed_s),
            }
        )
    report.levels.extend(feedback_entries)
    report.levels.append(kkt_stats)

    if not report.budget_met:
        warnings.warn(
            f"cascade feedback loop stopped at global gap {gap:.3g} above "
            f"the dual-gap budget {budget:.3g} "
            f"({report.feedback_rounds} feedback rounds)",
            ConvergenceWarning,
            stacklevel=3,
        )

    # Assemble the full-problem result from the verified final state.
    alpha_full = np.zeros(n)
    alpha_full[root.indices] = root.alpha
    bias = bias_from_f(f_full, labels, alpha_full, box)
    report.final_gap = float(gap)
    report.n_support = root.n_sv
    report.total_iterations = total_iterations
    tier_totals = {"host": 0, "intra": 0, "inter": 0}
    for (src, dst), nbytes in pool.transfer_ledger.items():
        moved = nbytes - ledger_before.get((src, dst), 0)
        if moved:
            tier_totals[pool.link_tier(src, dst)] += moved
    report.transfer_bytes = tier_totals
    result = SolverResult(
        alpha=alpha_full,
        bias=bias,
        converged=report.budget_met,
        iterations=total_iterations,
        rounds=report.kkt_passes,
        objective=dual_objective(alpha_full, labels, f_full),
        final_gap=float(gap),
        kernel_rows_computed=total_rows_computed,
        diagnostics={
            "cascade": True,
            "n_shards": n_shards,
            "feedback_rounds": report.feedback_rounds,
            "gap_budget": budget,
        },
        f=f_full,
    )
    return result, report


def train_cascade(
    config,
    cluster,
    data: mops.MatrixLike,
    y: np.ndarray,
    kernel: KernelFunction,
    penalty: float,
    *,
    cascade: Optional[CascadeConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
    checkpoint_every: int = 4,
    checkpoint_dir: Optional[object] = None,
) -> tuple[SolverResult, CascadeReport]:
    """Train one binary SVM instance-sharded across a simulated cluster.

    ``y`` must be ±1 labels; ``config`` is the usual
    :class:`~repro.core.trainer.TrainerConfig` (batched solver only),
    ``cluster`` a (possibly hierarchical)
    :class:`~repro.distributed.cluster.ClusterSpec`.  Returns the
    full-problem :class:`~repro.solvers.base.SolverResult` — dual
    weights over every instance, bias, exact final indicators ``f`` and
    the verified global dual gap — plus the :class:`CascadeReport`
    (per-level timeline, SV survival, per-tier transfer bytes, feedback
    accounting, faults).

    The trained model is **not** bitwise-identical to the sequential
    solve — the cascade merge is approximate.  ``converged`` on the
    result means the final full-KKT verification met the configured
    dual-gap budget; a miss raises a
    :class:`~repro.exceptions.ConvergenceWarning` instead of failing.

    ``fault_plan`` / ``checkpoint_every`` / ``checkpoint_dir`` mirror
    :func:`~repro.distributed.trainer.train_multiclass_sharded`: device
    losses abort the affected shard solves at a wave boundary and the
    survivors resume them from the last shipped checkpoint; the merge
    tree is then built over the surviving devices and the error budget
    still applies.
    """
    from repro.distributed.cluster import DevicePool

    tracer = config.tracer
    if config.solver != "batched":
        raise ValidationError(
            "cascade training drives resumable batched-SMO sessions; "
            f"solver {config.solver!r} is not shardable"
        )
    if checkpoint_every < 1:
        raise ValidationError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}"
        )
    if config.device is not cluster.device:
        config = replace(config, device=cluster.device)
    cascade = cascade if cascade is not None else CascadeConfig()
    injector = (
        FaultInjector(fault_plan, cluster.n_devices)
        if fault_plan is not None and not fault_plan.is_empty
        else None
    )
    store_root = None if checkpoint_dir == ":memory:" else checkpoint_dir
    store = (
        CheckpointStore(store_root)
        if injector is not None or checkpoint_dir is not None
        else None
    )
    pool = DevicePool(
        cluster,
        flop_efficiency=config.flop_efficiency,
        bandwidth_efficiency=config.bandwidth_efficiency,
        backend=config.backend,
        tracer=tracer,
        fault_injector=injector,
    )
    member_clocks = [SimClock() for _ in range(cluster.n_devices)]
    with maybe_span(
        tracer,
        "train_cascade",
        n_instances=mops.n_rows(data),
        n_devices=cluster.n_devices,
        n_nodes=cluster.n_nodes,
        n_shards=cascade.n_shards,
    ) as span:
        result, report = _cascade_solve(
            config,
            cascade,
            pool,
            data,
            np.asarray(y).ravel(),
            kernel,
            penalty,
            injector=injector,
            store=store,
            checkpoint_every=checkpoint_every,
            member_clocks=member_clocks,
            tracer=tracer,
        )
        report.simulated_seconds = max(
            pool.engine(d).clock.elapsed_s + member_clocks[d].elapsed_s
            for d in range(cluster.n_devices)
        )
        if injector is not None:
            faults = injector.summary()
            faults["checkpoints_written"] = store.n_written if store else 0
            faults["recovery"] = report.faults
            report.faults = faults
        elif store is not None and store.n_written:
            report.faults = {"checkpoints_written": store.n_written}
        span.set(
            simulated_seconds=report.simulated_seconds,
            final_gap=report.final_gap,
            budget_met=report.budget_met,
            feedback_rounds=report.feedback_rounds,
            n_support=report.n_support,
        )
    return result, report
