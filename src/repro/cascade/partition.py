"""Seeded, deterministic instance partitioning for the cascade.

Each sub-SVM must be a well-posed binary problem, so the partitioner is
*stratified*: the positive and the negative instances are shuffled
independently (seeded generator) and dealt round-robin to the shards,
which guarantees every shard holds both classes and shard sizes differ
by at most one per class.  Same ``(labels, n_shards, seed)`` always
yields the same shards — the cascade timeline, the reduction tree and
the recovered-after-fault run all see identical partitions.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["effective_shards", "shard_instances"]


def effective_shards(labels: np.ndarray, n_shards: int) -> int:
    """Largest usable shard count: every shard needs both classes."""
    if n_shards < 1:
        raise ValidationError(f"n_shards must be >= 1, got {n_shards}")
    n_positive = int(np.count_nonzero(labels > 0))
    n_negative = int(np.count_nonzero(labels < 0))
    return max(1, min(n_shards, n_positive, n_negative))


def shard_instances(
    labels: np.ndarray, n_shards: int, seed: int
) -> list[np.ndarray]:
    """Partition a binary problem's instances into stratified shards.

    ``labels`` are the problem's ±1 labels in local order.  Returns
    ``n_shards`` sorted index arrays that disjointly cover
    ``range(len(labels))``, each containing at least one instance of
    either class.  Raises when the labels cannot support ``n_shards``
    stratified shards (use :func:`effective_shards` to clamp first).
    """
    labels = np.asarray(labels).ravel()
    if n_shards < 1:
        raise ValidationError(f"n_shards must be >= 1, got {n_shards}")
    positives = np.flatnonzero(labels > 0)
    negatives = np.flatnonzero(labels < 0)
    if min(positives.size, negatives.size) < n_shards:
        raise ValidationError(
            f"cannot cut {n_shards} stratified shards from "
            f"{positives.size} positive / {negatives.size} negative "
            "instances; every shard needs both classes"
        )
    rng = np.random.default_rng(seed)
    shards: list[list[np.ndarray]] = [[] for _ in range(n_shards)]
    for class_indices in (positives, negatives):
        shuffled = class_indices.copy()
        rng.shuffle(shuffled)
        for shard in range(n_shards):
            shards[shard].append(shuffled[shard::n_shards])
    return [
        np.sort(np.concatenate(parts)).astype(np.int64) for parts in shards
    ]
