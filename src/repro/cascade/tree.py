"""Topology-aware pairwise reduction tree over cascade shards.

The cascade merges surviving support vectors pairwise until one slot
remains.  On a hierarchical cluster the order matters: a merge between
devices on the same node rides the fast intra-node tier, a cross-node
merge rides the slow inter-node tier.  The tree therefore exhausts
same-device merges (free) and intra-node merges first, and only when
every node is down to a single surviving slot does it pair across nodes
— so exactly ``n_nodes - 1`` merges ever touch the inter-node tier.

Everything here is deterministic: slots are ordered by (node, device,
slot id) and paired adjacently, so the same shard→device assignment
always produces the same tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ValidationError

__all__ = ["MergeStep", "ReductionTree", "assign_shards", "build_reduction_tree"]


@dataclass(frozen=True)
class MergeStep:
    """One pairwise merge: slot ``src`` folds into slot ``dst``.

    ``tier`` names the link the SV payload rides: ``"local"`` (same
    device, no interconnect), ``"intra"`` (same node, fast tier) or
    ``"inter"`` (cross-node tier).
    """

    src: int
    dst: int
    tier: str


@dataclass
class ReductionTree:
    """The merge schedule: levels of independent pairwise merges."""

    levels: list[list[MergeStep]] = field(default_factory=list)
    root: int = 0

    @property
    def n_merges(self) -> int:
        """Total pairwise merges across all levels."""
        return sum(len(level) for level in self.levels)

    def tier_counts(self) -> dict[str, int]:
        """How many merges ride each link tier."""
        counts = {"local": 0, "intra": 0, "inter": 0}
        for level in self.levels:
            for step in level:
                counts[step.tier] += 1
        return counts


def assign_shards(n_shards: int, n_devices: int) -> list[int]:
    """Deterministic shard→device assignment, contiguous and node-major.

    With at most one shard per device the assignment is the identity
    (devices are numbered node-major, so neighbouring shards share a
    node); with more shards than devices, contiguous blocks keep a
    shard's first merge partner on the same device whenever possible.
    """
    if n_shards < 1 or n_devices < 1:
        raise ValidationError("need at least one shard and one device")
    if n_shards <= n_devices:
        return list(range(n_shards))
    return [(i * n_devices) // n_shards for i in range(n_shards)]


def build_reduction_tree(slot_devices: list[int], cluster) -> ReductionTree:
    """Plan the pairwise reduction of ``len(slot_devices)`` slots.

    ``slot_devices[i]`` is the device holding slot ``i``'s sub-solution;
    ``cluster`` is the :class:`~repro.distributed.cluster.ClusterSpec`
    supplying the node map.  Each level pairs adjacent surviving slots
    ordered by (node, device, slot), never crossing a node boundary
    while any node still holds two slots; the surviving slot of a pair
    is the earlier one and inherits its device.
    """
    if not slot_devices:
        raise ValidationError("cannot reduce zero slots")
    device_of = dict(enumerate(slot_devices))
    active = sorted(
        device_of,
        key=lambda slot: (cluster.node_of(device_of[slot]), device_of[slot], slot),
    )
    levels: list[list[MergeStep]] = []
    while len(active) > 1:
        by_node: dict[int, list[int]] = {}
        for slot in active:
            by_node.setdefault(cluster.node_of(device_of[slot]), []).append(slot)
        merges: list[MergeStep] = []
        survivors: list[int] = []
        if any(len(slots) >= 2 for slots in by_node.values()):
            # Intra-node phase: pair adjacent slots within each node
            # (same-device neighbours first, by construction of the
            # ordering); odd slots carry to the next level.
            for node in sorted(by_node):
                slots = by_node[node]
                for i in range(0, len(slots) - 1, 2):
                    dst, src = slots[i], slots[i + 1]
                    tier = (
                        "local"
                        if device_of[src] == device_of[dst]
                        else "intra"
                    )
                    merges.append(MergeStep(src=src, dst=dst, tier=tier))
                    survivors.append(dst)
                if len(slots) % 2:
                    survivors.append(slots[-1])
        else:
            # Every node is down to one slot: pair across nodes.
            slots = [by_node[node][0] for node in sorted(by_node)]
            for i in range(0, len(slots) - 1, 2):
                dst, src = slots[i], slots[i + 1]
                merges.append(MergeStep(src=src, dst=dst, tier="inter"))
                survivors.append(dst)
            if len(slots) % 2:
                survivors.append(slots[-1])
        levels.append(merges)
        active = sorted(
            survivors,
            key=lambda slot: (
                cluster.node_of(device_of[slot]),
                device_of[slot],
                slot,
            ),
        )
    return ReductionTree(levels=levels, root=active[0])
