"""Command-line tools mirroring LibSVM's ``svm-train`` / ``svm-predict``.

::

    repro-train -c 10 -g 0.5 -b 1 train.svm model.repro
    repro-predict -b 1 test.svm model.repro predictions.txt

Flags follow LibSVM's conventions where they overlap (``-t`` kernel type,
``-c`` cost, ``-g`` gamma, ``-d`` degree, ``-r`` coef0, ``-e`` tolerance,
``-b`` probability, ``-h`` shrinking for the libsvm system), plus
``--system`` to pick any of the reproduced implementations and
``--report`` to print the simulated-cost breakdown.

Observability flags (both tools): ``--report-json PATH`` writes the
schema-versioned JSON report snapshot and ``--trace PATH`` writes a JSONL
span trace of the run (see :mod:`repro.telemetry`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from repro import GMPSVC, load_model
from repro.baselines import (
    CMPSVMClassifier,
    GPUBaselineClassifier,
    LibSVMClassifier,
)
from repro.core.predictor import PredictorConfig, predict_labels_model, predict_proba_model
from repro.exceptions import ReproError
from repro.gpusim.device import scaled_tesla_p100
from repro.sparse import load_libsvm
from repro.telemetry import Tracer

__all__ = ["train_main", "predict_main"]

KERNEL_TYPES = {0: "linear", 1: "polynomial", 2: "gaussian", 3: "sigmoid"}
SYSTEMS = ("gmp-svm", "libsvm", "libsvm-openmp", "gpu-baseline", "cmp-svm")


def _train_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-train",
        description="Train a multi-class probabilistic SVM (GMP-SVM reproduction).",
        add_help=True,
    )
    parser.add_argument("training_file", help="training data, LibSVM format")
    parser.add_argument(
        "model_file",
        nargs="?",
        default=None,
        help="output model path (default: <training_file>.model)",
    )
    parser.add_argument("-t", "--kernel-type", type=int, default=2,
                        choices=sorted(KERNEL_TYPES),
                        help="0 linear, 1 polynomial, 2 gaussian/RBF, 3 sigmoid")
    parser.add_argument("-c", "--cost", type=float, default=1.0)
    parser.add_argument("-g", "--gamma", type=float, default=None,
                        help="kernel gamma (default 1/n_features)")
    parser.add_argument("-d", "--degree", type=int, default=3)
    parser.add_argument("-r", "--coef0", type=float, default=0.0)
    parser.add_argument("-e", "--epsilon", type=float, default=1e-3,
                        help="KKT tolerance")
    parser.add_argument("-b", "--probability", type=int, default=1, choices=(0, 1))
    parser.add_argument("--system", default="gmp-svm", choices=SYSTEMS,
                        help="which reproduced system trains the model")
    parser.add_argument("--working-set", type=int, default=48,
                        help="GPU buffer rows / working-set size (gmp-svm, cmp-svm)")
    parser.add_argument("--report", action="store_true",
                        help="print the simulated-cost report after training")
    parser.add_argument("--report-json", metavar="PATH", default=None,
                        help="write the training report as schema-versioned JSON")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a JSONL span trace of the run")
    parser.add_argument("-q", "--quiet", action="store_true")
    return parser


def _build_cli_classifier(args: argparse.Namespace):
    kwargs = dict(
        C=args.cost,
        kernel=KERNEL_TYPES[args.kernel_type],
        gamma=args.gamma,
        degree=args.degree,
        coef0=args.coef0,
        epsilon=args.epsilon,
        probability=bool(args.probability),
    )
    if args.system == "gmp-svm":
        return GMPSVC(working_set_size=args.working_set, **kwargs)
    if args.system == "libsvm":
        return LibSVMClassifier(**kwargs)
    if args.system == "libsvm-openmp":
        return LibSVMClassifier(openmp=True, **kwargs)
    if args.system == "gpu-baseline":
        return GPUBaselineClassifier(**kwargs)
    return CMPSVMClassifier(working_set_size=args.working_set, **kwargs)


def train_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-train``; returns a process exit code."""
    args = _train_parser().parse_args(argv)
    tracer = Tracer() if args.trace else None
    try:
        data, labels = load_libsvm(args.training_file)
        classifier = _build_cli_classifier(args)
        classifier.tracer = tracer
        classifier.fit(data, labels)
        model_path = (
            args.model_file
            if args.model_file
            else f"{args.training_file}.model"
        )
        classifier.save(model_path)
        if args.report_json:
            with open(args.report_json, "w", encoding="utf-8") as handle:
                handle.write(classifier.training_report_.to_json(indent=2) + "\n")
        if tracer is not None:
            tracer.write_jsonl(args.trace)
    except (ReproError, OSError) as exc:
        print(f"repro-train: error: {exc}", file=sys.stderr)
        return 1

    if not args.quiet:
        report = classifier.training_report_
        model = classifier.model_
        print(f"trained {report.n_binary_svms} binary SVM(s) on "
              f"{data.shape[0]} x {data.shape[1]} instances "
              f"({model.n_classes} classes)")
        print(f"support vectors (shared pool): {model.n_support_total}")
        print(f"simulated {report.device_name} time: "
              f"{report.simulated_seconds * 1e3:.3f} ms")
        print(f"model saved to {model_path}")
        if args.report:
            for category, fraction in sorted(report.fraction_breakdown().items()):
                print(f"  {category:18s} {fraction:6.1%}")
    return 0


def _predict_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-predict",
        description="Predict with a trained GMP-SVM reproduction model.",
    )
    parser.add_argument("test_file", help="test data, LibSVM format")
    parser.add_argument("model_file", help="model written by repro-train")
    parser.add_argument("output_file", nargs="?", default=None,
                        help="where to write predictions (default: stdout)")
    parser.add_argument("-b", "--probability", type=int, default=0, choices=(0, 1),
                        help="1 = output per-class probabilities")
    parser.add_argument("--report-json", metavar="PATH", default=None,
                        help="write the prediction report as schema-versioned JSON")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a JSONL span trace of the run")
    parser.add_argument("-q", "--quiet", action="store_true")
    return parser


def predict_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-predict``; returns a process exit code."""
    args = _predict_parser().parse_args(argv)
    tracer = Tracer() if args.trace else None
    try:
        model = load_model(args.model_file)
        data, labels = load_libsvm(
            args.test_file, n_features=model.sv_pool.pool_data.shape[1]
        )
        config = PredictorConfig(device=scaled_tesla_p100(), tracer=tracer)
        if args.probability:
            probabilities, report = predict_proba_model(config, model, data)
            positions = np.argmax(probabilities, axis=1)
            predictions = model.labels_from_positions(positions)
        else:
            predictions, report = predict_labels_model(
                config, model, data, use_probability=False
            )
            probabilities = None
        if args.report_json:
            with open(args.report_json, "w", encoding="utf-8") as handle:
                handle.write(report.to_json(indent=2) + "\n")
        if tracer is not None:
            tracer.write_jsonl(args.trace)
    except (ReproError, OSError) as exc:
        print(f"repro-predict: error: {exc}", file=sys.stderr)
        return 1

    lines = []
    if probabilities is not None:
        header = "labels " + " ".join(format(c, "g") for c in model.classes)
        lines.append(header)
        for label, row in zip(predictions, probabilities):
            lines.append(
                f"{label:g} " + " ".join(f"{p:.6g}" for p in row)
            )
    else:
        lines.extend(f"{label:g}" for label in predictions)
    text = "\n".join(lines) + "\n"
    if args.output_file:
        with open(args.output_file, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)

    if not args.quiet:
        accuracy = float(np.mean(predictions == labels))
        correct = int(np.sum(predictions == labels))
        # LibSVM's svm-predict output format.
        print(
            f"Accuracy = {accuracy:.4%} ({correct}/{labels.size}) "
            f"(classification)",
            file=sys.stderr,
        )
        print(
            f"simulated prediction time: {report.simulated_seconds * 1e3:.3f} ms",
            file=sys.stderr,
        )
    return 0
