"""Command-line tools mirroring LibSVM's ``svm-train`` / ``svm-predict``.

::

    repro-train -c 10 -g 0.5 -b 1 train.svm model.repro
    repro-predict -b 1 test.svm model.repro predictions.txt

Flags follow LibSVM's conventions where they overlap (``-t`` kernel type,
``-c`` cost, ``-g`` gamma, ``-d`` degree, ``-r`` coef0, ``-e`` tolerance,
``-b`` probability, ``-h`` shrinking for the libsvm system), plus
``--system`` to pick any of the reproduced implementations and
``--report`` to print the simulated-cost breakdown.

Observability flags (both tools): ``--report-json PATH`` writes the
schema-versioned JSON report snapshot and ``--trace PATH`` writes a JSONL
span trace of the run (see :mod:`repro.telemetry`).

``repro-serve-bench`` exercises the serving layer: it seals the model
into an :class:`~repro.serving.InferenceSession`, replays the test file
as single-instance requests through a :class:`~repro.serving.MicroBatcher`
and prints simulated throughput plus p50/p99 latency, next to the cold
per-request baseline.

``repro-serve`` puts the same sealed session behind a real TCP socket
(DESIGN.md §13): stdlib HTTP front-end with per-tenant admission
control, worker-pool dispatch on the simulated clock and explicit
429/503 shedding.  ``repro-serve model.repro --port 8080`` then ``POST
/v1/predict_proba`` with ``{"instances": {"rows": [[...]]}}``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from repro import GMPSVC, load_model
from repro.backends import list_backends
from repro.baselines import (
    CMPSVMClassifier,
    GPUBaselineClassifier,
    LibSVMClassifier,
)
from repro.core.predictor import PredictorConfig, predict_labels_model, predict_proba_model
from repro.exceptions import ReproError
from repro.gpusim.device import scaled_tesla_p100
from repro.sparse import load_libsvm
from repro.telemetry import Tracer

__all__ = ["train_main", "predict_main", "serve_bench_main", "serve_main"]

KERNEL_TYPES = {0: "linear", 1: "polynomial", 2: "gaussian", 3: "sigmoid"}
SYSTEMS = ("gmp-svm", "libsvm", "libsvm-openmp", "gpu-baseline", "cmp-svm")


def _train_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-train",
        description="Train a multi-class probabilistic SVM (GMP-SVM reproduction).",
        add_help=True,
    )
    parser.add_argument("training_file", help="training data, LibSVM format")
    parser.add_argument(
        "model_file",
        nargs="?",
        default=None,
        help="output model path (default: <training_file>.model)",
    )
    parser.add_argument("-t", "--kernel-type", type=int, default=2,
                        choices=sorted(KERNEL_TYPES),
                        help="0 linear, 1 polynomial, 2 gaussian/RBF, 3 sigmoid")
    parser.add_argument("-c", "--cost", type=float, default=1.0)
    parser.add_argument("-g", "--gamma", type=float, default=None,
                        help="kernel gamma (default 1/n_features)")
    parser.add_argument("-d", "--degree", type=int, default=3)
    parser.add_argument("-r", "--coef0", type=float, default=0.0)
    parser.add_argument("-e", "--epsilon", type=float, default=1e-3,
                        help="KKT tolerance")
    parser.add_argument("-b", "--probability", type=int, default=1, choices=(0, 1))
    parser.add_argument("--system", default="gmp-svm", choices=SYSTEMS,
                        help="which reproduced system trains the model")
    parser.add_argument("--backend", default="numpy64",
                        choices=sorted(list_backends()),
                        help="compute backend: numpy64 (float64 reference) "
                             "or numpy32 (float32/mixed-precision fast "
                             "path; gmp-svm and cmp-svm only)")
    parser.add_argument("--working-set", type=int, default=48,
                        help="GPU buffer rows / working-set size (gmp-svm, cmp-svm)")
    parser.add_argument("--devices", type=int, default=1, metavar="N",
                        help="shard training across N simulated GPUs "
                             "(gmp-svm only; models stay bitwise identical)")
    parser.add_argument("--placement", default="affinity",
                        choices=("affinity", "round_robin"),
                        help="pair-to-device placement when --devices > 1")
    parser.add_argument("--instance-shards", type=int, default=1, metavar="N",
                        help="cut each large pairwise problem into N "
                             "instance shards and train it through the "
                             "cascade SMO driver (gmp-svm only; approximate "
                             "under an explicit dual-gap budget)")
    parser.add_argument("--cascade-threshold", type=int, default=2048,
                        metavar="M",
                        help="pairs with at least M instances route through "
                             "the cascade when --instance-shards > 1")
    parser.add_argument("--fault-seed", type=int, default=None,
                        metavar="SEED",
                        help="inject a seeded random fault plan (stragglers, "
                             "possible fail-stop device loss at t=0) into "
                             "sharded training; recovery keeps the model "
                             "bitwise identical (--devices > 1)")
    parser.add_argument("--checkpoint-every", type=int, default=4,
                        metavar="WAVES",
                        help="waves between solver-state checkpoints in "
                             "sharded training (fault recovery resumes "
                             "from the last one)")
    parser.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                        help="directory for sharded-training checkpoints "
                             "(--devices > 1; default: in-memory only)")
    parser.add_argument("--warm-start", metavar="PATH", default=None,
                        help="prior model to seed the solvers from "
                             "(incremental retraining; batched systems only)")
    parser.add_argument("--publish", metavar="DIR", default=None,
                        help="also publish the trained model into the "
                             "registry at DIR; lineage is recorded when "
                             "--warm-start matches a registry artifact")
    parser.add_argument("--report", action="store_true",
                        help="print the simulated-cost report after training")
    parser.add_argument("--report-json", metavar="PATH", default=None,
                        help="write the training report as schema-versioned JSON")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a JSONL span trace of the run")
    parser.add_argument("-q", "--quiet", action="store_true")
    return parser


def _build_cli_classifier(args: argparse.Namespace):
    kwargs = dict(
        C=args.cost,
        kernel=KERNEL_TYPES[args.kernel_type],
        gamma=args.gamma,
        degree=args.degree,
        coef0=args.coef0,
        epsilon=args.epsilon,
        probability=bool(args.probability),
    )
    if args.system == "gmp-svm":
        cascade = None
        if args.instance_shards > 1:
            from repro.cascade import CascadeConfig

            cascade = CascadeConfig(
                n_shards=args.instance_shards,
                threshold=args.cascade_threshold,
            )
        return GMPSVC(
            working_set_size=args.working_set, cascade=cascade, **kwargs
        )
    if args.system == "libsvm":
        return LibSVMClassifier(**kwargs)
    if args.system == "libsvm-openmp":
        return LibSVMClassifier(openmp=True, **kwargs)
    if args.system == "gpu-baseline":
        return GPUBaselineClassifier(**kwargs)
    return CMPSVMClassifier(working_set_size=args.working_set, **kwargs)


def _fit_sharded(classifier, data, labels, args, tracer) -> None:
    """Fit a GMPSVC across ``--devices`` simulated GPUs (bitwise-equal model)."""
    from repro.core.validation import check_fit_inputs
    from repro.distributed import ClusterSpec, train_multiclass_sharded
    from repro.sparse import ops as mops

    data, labels = check_fit_inputs(data, labels)
    kernel = classifier._build_kernel(mops.n_cols(data))
    config = classifier._trainer_config()
    config.tracer = tracer
    cluster = ClusterSpec(device=config.device, n_devices=args.devices)
    fault_plan = None
    if args.fault_seed is not None:
        from repro.faults import FaultPlan

        # Losses draw at t=0 so a drawn loss always fires and the
        # checkpoint/resume recovery path demonstrably runs.
        fault_plan = FaultPlan.random(
            args.fault_seed, args.devices, loss_window_s=0.0
        )
    classifier.model_, classifier.training_report_ = train_multiclass_sharded(
        config,
        cluster,
        data,
        labels,
        kernel,
        float(classifier.C),
        placement=args.placement,
        fault_plan=fault_plan,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
    )
    classifier.n_features_in_ = mops.n_cols(data)
    classifier.classes_ = classifier.model_.classes


def train_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-train``; returns a process exit code."""
    args = _train_parser().parse_args(argv)
    tracer = Tracer() if args.trace else None
    try:
        if args.devices < 1:
            raise ReproError(f"--devices must be >= 1, got {args.devices}")
        if args.devices > 1 and args.system != "gmp-svm":
            raise ReproError(
                "--devices shards the GPU system only; use --system gmp-svm"
            )
        if args.warm_start and args.devices > 1:
            raise ReproError("--warm-start does not combine with --devices")
        if args.devices == 1 and (
            args.fault_seed is not None or args.checkpoint_dir
        ):
            raise ReproError(
                "--fault-seed/--checkpoint-dir require --devices > 1"
            )
        if args.checkpoint_every < 1:
            raise ReproError(
                f"--checkpoint-every must be >= 1, got {args.checkpoint_every}"
            )
        if args.instance_shards < 1:
            raise ReproError(
                f"--instance-shards must be >= 1, got {args.instance_shards}"
            )
        if args.instance_shards > 1 and args.system != "gmp-svm":
            raise ReproError(
                "--instance-shards drives the cascade on the GPU system "
                "only; use --system gmp-svm"
            )
        if args.instance_shards > 1 and args.fault_seed is not None:
            raise ReproError(
                "--instance-shards does not combine with --fault-seed; "
                "cascade fault injection runs through "
                "repro.cascade.train_cascade"
            )
        if args.cascade_threshold < 2:
            raise ReproError(
                f"--cascade-threshold must be >= 2, got {args.cascade_threshold}"
            )
        if args.backend != "numpy64" and args.system not in (
            "gmp-svm", "cmp-svm"
        ):
            raise ReproError(
                "--backend selects the compute backend of the GMP/CMP "
                "systems; the baseline systems model fixed float64 code"
            )
        data, labels = load_libsvm(args.training_file)
        classifier = _build_cli_classifier(args)
        classifier.tracer = tracer
        if args.system in ("gmp-svm", "cmp-svm"):
            classifier.backend = args.backend
        if args.warm_start:
            # Seed the estimator with the prior fit; its next fit() then
            # warm-starts the solvers (sklearn warm_start semantics).
            classifier.model_ = load_model(args.warm_start, backend=args.backend)
            classifier.warm_start = True
        if args.devices > 1:
            _fit_sharded(classifier, data, labels, args, tracer)
        else:
            classifier.fit(data, labels)
        model_path = (
            args.model_file
            if args.model_file
            else f"{args.training_file}.model"
        )
        classifier.save(model_path)
        published = None
        if args.publish:
            published = _publish_model(classifier.model_, args)
        if args.report_json:
            with open(args.report_json, "w", encoding="utf-8") as handle:
                handle.write(classifier.training_report_.to_json(indent=2) + "\n")
        if tracer is not None:
            tracer.write_jsonl(args.trace)
    except (ReproError, OSError) as exc:
        print(f"repro-train: error: {exc}", file=sys.stderr)
        return 1

    if not args.quiet:
        report = classifier.training_report_
        model = classifier.model_
        print(f"trained {report.n_binary_svms} binary SVM(s) on "
              f"{data.shape[0]} x {data.shape[1]} instances "
              f"({model.n_classes} classes)")
        print(f"support vectors (shared pool): {model.n_support_total}")
        if args.devices > 1:
            print(f"simulated {report.cluster_name} makespan: "
                  f"{report.simulated_seconds * 1e3:.3f} ms "
                  f"(cluster speedup {report.cluster_speedup:.2f}x)")
            for entry in report.per_device:
                lost = "  LOST" if entry.get("lost") else ""
                print(f"  device {entry['device']}: {entry['n_svms']:3d} SVMs  "
                      f"{entry['simulated_seconds'] * 1e3:8.3f} ms  "
                      f"utilization {entry['utilization']:6.1%}  "
                      f"transfers {entry['transfer_bytes']} B{lost}")
            faults = getattr(report, "faults", None) or {}
            if faults.get("devices_lost"):
                recovery = faults.get("recovery", {})
                print(f"  recovered {recovery.get('recovered_problems', 0)} "
                      f"problem(s) from lost device(s) "
                      f"{faults['devices_lost']} on survivors "
                      f"{recovery.get('survivors', [])} "
                      f"({recovery.get('resumed_from_checkpoint', 0)} "
                      f"resumed from checkpoint)")
        else:
            print(f"simulated {report.device_name} time: "
                  f"{report.simulated_seconds * 1e3:.3f} ms")
        cascade_stats = [
            stats for stats in report.per_svm if stats.get("cascade")
        ]
        if cascade_stats:
            print(f"cascade-routed {len(cascade_stats)} pair(s) "
                  f"across {args.instance_shards} instance shard(s):")
            for stats in cascade_stats:
                info = stats["cascade"]
                met = "met" if info["budget_met"] else "MISSED"
                print(f"  pair {tuple(stats['pair'])}: "
                      f"{info['n_shards']} shard(s), "
                      f"{info['feedback_rounds']} feedback round(s), "
                      f"gap {info['final_gap']:.2e} / "
                      f"budget {info['gap_budget']:.2e} ({met}), "
                      f"SV survival {info['sv_survival']:.1%}")
                for level in info.get("levels", []):
                    kind = level["kind"]
                    if kind == "shard":
                        print(f"    level shard: {level['n_slots']} slot(s)  "
                              f"SVs {level['sv_in']} -> {level['sv_out']} "
                              f"({level['survival']:.1%})")
                    elif kind == "merge":
                        tiers = ", ".join(
                            f"{tier}={nbytes} B" for tier, nbytes in
                            sorted(level.get("tier_bytes", {}).items())
                        )
                        print(f"    level merge: {level['n_merges']} merge(s)  "
                              f"SVs {level['sv_in']} -> {level['sv_out']} "
                              f"({level['survival']:.1%})  {tiers}")
                    elif kind == "feedback":
                        print(f"    level feedback round {level['round']}: "
                              f"{level['n_violators']} violator(s), "
                              f"gap before {level['gap_before']:.2e}")
        print(f"model saved to {model_path}")
        if published is not None:
            lineage = (
                f" (parent v{published.parent})"
                if published.parent is not None
                else ""
            )
            print(f"published to {args.publish} as "
                  f"v{published.version}{lineage}")
        if args.report:
            for category, fraction in sorted(
                report.clock.fraction_breakdown().items()
            ):
                print(f"  {category:18s} {fraction:6.1%}")
    return 0


def _publish_model(model, args: argparse.Namespace):
    """Publish into ``--publish`` DIR, recording lineage when possible.

    Lineage rides content addressing: if the ``--warm-start`` file's
    bytes match a registry artifact, that version is the parent — no
    side channel needed to know where the prior model came from.
    """
    import hashlib
    from pathlib import Path

    from repro.registry import ModelRegistry

    registry = ModelRegistry(args.publish)
    parent = None
    if args.warm_start:
        digest = hashlib.sha256(
            Path(args.warm_start).read_bytes()
        ).hexdigest()
        parent = next(
            (
                v.version
                for v in reversed(registry.versions())
                if v.sha256 == digest
            ),
            None,
        )
    return registry.publish(
        model,
        parent=parent,
        metadata={
            "source": args.training_file,
            "system": args.system,
            "cost": args.cost,
        },
    )


def _predict_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-predict",
        description="Predict with a trained GMP-SVM reproduction model.",
    )
    parser.add_argument("test_file", help="test data, LibSVM format")
    parser.add_argument("model_file", help="model written by repro-train")
    parser.add_argument("output_file", nargs="?", default=None,
                        help="where to write predictions (default: stdout)")
    parser.add_argument("-b", "--probability", type=int, default=0, choices=(0, 1),
                        help="1 = output per-class probabilities")
    parser.add_argument("--backend", default="numpy64",
                        choices=sorted(list_backends()),
                        help="compute backend prediction runs under "
                             "(must match the working dtype the model "
                             "was trained in)")
    parser.add_argument("--report-json", metavar="PATH", default=None,
                        help="write the prediction report as schema-versioned JSON")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a JSONL span trace of the run")
    parser.add_argument("-q", "--quiet", action="store_true")
    return parser


def predict_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-predict``; returns a process exit code."""
    args = _predict_parser().parse_args(argv)
    tracer = Tracer() if args.trace else None
    try:
        model = load_model(args.model_file, backend=args.backend)
        data, labels = load_libsvm(
            args.test_file, n_features=model.sv_pool.pool_data.shape[1]
        )
        config = PredictorConfig(
            device=scaled_tesla_p100(), tracer=tracer, backend=args.backend
        )
        if args.probability:
            probabilities, report = predict_proba_model(config, model, data)
            positions = np.argmax(probabilities, axis=1)
            predictions = model.labels_from_positions(positions)
        else:
            predictions, report = predict_labels_model(
                config, model, data, use_probability=False
            )
            probabilities = None
        if args.report_json:
            with open(args.report_json, "w", encoding="utf-8") as handle:
                handle.write(report.to_json(indent=2) + "\n")
        if tracer is not None:
            tracer.write_jsonl(args.trace)
    except (ReproError, OSError) as exc:
        print(f"repro-predict: error: {exc}", file=sys.stderr)
        return 1

    lines = []
    if probabilities is not None:
        header = "labels " + " ".join(format(c, "g") for c in model.classes)
        lines.append(header)
        for label, row in zip(predictions, probabilities):
            lines.append(
                f"{label:g} " + " ".join(f"{p:.6g}" for p in row)
            )
    else:
        lines.extend(f"{label:g}" for label in predictions)
    text = "\n".join(lines) + "\n"
    if args.output_file:
        with open(args.output_file, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)

    if not args.quiet:
        accuracy = float(np.mean(predictions == labels))
        correct = int(np.sum(predictions == labels))
        # LibSVM's svm-predict output format.
        print(
            f"Accuracy = {accuracy:.4%} ({correct}/{labels.size}) "
            f"(classification)",
            file=sys.stderr,
        )
        print(
            f"simulated prediction time: {report.simulated_seconds * 1e3:.3f} ms",
            file=sys.stderr,
        )
    return 0


def _serve_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve-bench",
        description=(
            "Replay a test file as single-instance requests through the "
            "micro-batching serving layer and report simulated throughput."
        ),
    )
    parser.add_argument("test_file", help="test data, LibSVM format")
    parser.add_argument("model_file", help="model written by repro-train")
    parser.add_argument("-n", "--requests", type=int, default=None,
                        help="number of requests to replay (default: one "
                             "per test row, cycling if larger)")
    parser.add_argument("--kind", default="predict_proba",
                        choices=("predict_proba", "predict",
                                 "decision_function"),
                        help="request kind submitted to the batcher")
    parser.add_argument("--max-batch", type=int, default=64,
                        help="max requests fused per dispatch")
    parser.add_argument("--max-wait", type=float, default=0.0, metavar="S",
                        help="simulated seconds a batch waits for company")
    parser.add_argument("--arrival-gap", type=float, default=0.0, metavar="S",
                        help="simulated seconds between request arrivals")
    parser.add_argument("--tile-cache", type=int, default=0, metavar="N",
                        help="resident test-kernel tile cache entries")
    parser.add_argument("--report-json", metavar="PATH", default=None,
                        help="write the serving metrics as JSON")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a JSONL span trace of the serving run")
    parser.add_argument("-q", "--quiet", action="store_true")
    return parser


def serve_bench_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-serve-bench``; returns a process exit code."""
    import json

    from repro.serving import InferenceSession, MicroBatcher

    args = _serve_bench_parser().parse_args(argv)
    tracer = Tracer() if args.trace else None
    try:
        model = load_model(args.model_file)
        data, _ = load_libsvm(
            args.test_file, n_features=model.sv_pool.pool_data.shape[1]
        )
        n_requests = args.requests if args.requests else data.shape[0]
        if n_requests < 1:
            raise ReproError(f"--requests must be >= 1, got {n_requests}")

        from repro.sparse import ops as mops

        def request_row(i: int):
            position = np.asarray([i % data.shape[0]], dtype=np.int64)
            return mops.take_rows(data, position)

        # Cold baseline: one fresh predictor pipeline per request.
        cold_config = PredictorConfig(device=scaled_tesla_p100())
        cold_s = 0.0
        probe = min(n_requests, 32)
        for i in range(probe):
            row = request_row(i)
            if args.kind == "predict_proba":
                _, report = predict_proba_model(cold_config, model, row)
            else:
                _, report = predict_labels_model(cold_config, model, row)
            cold_s += report.simulated_seconds
        cold_s *= n_requests / probe

        # Warm serving: sealed session + micro-batched dispatch.
        session = InferenceSession(
            model,
            PredictorConfig(device=scaled_tesla_p100(), tracer=tracer),
            tile_cache_entries=args.tile_cache,
        )
        batcher = MicroBatcher(
            session, max_batch=args.max_batch, max_wait_s=args.max_wait
        )
        arrival = 0.0
        for i in range(n_requests):
            batcher.submit(request_row(i), kind=args.kind, arrival_s=arrival)
            arrival += args.arrival_gap
        batcher.drain()
        if tracer is not None:
            tracer.write_jsonl(args.trace)
    except (ReproError, OSError) as exc:
        print(f"repro-serve-bench: error: {exc}", file=sys.stderr)
        return 1

    stats = batcher.stats
    warm_s = session.stats.serve_simulated_s
    metrics = {
        "n_requests": stats.n_requests,
        "n_batches": stats.n_batches,
        "mean_batch_size": stats.mean_batch_size,
        "seal_simulated_s": session.stats.seal_simulated_s,
        "warm_simulated_s": warm_s,
        "cold_simulated_s": cold_s,
        "warm_requests_per_s": n_requests / warm_s if warm_s else 0.0,
        "cold_requests_per_s": n_requests / cold_s if cold_s else 0.0,
        "speedup": cold_s / warm_s if warm_s else 0.0,
        "latency_p50_s": stats.latency_percentile(50.0),
        "latency_p99_s": stats.latency_percentile(99.0),
    }
    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as handle:
            json.dump(metrics, handle, indent=2)
            handle.write("\n")
    if not args.quiet:
        print(f"served {stats.n_requests} requests in {stats.n_batches} "
              f"fused batches (mean {stats.mean_batch_size:.1f} req/batch)")
        print(f"simulated warm serving time: {warm_s * 1e3:.3f} ms "
              f"({metrics['warm_requests_per_s']:.0f} req/s)")
        print(f"simulated cold baseline:     {cold_s * 1e3:.3f} ms "
              f"({metrics['cold_requests_per_s']:.0f} req/s)")
        print(f"warm speedup: {metrics['speedup']:.2f}x")
        print(f"latency p50/p99 (simulated): "
              f"{metrics['latency_p50_s'] * 1e3:.3f} / "
              f"{metrics['latency_p99_s'] * 1e3:.3f} ms")
    return 0


def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Serve a trained model over HTTP with per-tenant admission "
            "control and micro-batched dispatch on the simulated clock."
        ),
    )
    parser.add_argument("model_file", nargs="?", default=None,
                        help="model written by repro-train "
                             "(omit when using --registry)")
    parser.add_argument("--registry", metavar="DIR", default=None,
                        help="serve the latest model published in the "
                             "registry at DIR")
    parser.add_argument("--watch-registry", action="store_true",
                        help="poll the registry between requests and "
                             "hot-swap newer versions in with zero "
                             "downtime (requires --registry)")
    parser.add_argument("--poll-interval", type=float, default=1.0,
                        metavar="S",
                        help="minimum seconds between registry polls")
    parser.add_argument("--backend", default="numpy64",
                        choices=sorted(list_backends()),
                        help="compute backend the session predicts under "
                             "(must match the working dtype the model "
                             "was trained in)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="TCP port (0 = ephemeral)")
    parser.add_argument("--workers", type=int, default=2,
                        help="simulated worker lanes in the dispatcher")
    parser.add_argument("--max-batch", type=int, default=16,
                        help="max requests fused per dispatch")
    parser.add_argument("--rate-per-s", type=float, default=1000.0,
                        help="default tenant token-bucket refill rate "
                             "(requests per simulated second)")
    parser.add_argument("--burst", type=int, default=32,
                        help="default tenant token-bucket capacity")
    parser.add_argument("--max-queue", type=int, default=64,
                        help="default per-tenant queue bound")
    parser.add_argument("--max-queue-global", type=int, default=256,
                        help="global queue bound across all tenants")
    parser.add_argument("--tenant-policy", action="append", default=[],
                        metavar="NAME=RATE,BURST,QUEUE",
                        help="per-tenant override of rate/burst/queue "
                             "(repeatable), e.g. alpha=100,16,8")
    parser.add_argument("--arrival-mode", default="wall",
                        choices=("wall", "virtual"),
                        help="wall: map real inter-arrival gaps onto the "
                             "simulated axis; virtual: X-Arrival-S header")
    parser.add_argument("--max-requests", type=int, default=None,
                        help="stop after serving N requests (smoke tests)")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a JSONL span trace on shutdown")
    parser.add_argument("-q", "--quiet", action="store_true")
    return parser


def _parse_tenant_policies(items: Sequence[str]) -> dict:
    from repro.server import TenantPolicy

    policies = {}
    for item in items:
        name, _, spec = item.partition("=")
        parts = spec.split(",")
        if not name or len(parts) != 3:
            raise ReproError(
                f"bad --tenant-policy {item!r} (want NAME=RATE,BURST,QUEUE)"
            )
        try:
            rate, burst, queue = float(parts[0]), int(parts[1]), int(parts[2])
        except ValueError as exc:
            raise ReproError(f"bad --tenant-policy {item!r}: {exc}")
        policies[name] = TenantPolicy(
            rate_per_s=rate, burst=burst, max_queue=queue
        )
    return policies


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-serve``; returns a process exit code."""
    from repro.server import (
        AdmissionController,
        Dispatcher,
        ServerApp,
        TenantPolicy,
        serve_http,
    )
    from repro.serving import InferenceSession

    args = _serve_parser().parse_args(argv)
    tracer = Tracer() if args.trace else None
    try:
        watcher = None
        if args.watch_registry and not args.registry:
            raise ReproError("--watch-registry requires --registry DIR")
        if args.registry:
            from repro.registry import ModelRegistry, RegistryWatcher

            registry = ModelRegistry(args.registry)
            model, entry = registry.load()
            if args.watch_registry:
                watcher = RegistryWatcher(
                    registry,
                    start_version=entry.version,
                    min_interval_s=args.poll_interval,
                )
        elif args.model_file:
            model = load_model(args.model_file, backend=args.backend)
        else:
            raise ReproError("provide a model file or --registry DIR")
        session = InferenceSession(
            model,
            PredictorConfig(
                device=scaled_tesla_p100(),
                tracer=tracer,
                backend=args.backend,
            ),
        )
        admission = AdmissionController(
            default_policy=TenantPolicy(
                rate_per_s=args.rate_per_s,
                burst=args.burst,
                max_queue=args.max_queue,
            ),
            policies=_parse_tenant_policies(args.tenant_policy),
            max_queue_global=args.max_queue_global,
        )
        dispatcher = Dispatcher(
            session,
            n_workers=args.workers,
            max_batch=args.max_batch,
            admission=admission,
            tracer=tracer,
        )
        app = ServerApp(
            dispatcher, arrival_mode=args.arrival_mode, watcher=watcher
        )

        def ready(host: str, port: int) -> None:
            if not args.quiet:
                print(f"repro-serve: listening on http://{host}:{port} "
                      f"({args.workers} workers, max_batch {args.max_batch})",
                      flush=True)

        served = serve_http(
            app,
            args.host,
            args.port,
            max_requests=args.max_requests,
            ready_callback=ready,
        )
        dispatcher.shutdown(drain=True)
        if tracer is not None:
            tracer.write_jsonl(args.trace)
    except (ReproError, OSError) as exc:
        print(f"repro-serve: error: {exc}", file=sys.stderr)
        return 1
    if not args.quiet:
        stats = dispatcher.stats
        print(f"repro-serve: served {served} HTTP request(s); "
              f"admitted {stats.n_admitted}, shed {stats.n_shed} "
              f"(rate {stats.shed_rate:.1%})")
        if app.n_swaps or app.n_swap_errors:
            print(f"repro-serve: hot-swapped {app.n_swaps} model "
                  f"version(s), {app.n_swap_errors} swap error(s)")
    return 0
