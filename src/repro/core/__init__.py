"""Public estimator API.

- :class:`~repro.core.gmp.GMPSVC` — the paper's contribution: multi-class
  probabilistic SVM trained with the batched solver, concurrent binary
  SVMs, kernel-value sharing and support-vector sharing on the (simulated)
  GPU.
- :class:`~repro.core.svc.SVC` — a binary probabilistic SVM on the same
  machinery.
- :class:`~repro.core.svr.SVR` / :class:`~repro.core.oneclass.OneClassSVM`
  — epsilon regression and novelty detection (ThunderSVM's wider surface)
  on the same batched solver via generalised dual linear terms.
- :mod:`repro.core.trainer` / :mod:`repro.core.predictor` — the
  configurable pipelines the estimators and all baselines share.
"""

from repro.core.gmp import GMPSVC
from repro.core.oneclass import OneClassSVM
from repro.core.svc import SVC
from repro.core.svr import SVR
from repro.core.trainer import TrainerConfig, train_multiclass
from repro.core.predictor import PredictorConfig, predict_proba_model

__all__ = [
    "GMPSVC",
    "OneClassSVM",
    "SVC",
    "SVR",
    "PredictorConfig",
    "TrainerConfig",
    "predict_proba_model",
    "train_multiclass",
]
