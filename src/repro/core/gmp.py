"""GMP-SVC: the paper's GPU-accelerated multi-class probabilistic SVM.

The estimator wires together everything Section 3.3 describes: the batched
working-set solver with a FIFO kernel buffer (binary level), concurrent
binary SVM training with kernel-value sharing (MP-SVM level), Platt
sigmoids with parallel candidate evaluation, and prediction with support-
vector and kernel-value sharing.

Example
-------
>>> from repro import GMPSVC
>>> from repro.data import gaussian_blobs
>>> X, y = gaussian_blobs(n=300, n_features=5, n_classes=3, seed=0)
>>> clf = GMPSVC(C=10.0, gamma=0.5).fit(X, y)
>>> proba = clf.predict_proba(X)
>>> bool(abs(proba[0].sum() - 1.0) < 1e-9)
True
"""

from __future__ import annotations

import inspect
from typing import Optional

import numpy as np

from repro.core.predictor import (
    PredictorConfig,
    decision_matrix,
    predict_labels_model,
    predict_proba_model,
)
from repro.core.trainer import TrainerConfig, train_multiclass
from repro.core.validation import check_fit_inputs, check_predict_inputs, resolve_gamma
from repro.exceptions import NotFittedError, ValidationError
from repro.gpusim.device import DeviceSpec, scaled_tesla_p100
from repro.kernels.functions import KernelFunction, kernel_from_name
from repro.model.persistence import save_model
from repro.sparse import ops as mops

__all__ = ["GMPSVC"]


class GMPSVC:
    """Multi-class probabilistic SVM with simulated-GPU acceleration.

    Parameters mirror the paper's configuration (Section 4.1): ``C`` and
    ``gamma`` per dataset, GPU buffer of ``working_set_size`` kernel rows,
    ``new_per_round`` (the paper's q) defaulting to half the buffer.  The
    default buffer of 48 rows keeps the paper's buffer-to-dataset coverage
    (1024 rows against ~20-70k instances, i.e. a few percent) at the
    registry's scaled-down dataset sizes.

    After :meth:`fit`, the fitted state lives in ``model_`` and the
    simulated-cost accounting in ``training_report_``; each prediction call
    refreshes ``prediction_report_``.
    """

    def __init__(
        self,
        C: float = 1.0,
        kernel: str = "gaussian",
        gamma: Optional[float] = None,
        degree: int = 3,
        coef0: float = 0.0,
        *,
        epsilon: float = 1e-3,
        probability: bool = True,
        probability_cv_folds: int = 0,
        decomposition: str = "ovo",
        class_weight: Optional[dict] = None,
        working_set_size: int = 48,
        new_per_round: Optional[int] = None,
        buffer_rows: Optional[int] = None,
        buffer_policy: str = "fifo",
        inner_rule: str = "adaptive",
        share_kernel_values: bool = True,
        share_support_vectors: bool = True,
        parallel_line_search: bool = True,
        concurrent_svms: bool = True,
        concurrency_mode: str = "interleaved",
        max_concurrent_svms: Optional[int] = None,
        blocks_per_svm: int = 7,
        share_budget_bytes: Optional[int] = None,
        coupling_method: str = "eq15",
        backend: Optional[object] = None,
        cascade: Optional[object] = None,
        device: Optional[DeviceSpec] = None,
        warm_start: bool = False,
    ) -> None:
        self.C = C
        self.kernel = kernel
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0
        self.epsilon = epsilon
        self.probability = probability
        self.probability_cv_folds = probability_cv_folds
        self.decomposition = decomposition
        self.class_weight = class_weight
        self.working_set_size = working_set_size
        self.new_per_round = new_per_round
        self.buffer_rows = buffer_rows
        self.buffer_policy = buffer_policy
        self.inner_rule = inner_rule
        self.share_kernel_values = share_kernel_values
        self.share_support_vectors = share_support_vectors
        self.parallel_line_search = parallel_line_search
        self.concurrent_svms = concurrent_svms
        self.concurrency_mode = concurrency_mode
        self.max_concurrent_svms = max_concurrent_svms
        self.blocks_per_svm = blocks_per_svm
        self.share_budget_bytes = share_budget_bytes
        self.coupling_method = coupling_method
        self.backend = backend
        # A repro.cascade.CascadeConfig routes pairwise problems at or
        # above its threshold through instance-sharded cascade training.
        self.cascade = cascade
        self.device = device if device is not None else scaled_tesla_p100()
        self.warm_start = warm_start

        self.model_ = None
        self.training_report_ = None
        self.prediction_report_ = None
        # Optional repro.telemetry.Tracer; assign one before fit/predict to
        # record hierarchical spans of the run (``repro-train --trace``).
        # Plain attribute (not a constructor parameter) so every baseline
        # subclass inherits it without signature changes.
        self.tracer = None

    # ------------------------------------------------------------------
    # Configuration plumbing
    # ------------------------------------------------------------------
    @classmethod
    def _param_names(cls) -> list[str]:
        """Constructor parameter names, in declaration order.

        Read off the class's own ``__init__`` signature so estimator
        subclasses (the baselines) inherit working ``get_params`` /
        ``set_params`` without repeating their parameter lists.
        """
        return [
            name
            for name in inspect.signature(cls.__init__).parameters
            if name != "self"
        ]

    def get_params(self, deep: bool = True) -> dict:
        """Constructor parameters and their current values (sklearn API).

        The returned mapping round-trips: ``type(est)(**est.get_params())``
        builds an estimator that trains identically.  ``deep`` is accepted
        for sklearn compatibility; there are no nested estimators.
        """
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params: object) -> "GMPSVC":
        """Update constructor parameters in place (sklearn API).

        Unknown names raise :class:`~repro.exceptions.ValidationError`
        (a ``ValueError``) naming the offending key.  Returns self.
        """
        valid = self._param_names()
        for key in params:
            if key not in valid:
                raise ValidationError(
                    f"invalid parameter {key!r} for estimator "
                    f"{type(self).__name__}; valid parameters: "
                    f"{', '.join(valid)}"
                )
        for key, value in params.items():
            setattr(self, key, value)
        return self

    def _build_kernel(self, n_features: int) -> KernelFunction:
        name = self.kernel.lower()
        if name in ("gaussian", "rbf"):
            return kernel_from_name(name, gamma=resolve_gamma(self.gamma, n_features))
        if name in ("polynomial", "poly"):
            return kernel_from_name(
                name,
                degree=self.degree,
                gamma=resolve_gamma(self.gamma, n_features),
                coef0=self.coef0,
            )
        if name == "sigmoid":
            return kernel_from_name(
                name, gamma=resolve_gamma(self.gamma, n_features), coef0=self.coef0
            )
        return kernel_from_name(name)

    def _trainer_config(self) -> TrainerConfig:
        return TrainerConfig(
            device=self.device,
            solver="batched",
            concurrent=self.concurrent_svms,
            concurrency_mode=self.concurrency_mode,
            share_kernel_values=self.share_kernel_values,
            share_budget_bytes=self.share_budget_bytes,
            parallel_line_search=self.parallel_line_search,
            probability=self.probability,
            probability_cv_folds=self.probability_cv_folds,
            decomposition=self.decomposition,
            class_weight=self.class_weight,
            epsilon=self.epsilon,
            working_set_size=self.working_set_size,
            new_per_round=self.new_per_round,
            buffer_rows=self.buffer_rows,
            buffer_policy=self.buffer_policy,
            inner_rule=self.inner_rule,
            blocks_per_svm=self.blocks_per_svm,
            max_concurrent_svms=self.max_concurrent_svms,
            backend=self.backend,
            cascade=self.cascade,
        )

    def _predictor_config(self) -> PredictorConfig:
        return PredictorConfig(
            device=self.device,
            sv_sharing=self.share_support_vectors,
            coupling_method=self.coupling_method,
            backend=self.backend,
        )

    # ------------------------------------------------------------------
    # Estimator API
    # ------------------------------------------------------------------
    def fit(self, X: object, y: object) -> "GMPSVC":
        """Train on ``(X, y)``; X may be dense or a CSRMatrix.

        With ``warm_start=True`` and a previous fit on hand, the solvers
        are seeded from ``model_`` (sklearn's ``warm_start`` semantics);
        the incremental contract is documented on
        :func:`~repro.core.trainer.train_multiclass`.
        """
        data, labels = check_fit_inputs(X, y)
        kernel = self._build_kernel(mops.n_cols(data))
        config = self._trainer_config()
        config.tracer = self.tracer
        prior = self.model_ if self.warm_start else None
        self.model_, self.training_report_ = train_multiclass(
            config, data, labels, kernel, float(self.C), warm_start=prior
        )
        self.n_features_in_ = mops.n_cols(data)
        self.classes_ = self.model_.classes
        return self

    def _require_fitted(self):
        if self.model_ is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted yet")
        return self.model_

    def predict(self, X: object) -> np.ndarray:
        """Predicted class labels (argmax probability when available)."""
        model = self._require_fitted()
        data = check_predict_inputs(X, self.n_features_in_)
        config = self._predictor_config()
        config.tracer = self.tracer
        labels, self.prediction_report_ = predict_labels_model(
            config, model, data
        )
        return labels

    def predict_proba(self, X: object) -> np.ndarray:
        """Multi-class probabilities, shape ``(m, n_classes)``."""
        model = self._require_fitted()
        data = check_predict_inputs(X, self.n_features_in_)
        config = self._predictor_config()
        config.tracer = self.tracer
        probabilities, self.prediction_report_ = predict_proba_model(
            config, model, data
        )
        return probabilities

    def decision_function(self, X: object) -> np.ndarray:
        """Raw pairwise decision values, shape ``(m, k(k-1)/2)``."""
        model = self._require_fitted()
        data = check_predict_inputs(X, self.n_features_in_)
        engine = self._predictor_config().make_engine()
        return decision_matrix(
            engine, model, data, sv_sharing=self.share_support_vectors
        )

    def score(self, X: object, y: object) -> float:
        """Mean accuracy on ``(X, y)``."""
        predictions = self.predict(X)
        return float(np.mean(predictions == np.asarray(y).ravel()))

    def save(self, path: object) -> None:
        """Persist the fitted model (see :mod:`repro.model.persistence`)."""
        save_model(self._require_fitted(), path)
