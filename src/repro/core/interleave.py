"""Execution-level MP-SVM concurrency: the interleaved wave driver.

The sequential trainer realises Section 3.3.2 *post hoc*: it solves the
k(k-1)/2 binary SVMs one after another, records each solver's serial clock,
and lets :class:`~repro.gpusim.scheduler.ConcurrentScheduler` repack those
clocks into hypothetical waves.  This module replaces the hypothesis with
execution: it steps every admitted solver's resumable session
(:class:`~repro.solvers.batch_smo.BatchSMOSession`) in lockstep waves, so
the simulated timeline is read off the work that actually ran concurrently.

Per wave the driver

1. admits pending solvers into the running set under the same
   :class:`~repro.gpusim.scheduler.WaveLimits` (SM blocks, device memory,
   optional concurrency cap) the post-hoc packer uses;
2. calls ``begin_round`` on every running session, collecting each one's
   working-set refresh and the kernel rows it is missing;
3. fuses the missing-row demand of all members into one batched launch
   through :meth:`~repro.kernels.shared.SharedClassPairKernels.prefetch`,
   so segments one SVM computes are reused by the others *while hot*;
4. calls ``complete_round`` on every member (the rows now hit the share),
   then folds the members' per-round clock deltas into the wave's
   concurrent makespan ``max(max_i(latency_i + compute_i), sum_i
   compute_i)`` — the same overlap law the post-hoc model uses, now
   applied to measured rounds instead of whole repacked solvers.

Sessions that terminate release their SM/memory footprint, and the next
pending solver is admitted at the following wave boundary.  The driver's
:class:`InterleaveOutcome` carries the resulting timeline, the per-wave
trace (the source of the reported ``max_concurrency`` and
``concurrency_speedup``), and each problem's
:class:`~repro.solvers.base.SolverResult`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.gpusim.clock import SimClock
from repro.gpusim.engine import Engine
from repro.gpusim.scheduler import WaveLimits
from repro.kernels.shared import SharedClassPairKernels
from repro.solvers.base import SolverResult
from repro.solvers.batch_smo import BatchSMOSession
from repro.telemetry.tracer import Tracer, maybe_span

__all__ = ["PairMember", "InterleaveOutcome", "run_interleaved"]


@dataclass(eq=False)
class PairMember:
    """One pairwise binary SVM participating in the interleaved schedule."""

    index: int  # position in the trainer's problem order
    problem: object  # PairProblem: s, t, n, labels, global_indices
    engine: Engine  # the member's own clock; counters shared with master
    session: BatchSMOSession
    mem_bytes: int  # resident footprint (solver state + kernel buffer)
    blocks: int  # SM blocks this SVM occupies
    result: Optional[SolverResult] = None
    warm_started: bool = False  # session seeded from a prior model's alphas

    @property
    def name(self) -> str:
        """Stable display name, ``svm_<s>_<t>``, used in traces and spans."""
        return f"svm_{self.problem.s}_{self.problem.t}"


@dataclass
class InterleaveOutcome:
    """What the wave driver measured while executing the schedule."""

    timeline: SimClock  # concurrent member time (master charges excluded)
    wave_trace: list[dict] = field(default_factory=list)
    max_concurrency: int = 1
    concurrency_speedup: float = 1.0
    serial_seconds: float = 0.0
    concurrent_seconds: float = 0.0


def run_interleaved(
    members: Sequence[PairMember],
    limits: WaveLimits,
    *,
    shared: Optional[SharedClassPairKernels] = None,
    tracer: Optional[Tracer] = None,
    span_clock: Optional[SimClock] = None,
    on_wave: Optional[
        Callable[[int, Sequence[PairMember], Sequence[PairMember], InterleaveOutcome], None]
    ] = None,
) -> InterleaveOutcome:
    """Drive every member to convergence in lockstep concurrent waves.

    Populates each member's ``result`` (in whatever order sessions
    terminate — callers finalize in problem order so model assembly is
    schedule-independent) and returns the measured
    :class:`InterleaveOutcome`.  ``span_clock`` gives the per-wave
    telemetry spans their simulated-time axis (the trainer passes the
    master clock).

    ``on_wave(wave_index, running, finished, outcome)`` is called after
    each wave's accounting, with the still-running members (post
    removal), the members that finished this wave, and the in-progress
    outcome.  The fault-injection layer uses it to take checkpoints and
    to abort the drive at a scripted device loss (by raising); the hook
    must not mutate the members, and an exception it raises propagates
    with sessions left at the just-completed round boundary.
    """
    for member in members:
        limits.validate_task(
            member.name, blocks=member.blocks, mem_bytes=member.mem_bytes
        )
    pending = deque(members)
    running: list[PairMember] = []
    timeline = SimClock()
    outcome = InterleaveOutcome(timeline=timeline)
    master_clock = (
        shared.computer.engine.clock if shared is not None else None
    )
    wave_index = 0

    while pending or running:
        # Admission: fill freed SM/memory capacity at the wave boundary.
        while pending and limits.admits(
            count=len(running),
            blocks=sum(m.blocks for m in running),
            mem_bytes=sum(m.mem_bytes for m in running),
            task_blocks=pending[0].blocks,
            task_mem_bytes=pending[0].mem_bytes,
        ):
            running.append(pending.popleft())
        wave_index += 1
        outcome.max_concurrency = max(outcome.max_concurrency, len(running))

        with maybe_span(
            tracer,
            "interleave.wave",
            clock=span_clock,
            wave=wave_index,
            members=[m.name for m in running],
        ) as wave_span:
            snapshots = [m.engine.clock.copy() for m in running]

            # Selection half: every member refreshes its working set.
            requests = []
            finished: list[PairMember] = []
            for member in running:
                request = member.session.begin_round()
                if request is None:
                    member.result = member.session.finish()
                    finished.append(member)
                elif shared is not None and request.missing.size:
                    requests.append(
                        (
                            member.problem.global_indices[request.missing],
                            member.problem.s,
                            member.problem.t,
                        )
                    )

            # Fused launch: the wave's whole missing-row demand at once.
            prefetch_segments = 0
            prefetch_seconds = 0.0
            if requests and shared is not None:
                before = master_clock.copy()
                prefetch_segments = shared.prefetch(requests)
                prefetch_seconds = master_clock.since(before).elapsed_s

            # Consumption half: subproblem solves + Eq.-8 updates.
            for member in running:
                if member not in finished:
                    member.session.complete_round()

            # Concurrent wave accounting from the measured round deltas.
            deltas = [
                m.engine.clock.since(snap)
                for m, snap in zip(running, snapshots)
            ]
            serial_s = sum(d.elapsed_s for d in deltas)
            longest_chain = max((d.elapsed_s for d in deltas), default=0.0)
            total_compute = sum(d.compute_s for d in deltas)
            span_s = max(longest_chain, total_compute)
            if serial_s > 0:
                for delta in deltas:
                    timeline.merge_scaled(delta, span_s / serial_s)
            outcome.serial_seconds += serial_s
            outcome.concurrent_seconds += span_s

            outcome.wave_trace.append(
                {
                    "wave": wave_index,
                    "members": [m.name for m in running],
                    "n_members": len(running),
                    "finished": [m.name for m in finished],
                    "blocks": int(sum(m.blocks for m in running)),
                    "mem_bytes": int(sum(m.mem_bytes for m in running)),
                    "prefetch_segments": int(prefetch_segments),
                    "prefetch_seconds": float(prefetch_seconds),
                    "serial_seconds": float(serial_s),
                    "concurrent_seconds": float(span_s),
                }
            )
            wave_span.set(
                n_members=len(running),
                finished=len(finished),
                prefetch_segments=prefetch_segments,
                serial_seconds=serial_s,
                concurrent_seconds=span_s,
            )

        for member in finished:
            running.remove(member)
        if on_wave is not None:
            on_wave(wave_index, running, finished, outcome)

    if outcome.concurrent_seconds > 0:
        outcome.concurrency_speedup = (
            outcome.serial_seconds / outcome.concurrent_seconds
        )
    return outcome
