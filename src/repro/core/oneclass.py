"""One-class SVM (novelty detection) on the GMP machinery.

ThunderSVM — the project this paper's system ships in — exposes one-class
SVMs alongside classification and regression; this module completes that
surface.  Schoelkopf's one-class dual is

    min 0.5 alpha^T Q alpha,   0 <= alpha_i <= 1,   sum(alpha) = nu * n,

which is the classification dual with all labels +1, no linear term
(``f = 0`` at the initial point up to the kernel contribution of the
seeded weights) and a feasible warm start: LibSVM initialises the first
``floor(nu n)`` weights to 1 and the fractional remainder to the next one.
The solver's equality constraint ``sum(y alpha) = const`` preserves
``sum(alpha) = nu n`` exactly.  Decision: ``g(x) = sum alpha_i K(x_i, x) +
b`` with inliers at ``g >= 0``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.validation import check_predict_inputs, resolve_gamma
from repro.exceptions import NotFittedError, ValidationError
from repro.gpusim.device import DeviceSpec, scaled_tesla_p100
from repro.gpusim.engine import FLOAT_BYTES, make_engine
from repro.kernels.functions import KernelFunction, kernel_from_name
from repro.kernels.rows import KernelRowComputer
from repro.perf.report import PredictionReport, TrainingReport
from repro.solvers.batch_smo import BatchSMOSolver
from repro.sparse import ops as mops

__all__ = ["OneClassSVM"]


class OneClassSVM:
    """Unsupervised boundary estimation: learn the support of the data.

    ``nu`` bounds both the fraction of training instances treated as
    outliers and the fraction of support vectors (Schoelkopf's
    nu-property).
    """

    def __init__(
        self,
        nu: float = 0.5,
        kernel: str = "gaussian",
        gamma: Optional[float] = None,
        degree: int = 3,
        coef0: float = 0.0,
        *,
        epsilon: float = 1e-3,
        working_set_size: int = 48,
        device: Optional[DeviceSpec] = None,
    ) -> None:
        if not 0.0 < nu <= 1.0:
            raise ValidationError(f"nu must lie in (0, 1], got {nu}")
        self.nu = float(nu)
        self.kernel = kernel
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0
        self.epsilon = epsilon
        self.working_set_size = working_set_size
        self.device = device if device is not None else scaled_tesla_p100()

        self.model_kernel_: Optional[KernelFunction] = None
        self.support_vectors_ = None
        self.dual_coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[float] = None
        self.training_report_: Optional[TrainingReport] = None
        self.prediction_report_: Optional[PredictionReport] = None

    def _build_kernel(self, n_features: int) -> KernelFunction:
        """Kernel function with gamma resolved against the feature count."""
        name = self.kernel.lower()
        if name == "linear":
            return kernel_from_name(name)
        params: dict = {"gamma": resolve_gamma(self.gamma, n_features)}
        if name in ("polynomial", "poly"):
            params.update(degree=self.degree, coef0=self.coef0)
        elif name == "sigmoid":
            params.update(coef0=self.coef0)
        return kernel_from_name(name, **params)

    # ------------------------------------------------------------------
    def fit(self, X: object) -> "OneClassSVM":
        """Estimate the support of the (unlabelled) training data."""
        data = mops.as_supported_matrix(X)
        n = mops.n_rows(data)
        if self.nu * n < 1.0:
            raise ValidationError(
                f"nu * n = {self.nu * n:.2f} < 1: too few instances for nu={self.nu}"
            )
        kernel = self._build_kernel(mops.n_cols(data))
        engine = make_engine(self.device)
        engine.transfer(mops.matrix_nbytes(data), category="transfer")
        rows = KernelRowComputer(engine, kernel, data)

        # LibSVM's feasible warm start for sum(alpha) = nu * n.
        budget = self.nu * n
        whole = int(np.floor(budget))
        initial_alpha = np.zeros(n)
        initial_alpha[:whole] = 1.0
        if whole < n:
            initial_alpha[whole] = budget - whole
        seeded = np.flatnonzero(initial_alpha > 0)

        # f_i = sum_j alpha_j K_ij (labels +1, no linear term): one batched
        # kernel computation over the seeded instances.
        seed_rows = rows.rows(seeded)
        initial_f = initial_alpha[seeded] @ seed_rows
        engine.charge(
            "f_update",
            flops=2 * seeded.size * n,
            bytes_read=seeded.size * n * FLOAT_BYTES,
            bytes_written=n * FLOAT_BYTES,
            launches=1,
        )

        solver = BatchSMOSolver(
            penalty=1.0,
            epsilon=self.epsilon,
            working_set_size=self.working_set_size,
            register_buffer_memory=False,
        )
        result = solver.solve(
            rows,
            np.ones(n),
            initial_f=initial_f,
            initial_alpha=initial_alpha,
            allow_single_class=True,
        )

        support = result.support_indices
        self.model_kernel_ = kernel
        self.support_ = support
        self.support_vectors_ = mops.take_rows(data, support)
        self.dual_coef_ = result.alpha[support]
        self.intercept_ = result.bias
        self.n_features_in_ = mops.n_cols(data)
        self.training_report_ = TrainingReport(
            simulated_seconds=engine.clock.elapsed_s,
            clock=engine.clock,
            counters=engine.counters,
            device_name=self.device.name,
            n_binary_svms=1,
            total_iterations=result.iterations,
            kernel_rows_computed=result.kernel_rows_computed,
        )
        return self

    def _require_fitted(self) -> None:
        if self.dual_coef_ is None:
            raise NotFittedError("OneClassSVM is not fitted yet")

    def decision_function(self, X: object) -> np.ndarray:
        """Signed distance to the learned boundary (inliers positive)."""
        self._require_fitted()
        data = check_predict_inputs(X, self.n_features_in_)
        engine = make_engine(self.device)
        engine.transfer(mops.matrix_nbytes(data), category="transfer")
        computer = KernelRowComputer(
            engine, self.model_kernel_, self.support_vectors_,
            category="decision_values",
        )
        block = computer.block(data, category="decision_values")
        values = block @ self.dual_coef_ + self.intercept_
        engine.charge(
            "decision_values",
            flops=2 * block.size,
            bytes_read=block.size * FLOAT_BYTES,
            bytes_written=values.size * FLOAT_BYTES,
            launches=1,
        )
        self.prediction_report_ = PredictionReport(
            simulated_seconds=engine.clock.elapsed_s,
            clock=engine.clock,
            counters=engine.counters,
            device_name=self.device.name,
            n_instances=mops.n_rows(data),
        )
        return values

    def predict(self, X: object) -> np.ndarray:
        """+1 for inliers, -1 for outliers."""
        return np.where(self.decision_function(X) >= 0, 1, -1)
