"""The configurable prediction pipeline (Sections 3.2 Phase (iii) / 3.3.3).

Prediction runs in three stages, matching Figure 2 and the Figure 12
breakdown:

1. **decision values** — kernel blocks between the test batch and support
   vectors, then per-SVM weighted sums (Eq. 11).  With ``sv_sharing`` the
   test-vs-pool block is computed once and sliced per SVM (GMP-SVM);
   without it each binary SVM recomputes its own block (the GPU baseline's
   "one binary SVM at a time").
2. **sigmoid** — each pair's local probability via Eq. 12.
3. **coupling** — Wu-Lin-Weng multi-class probabilities via Eq. 15.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.validation import strict_config
from repro.exceptions import NotFittedError, ValidationError
from repro.gpusim.device import DeviceSpec
from repro.gpusim.engine import Engine, make_engine
from repro.kernels.rows import KernelRowComputer
from repro.model.multiclass import MPSVMModel
from repro.multiclass.ova import ova_positions
from repro.multiclass.voting import ovo_vote
from repro.perf.report import PredictionReport
from repro.probability.pairwise import couple_batch
from repro.probability.platt import sigmoid_predict
from repro.sparse import ops as mops
from repro.telemetry.tracer import Tracer, maybe_span

__all__ = [
    "PredictorConfig",
    "decision_matrix",
    "probabilities_from_decisions",
    "predict_proba_model",
    "predict_labels_model",
]


@strict_config
@dataclass
class PredictorConfig:
    """Prediction-side knobs distinguishing the paper's systems."""

    device: DeviceSpec
    flop_efficiency: Optional[float] = None
    bandwidth_efficiency: float = 1.0
    sv_sharing: bool = True  # Section 3.3.3
    coupling_method: str = "eq15"
    # None = derive from device memory: the test-vs-SV kernel block must
    # fit alongside everything else ("if n x k(k-1)/2 is larger than the
    # maximum number of blocks that the GPU can support, we divide the
    # blocks into a few groups and launch one group of blocks at a time").
    batch_size: Optional[int] = None
    # Optional hierarchical span tracer; off (None) by default, in which
    # case prediction does no telemetry bookkeeping.
    tracer: Optional[Tracer] = None
    # Compute backend: None (the float64 reference), a backend name, a
    # repro.backends.BackendSpec or a ComputeBackend instance.
    backend: Optional[object] = None

    def __post_init__(self) -> None:
        if self.backend is not None:
            from repro.backends import resolve_backend

            resolve_backend(self.backend)

    def make_engine(self) -> Engine:
        """Engine bound to this configuration's device and efficiencies."""
        return make_engine(
            self.device,
            flop_efficiency=self.flop_efficiency,
            bandwidth_efficiency=self.bandwidth_efficiency,
            backend=self.backend,
        )


def decision_matrix(
    engine: Engine,
    model: MPSVMModel,
    test_data: mops.MatrixLike,
    *,
    sv_sharing: bool = True,
    computer: Optional[KernelRowComputer] = None,
) -> np.ndarray:
    """Decision values of each test instance under each binary SVM.

    ``computer`` optionally supplies a prebuilt pool-side kernel-row
    computer (a sealed serving session's warm state); it must be bound to
    ``engine`` and to the model's pool data.
    """
    return model.sv_pool.decision_values(
        engine,
        model.kernel,
        test_data,
        shared=sv_sharing,
        category="decision_values",
        computer=computer,
    )


def probabilities_from_decisions(
    engine: Engine,
    model: MPSVMModel,
    decisions: np.ndarray,
    *,
    coupling_method: str = "eq15",
) -> np.ndarray:
    """Multi-class probabilities from a decision-value batch.

    This is the numeric tail every probability path shares — the one-shot
    :func:`predict_proba_model` and the sealed serving session both call
    it, which is what keeps their outputs bitwise identical: pair sigmoids
    in one broadcast pass, then Wu-Lin-Weng coupling (or the OvA
    renormalisation) over the whole batch.
    """
    if model.strategy == "ova":
        return _ova_probabilities(engine, model, decisions)
    r_batch = _pairwise_estimates(engine, model, decisions)
    return couple_batch(engine, r_batch, method=coupling_method)


def predict_proba_model(
    config: PredictorConfig,
    model: MPSVMModel,
    test_data: mops.MatrixLike,
) -> tuple[np.ndarray, PredictionReport]:
    """Multi-class probabilities, shape ``(m, n_classes)``; rows sum to 1."""
    if not model.probability:
        raise NotFittedError(
            "model was trained without probability output; refit with "
            "probability=True"
        )
    engine = config.make_engine()
    engine.transfer(mops.matrix_nbytes(test_data), category="transfer")
    m = mops.n_rows(test_data)
    k = model.n_classes
    probabilities = np.empty((m, k))

    batch = _resolve_batch(config, model, m)
    with maybe_span(
        config.tracer,
        "predict_proba",
        clock=engine.clock,
        n_instances=m,
        batch_size=batch,
        sv_sharing=config.sv_sharing,
    ) as predict_span:
        for start in range(0, m, batch):
            stop = min(start + batch, m)
            chunk = _slice_rows(test_data, start, stop)
            with maybe_span(
                config.tracer,
                "predict_batch",
                clock=engine.clock,
                start=start,
                stop=stop,
            ):
                decisions = decision_matrix(
                    engine, model, chunk, sv_sharing=config.sv_sharing
                )
                probabilities[start:stop] = probabilities_from_decisions(
                    engine,
                    model,
                    decisions,
                    coupling_method=config.coupling_method,
                )
        predict_span.set(simulated_seconds=engine.clock.elapsed_s)

    report = PredictionReport(
        simulated_seconds=engine.clock.elapsed_s,
        clock=engine.clock,
        counters=engine.counters,
        device_name=config.device.name,
        n_instances=m,
        sv_sharing=config.sv_sharing,
    )
    return probabilities, report


def predict_labels_model(
    config: PredictorConfig,
    model: MPSVMModel,
    test_data: mops.MatrixLike,
    *,
    use_probability: Optional[bool] = None,
) -> tuple[np.ndarray, PredictionReport]:
    """Predicted class labels.

    Probabilistic models predict ``argmax`` of the coupled probabilities
    (LibSVM's ``-b 1`` behaviour); non-probabilistic models use pairwise
    voting.
    """
    decide_by_probability = (
        model.probability if use_probability is None else use_probability
    )
    if decide_by_probability:
        probabilities, report = predict_proba_model(config, model, test_data)
        positions = np.argmax(probabilities, axis=1)
        return model.labels_from_positions(positions), report

    engine = config.make_engine()
    engine.transfer(mops.matrix_nbytes(test_data), category="transfer")
    with maybe_span(
        config.tracer,
        "predict_labels",
        clock=engine.clock,
        n_instances=mops.n_rows(test_data),
        sv_sharing=config.sv_sharing,
    ) as predict_span:
        decisions = decision_matrix(
            engine, model, test_data, sv_sharing=config.sv_sharing
        )
        if model.strategy == "ova":
            positions = ova_positions(decisions)
        else:
            positions = ovo_vote(decisions, model.pairs, model.n_classes)
        predict_span.set(simulated_seconds=engine.clock.elapsed_s)
    report = PredictionReport(
        simulated_seconds=engine.clock.elapsed_s,
        clock=engine.clock,
        counters=engine.counters,
        device_name=config.device.name,
        n_instances=mops.n_rows(test_data),
        sv_sharing=config.sv_sharing,
    )
    return model.labels_from_positions(positions), report


def batch_budget_rows(config: PredictorConfig, model: MPSVMModel) -> int:
    """Device-memory bound on the test-batch row count (m-independent).

    The dominant resident structure is the test-vs-pool kernel block
    (``batch x n_pool`` float64); it is held to a quarter of device memory,
    mirroring the paper's group-at-a-time launching.  A sealed serving
    session resolves this once; the one-shot path re-derives it per call.
    """
    if config.batch_size is not None:
        if config.batch_size <= 0:
            raise ValidationError(
                f"batch_size must be a positive integer or None (derive from "
                f"device memory), got {config.batch_size}"
            )
        return config.batch_size
    block_budget = config.device.global_mem_bytes // 4
    per_row = max(model.sv_pool.n_pool * 8, 1)
    return max(1, block_budget // per_row)


def _resolve_batch(config: PredictorConfig, model: MPSVMModel, m: int) -> int:
    """Test-batch size for an ``m``-instance request (see batch_budget_rows)."""
    budget = batch_budget_rows(config, model)
    return max(1, min(m, budget)) if config.batch_size is None else budget


def _pairwise_estimates(
    engine: Engine, model: MPSVMModel, decisions: np.ndarray
) -> np.ndarray:
    """Local probabilities r[s, t] per instance, shape ``(m, k, k)``.

    All k(k-1)/2 pair sigmoids are applied in one broadcast pass over the
    decision matrix using the model's stacked (A, B) arrays — one launch
    for the whole batch instead of one per pair (Phase (iii)(2) of the
    paper runs these concurrently).  Elementwise math is identical to the
    per-column loop it replaces.
    """
    m = decisions.shape[0]
    k = model.n_classes
    a, b = model.sigmoid_params()
    s_pos, t_pos = model.pair_positions()
    engine.elementwise("sigmoid", m * a.size, flops_per_element=6, arrays_read=1)
    p = sigmoid_predict(decisions, a, b)
    r = np.full((m, k, k), 0.5)
    r[:, s_pos, t_pos] = p
    r[:, t_pos, s_pos] = 1.0 - p
    return r


def _ova_probabilities(
    engine: Engine, model: MPSVMModel, decisions: np.ndarray
) -> np.ndarray:
    """Normalised per-class sigmoid estimates (the OvA heuristic).

    One-vs-all has no pairwise coupling problem; each class's sigmoid
    gives an independent P(class | x), renormalised onto the simplex in a
    single broadcast pass.  Rows whose sigmoids all underflow to zero
    carry no information, so they fall back to the uniform distribution
    instead of a zero vector.
    """
    m, k = decisions.shape
    a, b = model.sigmoid_params()
    class_pos, _ = model.pair_positions()
    engine.elementwise("sigmoid", m * k, flops_per_element=6, arrays_read=1)
    raw = np.empty((m, k))
    raw[:, class_pos] = sigmoid_predict(decisions, a, b)
    engine.elementwise("coupling", m * k, flops_per_element=2, arrays_read=1)
    totals = raw.sum(axis=1, keepdims=True)
    degenerate = totals[:, 0] == 0
    totals[degenerate] = 1.0
    probabilities = raw / totals
    probabilities[degenerate] = 1.0 / k
    return probabilities


def _slice_rows(data: mops.MatrixLike, start: int, stop: int) -> mops.MatrixLike:
    if start == 0 and stop == mops.n_rows(data):
        return data
    return mops.take_rows(data, np.arange(start, stop, dtype=np.int64))
