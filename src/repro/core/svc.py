"""Binary probabilistic SVM on the GMP machinery.

A two-class problem is the degenerate case of the pairwise decomposition
(one pair).  :class:`SVC` exposes binary-friendly accessors on top of
:class:`~repro.core.gmp.GMPSVC`: a 1-D decision function, the intercept,
and the dual coefficients — matching how the paper uses the four binary
datasets (Adult, RCV1, Real-sim, Webdata) to study the binary-level
techniques.
"""

from __future__ import annotations

import numpy as np

from repro.core.gmp import GMPSVC
from repro.exceptions import ValidationError

__all__ = ["SVC"]


class SVC(GMPSVC):
    """Binary (optionally probabilistic) SVM classifier."""

    def fit(self, X: object, y: object) -> "SVC":
        labels = np.unique(np.asarray(y).ravel())
        if labels.size != 2:
            raise ValidationError(
                f"SVC is binary-only; found {labels.size} classes "
                f"(use GMPSVC for multi-class problems)"
            )
        super().fit(X, y)
        return self

    @property
    def intercept_(self) -> float:
        """Bias of the separating hyperplane."""
        return self._require_fitted().records[0].bias

    @property
    def dual_coef_(self) -> np.ndarray:
        """Signed support-vector weights (alpha_i * y_i)."""
        return self._require_fitted().records[0].coefficients

    @property
    def support_(self) -> np.ndarray:
        """Indices of the support vectors in the training set."""
        return self._require_fitted().records[0].global_sv_indices

    @property
    def n_support_(self) -> int:
        """Number of support vectors."""
        return self._require_fitted().records[0].n_support

    def decision_function(self, X: object) -> np.ndarray:
        """1-D decision values (positive predicts the first class)."""
        return super().decision_function(X)[:, 0]
