"""Epsilon support-vector regression on the GMP machinery.

The paper's lineage extends to regression ("A recent study extended their
algorithm for SVM regression problems", Section 5), and ThunderSVM — the
open-source project this paper's system ships in — exposes SVR alongside
classification.  This module provides that surface on the same batched
solver.

Mechanics: the epsilon-SVR dual over ``(alpha, alpha*)`` is exactly a
2n-variable instance of the classification dual with extended labels
``y_ext = [+1]*n + [-1]*n``, kernel ``K_ext[i, j] = K(i mod n, j mod n)``,
and linear term ``p = [eps - y, eps + y]`` — i.e. initial indicators
``f = y_ext * p`` (LibSVM structures its SVR solver identically).  The
regression function is ``g(x) = sum_i beta_i K(x_i, x) + b`` with
``beta = alpha - alpha*``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.validation import check_predict_inputs, resolve_gamma
from repro.exceptions import NotFittedError, ValidationError
from repro.gpusim.device import DeviceSpec, scaled_tesla_p100
from repro.gpusim.engine import FLOAT_BYTES, make_engine
from repro.kernels.functions import KernelFunction, kernel_from_name
from repro.kernels.rows import KernelRowComputer
from repro.perf.report import PredictionReport, TrainingReport
from repro.solvers.batch_smo import BatchSMOSolver
from repro.sparse import ops as mops

__all__ = ["SVR"]


class _ExtendedRows:
    """Kernel rows of the 2n-variable SVR problem.

    ``K_ext`` is the base kernel matrix tiled 2x2; a row of the extended
    matrix is the corresponding base row repeated.  Only the base row is
    charged — a real implementation (LibSVM's ``SVR_Q``) likewise computes
    each base row once and serves both halves from it.
    """

    def __init__(self, base: KernelRowComputer) -> None:
        self.engine = base.engine
        self._base = base

    @property
    def n(self) -> int:
        """Extended problem size (2n)."""
        return 2 * self._base.n

    @property
    def row_nbytes(self) -> int:
        """Device bytes of one extended row."""
        return self.n * FLOAT_BYTES

    def diagonal(self) -> np.ndarray:
        """Extended diagonal: the base diagonal twice."""
        return np.tile(self._base.diagonal(), 2)

    def rows(self, indices: object, *, category: Optional[str] = None) -> np.ndarray:
        """Extended kernel rows for the given extended indices."""
        idx = np.asarray(indices, dtype=np.int64) % self._base.n
        unique, inverse = np.unique(idx, return_inverse=True)
        base_rows = self._base.rows(unique, category=category)
        return np.tile(base_rows[inverse], (1, 2))


class SVR:
    """Epsilon support-vector regression with the batched GPU solver.

    ``epsilon_tube`` is the insensitive-loss half width (LibSVM's ``-p``);
    ``epsilon`` remains the KKT tolerance, as in the classifiers.
    """

    def __init__(
        self,
        C: float = 1.0,
        epsilon_tube: float = 0.1,
        kernel: str = "gaussian",
        gamma: Optional[float] = None,
        degree: int = 3,
        coef0: float = 0.0,
        *,
        epsilon: float = 1e-3,
        working_set_size: int = 48,
        device: Optional[DeviceSpec] = None,
    ) -> None:
        if epsilon_tube < 0:
            raise ValidationError(f"epsilon_tube must be >= 0, got {epsilon_tube}")
        self.C = C
        self.epsilon_tube = float(epsilon_tube)
        self.kernel = kernel
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0
        self.epsilon = epsilon
        self.working_set_size = working_set_size
        self.device = device if device is not None else scaled_tesla_p100()

        self.model_kernel_: Optional[KernelFunction] = None
        self.support_vectors_ = None
        self.dual_coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[float] = None
        self.training_report_: Optional[TrainingReport] = None
        self.prediction_report_: Optional[PredictionReport] = None

    def _build_kernel(self, n_features: int) -> KernelFunction:
        """Kernel function with gamma resolved against the feature count."""
        name = self.kernel.lower()
        if name == "linear":
            return kernel_from_name(name)
        params: dict = {"gamma": resolve_gamma(self.gamma, n_features)}
        if name in ("polynomial", "poly"):
            params.update(degree=self.degree, coef0=self.coef0)
        elif name == "sigmoid":
            params.update(coef0=self.coef0)
        return kernel_from_name(name, **params)

    # ------------------------------------------------------------------
    def fit(self, X: object, y: object) -> "SVR":
        """Fit the regressor to real-valued targets."""
        data = mops.as_supported_matrix(X)
        targets = np.asarray(y, dtype=np.float64).ravel()
        n = mops.n_rows(data)
        if targets.size != n:
            raise ValidationError(f"{targets.size} targets for {n} instances")
        if not np.all(np.isfinite(targets)):
            raise ValidationError("targets contain NaN or infinity")

        kernel = self._build_kernel(mops.n_cols(data))
        engine = make_engine(self.device)
        engine.transfer(mops.matrix_nbytes(data), category="transfer")
        base_rows = KernelRowComputer(engine, kernel, data)
        extended = _ExtendedRows(base_rows)

        y_ext = np.concatenate([np.ones(n), -np.ones(n)])
        initial_f = np.concatenate(
            [self.epsilon_tube - targets, -self.epsilon_tube - targets]
        )
        solver = BatchSMOSolver(
            penalty=float(self.C),
            epsilon=self.epsilon,
            working_set_size=self.working_set_size,
            register_buffer_memory=False,
        )
        result = solver.solve(extended, y_ext, initial_f=initial_f)

        beta = result.alpha[:n] - result.alpha[n:]
        support = np.flatnonzero(np.abs(beta) > 0)
        if support.size == 0:
            # Everything inside the tube: the constant predictor.
            support = np.asarray([0], dtype=np.int64)
            beta = np.zeros(n)
        self.model_kernel_ = kernel
        self.support_ = support
        self.support_vectors_ = mops.take_rows(data, support)
        self.dual_coef_ = beta[support]
        self.intercept_ = result.bias
        self.n_features_in_ = mops.n_cols(data)
        self.training_report_ = TrainingReport(
            simulated_seconds=engine.clock.elapsed_s,
            clock=engine.clock,
            counters=engine.counters,
            device_name=self.device.name,
            n_binary_svms=1,
            total_iterations=result.iterations,
            kernel_rows_computed=result.kernel_rows_computed,
        )
        return self

    def _require_fitted(self) -> None:
        if self.dual_coef_ is None:
            raise NotFittedError("SVR is not fitted yet")

    def predict(self, X: object) -> np.ndarray:
        """Predicted targets for the given instances."""
        self._require_fitted()
        data = check_predict_inputs(X, self.n_features_in_)
        engine = make_engine(self.device)
        engine.transfer(mops.matrix_nbytes(data), category="transfer")
        computer = KernelRowComputer(
            engine, self.model_kernel_, self.support_vectors_,
            category="decision_values",
        )
        block = computer.block(data, category="decision_values")
        values = block @ self.dual_coef_ + self.intercept_
        engine.charge(
            "decision_values",
            flops=2 * block.size,
            bytes_read=block.size * FLOAT_BYTES,
            bytes_written=values.size * FLOAT_BYTES,
            launches=1,
        )
        self.prediction_report_ = PredictionReport(
            simulated_seconds=engine.clock.elapsed_s,
            clock=engine.clock,
            counters=engine.counters,
            device_name=self.device.name,
            n_instances=mops.n_rows(data),
        )
        return values

    def score(self, X: object, y: object) -> float:
        """Coefficient of determination (R^2) on ``(X, y)``."""
        targets = np.asarray(y, dtype=np.float64).ravel()
        predictions = self.predict(X)
        residual = float(np.sum((targets - predictions) ** 2))
        total = float(np.sum((targets - targets.mean()) ** 2))
        if total == 0:
            return 1.0 if residual == 0 else 0.0
        return 1.0 - residual / total
