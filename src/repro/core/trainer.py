"""The configurable multi-class training pipeline (Algorithm 2).

Every system the paper evaluates is this pipeline under a different
:class:`TrainerConfig`:

==================  ========  =======================  ==========  =========
system              solver    device                   concurrent  sharing
==================  ========  =======================  ==========  =========
LibSVM              classic   CPU (1 or 40 threads)    no          no
GPU baseline        classic   GPU                      no          no
CMP-SVM             batched   CPU (40 threads)         yes         yes
GMP-SVM             batched   GPU                      yes         yes
==================  ========  =======================  ==========  =========

The pipeline: decompose into pairwise problems, train each binary SVM
(classic or batched SMO), fit each sigmoid on the SVM's training-set
decision values (Figure 1), then either sum the per-task simulated times
(sequential systems) or pack them through the concurrency scheduler
(Section 3.3.2).  Kernel-value sharing (Figure 3) plugs in as a row
provider shared by all pairwise solvers.
"""

from __future__ import annotations

import warnings

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.interleave import PairMember, run_interleaved
from repro.core.validation import strict_config
from repro.exceptions import ConvergenceWarning, ValidationError
from repro.gpusim.clock import SimClock
from repro.gpusim.device import DeviceSpec
from repro.gpusim.engine import FLOAT_BYTES, Engine, make_engine
from repro.gpusim.scheduler import ConcurrentScheduler, ScheduledTask, WaveLimits
from repro.kernels.cache import KernelBuffer
from repro.kernels.functions import KernelFunction
from repro.kernels.rows import KernelRowComputer
from repro.kernels.shared import SharedClassPairKernels
from repro.model.binary import BinarySVMRecord
from repro.model.multiclass import MPSVMModel
from repro.multiclass.decomposition import class_partition, pair_problems
from repro.multiclass.ova import ova_problems
from repro.multiclass.sv_sharing import SupportVectorPool
from repro.perf.report import TrainingReport
from repro.probability.platt import fit_sigmoid
from repro.solvers.base import resolve_penalty_vector
from repro.solvers.batch_smo import BatchSMOSolver
from repro.solvers.shrinking import ShrinkingSMOSolver
from repro.solvers.smo import ClassicSMOSolver
from repro.solvers.warm_start import warm_start_pair_state
from repro.sparse import ops as mops
from repro.telemetry.tracer import Tracer, maybe_span

__all__ = ["TrainerConfig", "train_multiclass"]


@strict_config
@dataclass
class TrainerConfig:
    """Every knob that distinguishes the paper's systems."""

    device: DeviceSpec
    solver: str = "batched"  # "batched" (GMP/CMP) or "classic" (LibSVM/baseline)
    flop_efficiency: Optional[float] = None  # None -> device-kind default
    bandwidth_efficiency: float = 1.0  # program-level access-pattern quality
    concurrent: bool = True  # MP-SVM-level concurrency (Section 3.3.2)
    # How concurrency is realised: "interleaved" steps the batched solvers
    # in lockstep waves with fused kernel launches (the timeline comes
    # from the executed wave trace); "posthoc" keeps the legacy repacking
    # of serial solver clocks by ConcurrentScheduler.plan.  Classic-solver
    # systems always use the post-hoc model (no resumable stepper).
    concurrency_mode: str = "interleaved"
    share_kernel_values: bool = True  # Figure 3 block sharing
    # Device-byte cap of the cross-SVM segment share; None keeps the
    # default of a quarter of device memory.
    share_budget_bytes: Optional[int] = None
    parallel_line_search: bool = True  # Section 3.3.2 (ii)
    probability: bool = True
    decomposition: str = "ovo"  # "ovo" (pairwise, the paper) or "ova"
    # Per-class penalty multipliers (LibSVM's -wi): label -> weight.
    class_weight: Optional[dict] = None
    # 0/1 fits the sigmoid on the final SVM's training-set decision values
    # (the paper's Figure 1); >= 2 uses LibSVM's stratified k-fold
    # cross-validated decision values (unbiased, k extra solves per pair).
    probability_cv_folds: int = 0
    epsilon: float = 1e-3
    # Batched-solver geometry (Section 4.1 defaults: buffer 1024, q = 512;
    # scaled to keep the paper's buffer/dataset coverage at registry sizes).
    working_set_size: int = 48
    new_per_round: Optional[int] = None
    buffer_rows: Optional[int] = None  # defaults to the working-set size
    buffer_policy: str = "fifo"
    inner_rule: str = "adaptive"
    # Classic-solver kernel cache (bytes; None disables caching).
    classic_cache_bytes: Optional[int] = None
    classic_cache_policy: str = "lru"
    # LibSVM-style shrinking (active-set reduction) for the classic solver.
    classic_shrinking: bool = False
    # Concurrency packing: SM blocks one binary SVM occupies ("we use
    # larger GPU thread blocks, such that the total number of blocks for a
    # binary SVM is smaller than the number of SMs").
    blocks_per_svm: int = 7
    max_concurrent_svms: Optional[int] = None
    # GPUSVM-style dense storage (Figure 10's pathology).
    force_dense: bool = False
    max_iterations: Optional[int] = None
    # Compute backend: None (the float64 reference), a backend name, a
    # repro.backends.BackendSpec or a ComputeBackend instance.
    backend: Optional[object] = None
    # Instance-sharded cascade routing: a repro.cascade.CascadeConfig
    # sends pairwise problems with at least ``cascade.threshold``
    # instances through the cascade SMO driver (seeded instance shards,
    # pairwise SV merge, global-KKT feedback — see repro.cascade) instead
    # of one monolithic solve.  ``None`` keeps every pair monolithic.
    cascade: Optional[object] = None
    # Telemetry: an optional hierarchical span tracer (spans cover the
    # whole run, every pair solve and the concurrency packing), and a
    # switch for per-round solver telemetry in the report even when no
    # tracer is attached.  Both default off; the hot paths then do no
    # telemetry bookkeeping at all.
    tracer: Optional[Tracer] = None
    collect_round_telemetry: bool = False

    def __post_init__(self) -> None:
        if self.solver not in ("batched", "classic"):
            raise ValidationError(f"solver must be batched/classic, got {self.solver!r}")
        if self.decomposition not in ("ovo", "ova"):
            raise ValidationError(
                f"decomposition must be ovo/ova, got {self.decomposition!r}"
            )
        if self.concurrency_mode not in ("interleaved", "posthoc"):
            raise ValidationError(
                "concurrency_mode must be interleaved/posthoc, "
                f"got {self.concurrency_mode!r}"
            )
        # Both bounds feed the wave-packing rules; non-positive values
        # would silently corrupt SM/concurrency accounting.
        if self.blocks_per_svm <= 0:
            raise ValidationError(
                f"blocks_per_svm must be >= 1, got {self.blocks_per_svm}"
            )
        if self.max_concurrent_svms is not None and self.max_concurrent_svms <= 0:
            raise ValidationError(
                f"max_concurrent_svms must be >= 1, got {self.max_concurrent_svms}"
            )
        if self.share_budget_bytes is not None and self.share_budget_bytes <= 0:
            raise ValidationError(
                f"share_budget_bytes must be positive, got {self.share_budget_bytes}"
            )
        if self.backend is not None:
            # Fail at config time, not mid-training; an unknown name or a
            # wrong type raises ValidationError listing the registry.
            from repro.backends import resolve_backend

            resolve_backend(self.backend)
        if self.cascade is not None:
            from repro.cascade.config import CascadeConfig

            if not isinstance(self.cascade, CascadeConfig):
                raise ValidationError(
                    "cascade must be a repro.cascade.CascadeConfig, got "
                    f"{type(self.cascade).__name__}"
                )
            if self.solver != "batched":
                raise ValidationError(
                    "cascade routing drives resumable batched-SMO "
                    f"sessions; solver {self.solver!r} is not shardable"
                )


def train_multiclass(
    config: TrainerConfig,
    data: mops.MatrixLike,
    y: np.ndarray,
    kernel: KernelFunction,
    penalty: float,
    *,
    warm_start: Optional[MPSVMModel] = None,
) -> tuple[MPSVMModel, TrainingReport]:
    """Train a (probabilistic) multi-class SVM under ``config``.

    Returns the fitted model and the simulated-cost report.  When
    ``config.tracer`` is set, the run is recorded as a
    ``train_multiclass`` root span over per-pair ``solve_pair`` spans.

    ``warm_start`` optionally names a previously trained model whose
    dual solution seeds every pair solver (see
    :mod:`repro.solvers.warm_start`): retraining after appending data or
    changing C/gamma then skips most rounds.  The prior model must share
    the decomposition strategy, class set and feature count; instance
    identity is positional (the old training set must be a row-wise
    prefix of, or equal to, the new one) — pairs where the mapping turns
    out unsound fall back to a cold start individually.
    """
    tracer = config.tracer
    if warm_start is not None:
        _validate_warm_start(config, warm_start, data, y)
    if tracer is None:
        return _train_multiclass_impl(
            config, data, y, kernel, penalty, warm_start=warm_start
        )
    with tracer.span("train_multiclass", n_instances=mops.n_rows(data)) as span:
        model, report = _train_multiclass_impl(
            config, data, y, kernel, penalty, warm_start=warm_start
        )
        span.set(
            n_classes=int(model.n_classes),
            n_binary_svms=report.n_binary_svms,
            total_iterations=report.total_iterations,
            simulated_seconds=report.simulated_seconds,
            buffer_hit_rate=report.buffer_hit_rate,
            sharing_hit_rate=report.sharing_hit_rate,
            max_concurrency=report.max_concurrency,
        )
        return model, report


def _validate_warm_start(
    config: TrainerConfig,
    prior: MPSVMModel,
    data: mops.MatrixLike,
    y: np.ndarray,
) -> None:
    """Reject warm starts that cannot possibly map onto this problem."""
    if not isinstance(prior, MPSVMModel):
        raise ValidationError(
            f"warm_start must be a fitted MPSVMModel, got {type(prior).__name__}"
        )
    if config.solver != "batched":
        raise ValidationError(
            "warm_start requires the batched solver; the classic SMO path "
            "has no resumable (alpha, f) entry point"
        )
    if prior.strategy != config.decomposition:
        raise ValidationError(
            f"warm_start strategy {prior.strategy!r} does not match "
            f"decomposition {config.decomposition!r}"
        )
    if prior.n_features != mops.n_cols(data):
        raise ValidationError(
            f"warm_start model has {prior.n_features} features, "
            f"training data has {mops.n_cols(data)}"
        )
    classes, _ = class_partition(np.asarray(y).ravel())
    if not np.array_equal(np.asarray(prior.classes), np.asarray(classes)):
        raise ValidationError(
            "warm_start class set does not match the training labels; "
            "incremental retraining requires the same classes"
        )


def _warm_pair_init(
    prior: Optional[MPSVMModel],
    problem,
    rows,
    penalty: float,
    penalty_vector: Optional[np.ndarray],
) -> Optional[tuple[np.ndarray, np.ndarray]]:
    """``(initial_alpha, initial_f)`` for one pair, or ``None`` (cold).

    Cold fallback covers a missing prior record (should not happen after
    :func:`_validate_warm_start`, but a corrupted model must not crash
    training) and any per-pair mapping failure detected by
    :func:`~repro.solvers.warm_start.warm_start_pair_state`.
    """
    if prior is None:
        return None
    record = next(
        (
            r
            for r in prior.records
            if (r.s, r.t) == (problem.s, problem.t)
        ),
        None,
    )
    if record is None:
        return None
    box = resolve_penalty_vector(penalty, problem.n, penalty_vector)
    return warm_start_pair_state(
        rows,
        problem.labels,
        np.asarray(record.global_sv_indices),
        np.asarray(record.coefficients),
        np.asarray(problem.global_indices),
        box,
    )


def _train_multiclass_impl(
    config: TrainerConfig,
    data: mops.MatrixLike,
    y: np.ndarray,
    kernel: KernelFunction,
    penalty: float,
    *,
    warm_start: Optional[MPSVMModel] = None,
) -> tuple[MPSVMModel, TrainingReport]:
    tracer = config.tracer
    labels = np.asarray(y).ravel()
    classes, partition = class_partition(labels)
    if config.force_dense:
        data = mops.to_dense(data)

    master = make_engine(
        config.device,
        flop_efficiency=config.flop_efficiency,
        bandwidth_efficiency=config.bandwidth_efficiency,
        backend=config.backend,
    )
    if tracer is not None:
        # Give clock-less spans (the train_multiclass root above all) the
        # master engine's simulated time axis.
        tracer.bind_clock(master.clock)
    # Ship the training data to the device once (PCIe).
    master.transfer(mops.matrix_nbytes(data), category="transfer")

    shared, shared_computer = _make_shared_store(
        config, master, kernel, data, classes, partition
    )

    tasks: list[ScheduledTask] = []
    per_svm_records: list[BinarySVMRecord] = []
    pool_entries: list[tuple[int, int, np.ndarray, np.ndarray, float]] = []
    per_svm_stats: list[dict] = []
    total_iterations = 0
    total_rows_computed = 0
    peak_task_mem = 0

    if config.class_weight:
        known = set(np.asarray(classes).tolist())
        for label, weight in config.class_weight.items():
            if label not in known:
                raise ValidationError(
                    f"class_weight key {label!r} is not a training label"
                )
            if weight <= 0:
                raise ValidationError("class weights must be positive")

    problems = list(
        pair_problems(classes, partition)
        if config.decomposition == "ovo"
        else ova_problems(classes, partition)
    )

    # Instance-sharded cascade routing: pairs at or above the configured
    # threshold leave the monolithic path and train through the cascade
    # driver (repro.cascade); the rest proceed exactly as before.  Model
    # assembly happens in problem order below, so routing never reorders
    # records.  Results land keyed by problem index.
    finals: dict[int, tuple] = {}
    cascade_cfg = config.cascade
    cascade_indices: set[int] = set()
    if cascade_cfg is not None and cascade_cfg.n_shards > 1:
        cascade_indices = {
            index
            for index, problem in enumerate(problems)
            if problem.n >= cascade_cfg.threshold
        }
    cascade_clock = SimClock()
    if cascade_indices:
        total_iterations, total_rows_computed = _run_cascade_pairs(
            config, classes, problems, cascade_indices, cascade_cfg,
            data, kernel, penalty, master, finals, cascade_clock,
            warm_start=warm_start,
        )
    remaining = [
        (index, problem)
        for index, problem in enumerate(problems)
        if index not in cascade_indices
    ]

    # The interleaved driver needs resumable sessions, which only the
    # batched solver provides; a single pair has nothing to interleave.
    use_interleaved = (
        config.concurrent
        and config.concurrency_mode == "interleaved"
        and config.solver == "batched"
        and len(remaining) > 1
    )

    schedule_source = "serial"
    wave_trace: Optional[list[dict]] = None

    if use_interleaved:
        members: list[PairMember] = [
            _make_pair_member(
                config,
                classes,
                index,
                problem,
                penalty,
                data,
                kernel,
                shared=shared,
                shared_computer=shared_computer,
                counters=master.counters,
                warm_start=warm_start,
            )
            for index, problem in remaining
        ]
        limits = _interleave_limits(config, mops.matrix_nbytes(data))
        outcome = run_interleaved(
            members,
            limits,
            shared=shared,
            tracer=tracer,
            span_clock=master.clock,
        )

        # Finalize in problem order — model assembly (records, SV pool,
        # sigmoids) must not depend on the order sessions terminated.
        finalize_clock = SimClock()
        for member in members:
            record, pool_entry, svm_stats, delta = _finalize_member(
                config, classes, member, data, kernel, penalty, tracer
            )
            svm_stats["warm_start"] = member.warm_started
            finals[member.index] = (record, pool_entry, svm_stats)
            total_iterations += member.result.iterations
            total_rows_computed += member.result.kernel_rows_computed
            peak_task_mem = max(peak_task_mem, member.mem_bytes)
            finalize_clock.merge(delta)
        interleave_outcome = outcome
        interleave_finalize = finalize_clock
        schedule_source = "wave_trace"
        wave_trace = outcome.wave_trace

    for index, problem in ([] if use_interleaved else remaining):
        engine = make_engine(
            config.device,
            flop_efficiency=config.flop_efficiency,
            bandwidth_efficiency=config.bandwidth_efficiency,
            backend=config.backend,
            counters=master.counters,
        )
        with maybe_span(
            tracer,
            "solve_pair",
            clock=engine.clock,
            pair=(problem.s, problem.t),
            n=problem.n,
        ) as pair_span:
            if shared is not None and shared_computer is not None:
                rows = _SharedPairRows(engine, shared, shared_computer, problem)
                pair_data = None
            else:
                pair_data = mops.take_rows(data, problem.global_indices)
                rows = KernelRowComputer(engine, kernel, pair_data)

            penalty_vector = _class_weighted_penalties(
                config, classes, problem, penalty
            )
            warm = _warm_pair_init(
                warm_start, problem, rows, penalty, penalty_vector
            )
            result, task_mem = _solve_pair(
                config, engine, rows, problem.labels, penalty,
                penalty_vector=penalty_vector, warm=warm,
            )
            total_iterations += result.iterations
            total_rows_computed += result.kernel_rows_computed
            peak_task_mem = max(peak_task_mem, task_mem)

            record, pool_entry, svm_stats = _finalize_pair(
                config, engine, problem, result, data, kernel, penalty,
                penalty_vector=penalty_vector, pair_span=pair_span,
                pair_data=pair_data,
            )
            svm_stats["warm_start"] = warm is not None
            finals[index] = (record, pool_entry, svm_stats)
            tasks.append(
                ScheduledTask.from_clock(
                    f"svm_{problem.s}_{problem.t}",
                    engine.clock,
                    mem_bytes=task_mem,
                    blocks=config.blocks_per_svm,
                )
            )

    # Combine per-task time: the executed wave trace (interleaved),
    # post-hoc concurrent packing, or plain serial sum.
    combined = SimClock()
    combined.merge(master.clock)
    if use_interleaved:
        combined.merge(interleave_outcome.timeline)
        combined.merge(interleave_finalize)
        max_concurrency = interleave_outcome.max_concurrency
        concurrency_speedup = interleave_outcome.concurrency_speedup
    elif config.concurrent and len(tasks) > 1:
        scheduler = ConcurrentScheduler(
            config.device,
            max_concurrent=config.max_concurrent_svms,
            mem_budget_bytes=max(
                config.device.global_mem_bytes - mops.matrix_nbytes(data), 1
            ),
        )
        plan = scheduler.plan(tasks, tracer=tracer)
        combined.merge(plan.aggregate_clock())
        max_concurrency = plan.max_concurrency
        concurrency_speedup = plan.speedup
        schedule_source = "posthoc"
    else:
        for task in tasks:
            if task.clock is not None:
                combined.merge(task.clock)
        max_concurrency = 1
        concurrency_speedup = 1.0
    # Cascade pairs train sequentially before the monolithic pass; their
    # single-pool timeline (shards, merges, feedback, finalize) adds on.
    combined.merge(cascade_clock)

    # Assemble the model in problem order regardless of which execution
    # path (cascade / interleaved / sequential) produced each pair.
    for index in range(len(problems)):
        record, pool_entry, svm_stats = finals[index]
        per_svm_records.append(record)
        pool_entries.append(pool_entry)
        per_svm_stats.append(svm_stats)

    pool = SupportVectorPool.build(data, pool_entries)
    model = MPSVMModel(
        classes=classes,
        kernel=kernel,
        penalty=float(penalty),
        records=per_svm_records,
        sv_pool=pool,
        probability=config.probability,
        strategy=config.decomposition,
        metadata={
            "trainer": config.solver,
            "device": config.device.name,
            "backend": master.backend.name,
            "dtype": np.dtype(master.backend.dtype).name,
        },
    )
    report = TrainingReport(
        simulated_seconds=combined.elapsed_s,
        clock=combined,
        counters=master.counters,
        device_name=config.device.name,
        n_binary_svms=len(per_svm_records),
        total_iterations=total_iterations,
        kernel_rows_computed=total_rows_computed,
        max_concurrency=max_concurrency,
        concurrency_speedup=concurrency_speedup,
        sharing_hit_rate=shared.stats.hit_rate if shared is not None else 0.0,
        peak_task_memory_bytes=peak_task_mem,
        per_svm=per_svm_stats,
        schedule_source=schedule_source,
        wave_trace=wave_trace,
    )
    return model, report


def _run_cascade_pairs(
    config: TrainerConfig,
    classes: np.ndarray,
    problems: list,
    cascade_indices: set,
    cascade_cfg,
    data: mops.MatrixLike,
    kernel: KernelFunction,
    penalty: float,
    master: Engine,
    finals: dict,
    cascade_clock: SimClock,
    *,
    warm_start: Optional[MPSVMModel] = None,
) -> tuple[int, int]:
    """Train the routed pairs through the cascade driver, in problem order.

    Each routed pair gets a fresh single-device pool (the multi-device
    cascade lives in ``train_multiclass_sharded`` /
    :func:`repro.cascade.train_cascade`); its shard/merge/feedback
    timeline folds into ``cascade_clock`` and its op counters into the
    master tally, so the report covers the routed work.  Cascade pairs
    always train cold — ``warm_start`` priors map a monolithic dual
    solution, which has no sound projection onto the instance shards.

    Fills ``finals[index]`` with the standard ``(record, pool_entry,
    svm_stats)`` triple (plus a ``"cascade"`` stats block) and returns
    the accumulated ``(iterations, kernel_rows_computed)``.
    """
    del warm_start  # accepted for signature symmetry; see docstring
    from repro.cascade.driver import _cascade_solve
    from repro.distributed.cluster import ClusterSpec, DevicePool

    tracer = config.tracer
    if config.device.kind != "gpu":
        raise ValidationError(
            "cascade routing shards instances across (simulated) GPU "
            f"devices; device kind {config.device.kind!r} runs the "
            "monolithic path only"
        )
    total_iterations = 0
    total_rows = 0
    for index in sorted(cascade_indices):
        problem = problems[index]
        pool = DevicePool(
            ClusterSpec(device=config.device, n_devices=1),
            flop_efficiency=config.flop_efficiency,
            bandwidth_efficiency=config.bandwidth_efficiency,
            backend=config.backend,
            tracer=tracer,
        )
        member_clocks = [SimClock()]
        pair_data = mops.take_rows(data, problem.global_indices)
        penalty_vector = _class_weighted_penalties(
            config, classes, problem, penalty
        )
        with maybe_span(
            tracer,
            "solve_pair",
            clock=pool.engine(0).clock,
            pair=(problem.s, problem.t),
            n=problem.n,
            cascade=True,
        ) as pair_span:
            result, casc_report = _cascade_solve(
                config,
                cascade_cfg,
                pool,
                pair_data,
                problem.labels,
                kernel,
                penalty,
                penalty_vector=penalty_vector,
                member_clocks=member_clocks,
                tracer=tracer,
            )
            finalize_engine = make_engine(
                config.device,
                flop_efficiency=config.flop_efficiency,
                bandwidth_efficiency=config.bandwidth_efficiency,
                backend=config.backend,
                counters=master.counters,
            )
            record, pool_entry, svm_stats = _finalize_pair(
                config, finalize_engine, problem, result, data, kernel,
                penalty, penalty_vector=penalty_vector, pair_span=pair_span,
                pair_data=pair_data,
            )
            svm_stats["warm_start"] = False
            svm_stats["simulated_seconds"] = (
                pool.engine(0).clock.elapsed_s
                + member_clocks[0].elapsed_s
                + finalize_engine.clock.elapsed_s
            )
            svm_stats["cascade"] = {
                "n_shards": casc_report.n_shards,
                "feedback_rounds": casc_report.feedback_rounds,
                "final_gap": casc_report.final_gap,
                "gap_budget": casc_report.gap_budget,
                "budget_met": casc_report.budget_met,
                "sv_survival": casc_report.sv_survival,
                "transfer_bytes": dict(casc_report.transfer_bytes),
                "levels": [
                    {k: v for k, v in level.items()
                     if k not in ("merges", "shards")}
                    for level in casc_report.levels
                ],
            }
            finals[index] = (record, pool_entry, svm_stats)
        if tracer is not None:
            # _cascade_solve unbinds its wave clocks on exit; restore the
            # run-wide default axis for subsequent clock-less spans.
            tracer.bind_clock(master.clock)
        total_iterations += result.iterations
        total_rows += result.kernel_rows_computed
        cascade_clock.merge(pool.engine(0).clock)
        cascade_clock.merge(member_clocks[0])
        cascade_clock.merge(finalize_engine.clock)
        master.counters.merge(pool.engine(0).counters)
    return total_iterations, total_rows


def _finalize_pair(
    config: TrainerConfig,
    engine: Engine,
    problem,
    result,
    data: mops.MatrixLike,
    kernel: KernelFunction,
    penalty: float,
    *,
    penalty_vector: Optional[np.ndarray] = None,
    pair_span=None,
    pair_data: Optional[mops.MatrixLike] = None,
):
    """Post-solve assembly of one binary SVM: sigmoid, record, pool entry.

    Shared by the sequential loop and the interleaved driver so that
    model assembly is one code path regardless of execution schedule.
    Returns ``(BinarySVMRecord, pool_entry, svm_stats)``.
    """
    # Training-set decision values come free from the indicators:
    # v_i = f_i + y_i + b (Eq. 3 vs Eq. 11).
    decisions = result.f + problem.labels + result.bias
    engine.elementwise("decision_values", problem.n, flops_per_element=2)
    sigmoid = None
    if config.probability:
        sigmoid_decisions = decisions
        if config.probability_cv_folds > 1:
            # LibSVM's -b 1 methodology: fit the sigmoid on held-out
            # decision values from a stratified cross-validation
            # (the paper's Figure 1 uses the direct values above).
            if pair_data is None:
                pair_data = mops.take_rows(data, problem.global_indices)
            try:
                sigmoid_decisions = _cv_decision_values(
                    config, engine, kernel, pair_data, problem.labels,
                    penalty, penalty_vector=penalty_vector,
                )
            except _CVFallback:
                sigmoid_decisions = decisions
        sigmoid = fit_sigmoid(
            engine,
            sigmoid_decisions,
            problem.labels,
            parallel_line_search=config.parallel_line_search,
        )
    train_error = float(np.mean(np.sign(decisions) != problem.labels))

    support = result.support_indices
    coefficients = result.alpha[support] * problem.labels[support]
    global_sv = problem.global_indices[support]
    pool_entry = (problem.s, problem.t, global_sv, coefficients, result.bias)
    record = BinarySVMRecord(
        s=problem.s,
        t=problem.t,
        global_sv_indices=global_sv,
        coefficients=coefficients,
        bias=result.bias,
        sigmoid=sigmoid,
        iterations=result.iterations,
        objective=result.objective,
        training_error=train_error,
    )
    svm_stats = {
        "pair": (problem.s, problem.t),
        "n": problem.n,
        "iterations": result.iterations,
        "rounds": result.rounds,
        "converged": result.converged,
        "n_support": int(support.size),
        "buffer_hit_rate": result.buffer_hit_rate,
        "simulated_seconds": engine.clock.elapsed_s,
    }
    if result.round_trace is not None:
        svm_stats["round_trace"] = result.round_trace
    if pair_span is not None:
        pair_span.set(
            iterations=result.iterations,
            rounds=result.rounds,
            converged=result.converged,
            n_support=int(support.size),
            buffer_hit_rate=result.buffer_hit_rate,
            simulated_seconds=engine.clock.elapsed_s,
        )
    return record, pool_entry, svm_stats


def _make_shared_store(
    config: TrainerConfig,
    engine: Engine,
    kernel: KernelFunction,
    data: mops.MatrixLike,
    classes: np.ndarray,
    partition: list,
) -> tuple[Optional[SharedClassPairKernels], Optional[KernelRowComputer]]:
    """The cross-SVM segment share for one device, or ``(None, None)``.

    With a single pair there is nothing to share across SVMs ("GMP-SVM is
    in fact the same as the GPU baseline when handling binary problems"),
    so the sharing layer only engages for true multi-class problems.  The
    store is bound to a quarter of device memory so it shares (rather
    than silently replaces) the per-SVM buffers.  The distributed trainer
    builds one such store per device over that device's master engine.
    """
    if not (
        config.share_kernel_values
        and classes.size > 2
        and config.decomposition == "ovo"
    ):
        return None, None
    shared_computer = KernelRowComputer(engine, kernel, data)
    shared_computer.diagonal()  # norms + diagonal once, on the master
    shared = SharedClassPairKernels(
        shared_computer,
        partition,
        max_bytes=(
            config.share_budget_bytes
            if config.share_budget_bytes is not None
            else config.device.global_mem_bytes // 4
        ),
    )
    return shared, shared_computer


def _make_pair_member(
    config: TrainerConfig,
    classes: np.ndarray,
    index: int,
    problem,
    penalty: float,
    data: mops.MatrixLike,
    kernel: KernelFunction,
    *,
    shared: Optional[SharedClassPairKernels],
    shared_computer: Optional[KernelRowComputer],
    counters,
    warm_start: Optional[MPSVMModel] = None,
) -> PairMember:
    """One resumable wave-driver member for a pairwise problem.

    The member gets its own engine clock (``counters`` shared with the
    caller's master so op totals aggregate).  Sessions cannot keep a
    per-pair span open across waves (spans are stack-nested), so they run
    untraced; the ``solve_pair``/``solver.batch_smo`` spans are emitted by
    :func:`_finalize_member` with the same attributes.
    """
    engine = make_engine(
        config.device,
        flop_efficiency=config.flop_efficiency,
        bandwidth_efficiency=config.bandwidth_efficiency,
        backend=config.backend,
        counters=counters,
    )
    if shared is not None and shared_computer is not None:
        rows = _SharedPairRows(engine, shared, shared_computer, problem)
    else:
        rows = KernelRowComputer(
            engine, kernel, mops.take_rows(data, problem.global_indices)
        )
    penalty_vector = _class_weighted_penalties(config, classes, problem, penalty)
    solver = _batched_solver(
        config,
        penalty,
        tracer=None,
        record_rounds=(
            config.collect_round_telemetry or config.tracer is not None
        ),
    )
    warm = _warm_pair_init(warm_start, problem, rows, penalty, penalty_vector)
    session = solver.start(
        rows,
        problem.labels,
        penalty_vector=penalty_vector,
        initial_alpha=None if warm is None else warm[0],
        initial_f=None if warm is None else warm[1],
    )
    return PairMember(
        index=index,
        problem=problem,
        engine=engine,
        session=session,
        mem_bytes=_batched_task_bytes(config, problem.n),
        blocks=config.blocks_per_svm,
        warm_started=warm is not None,
    )


def _interleave_limits(config: TrainerConfig, resident_bytes: int) -> WaveLimits:
    """Wave packing rules for one device holding ``resident_bytes`` of data."""
    return WaveLimits(
        num_sms=config.device.num_sms,
        mem_budget_bytes=max(
            config.device.global_mem_bytes - resident_bytes, 1
        ),
        max_concurrent=config.max_concurrent_svms,
    )


def _finalize_member(
    config: TrainerConfig,
    classes: np.ndarray,
    member: PairMember,
    data: mops.MatrixLike,
    kernel: KernelFunction,
    penalty: float,
    tracer: Optional[Tracer],
):
    """Finalize one wave-driver member after its session terminated.

    Emits the per-pair telemetry spans and runs :func:`_finalize_pair`.
    Returns ``(record, pool_entry, svm_stats, clock_delta)`` where the
    delta covers only the finalization charges (sigmoid fit, decision
    values) on the member's engine.
    """
    engine = member.engine
    problem = member.problem
    result = member.result
    before = engine.clock.copy()
    with maybe_span(
        tracer,
        "solve_pair",
        clock=engine.clock,
        pair=(problem.s, problem.t),
        n=problem.n,
    ) as pair_span:
        diagnostics = result.diagnostics or {}
        with maybe_span(
            tracer,
            "solver.batch_smo",
            clock=engine.clock,
            n=problem.n,
            working_set_size=diagnostics.get("working_set_size"),
            new_per_round=diagnostics.get("new_per_round"),
        ) as solver_span:
            solver_span.set(
                rounds=result.rounds,
                iterations=result.iterations,
                converged=result.converged,
                buffer_hit_rate=result.buffer_hit_rate,
            )
        penalty_vector = _class_weighted_penalties(
            config, classes, problem, penalty
        )
        record, pool_entry, svm_stats = _finalize_pair(
            config, engine, problem, result, data, kernel, penalty,
            penalty_vector=penalty_vector, pair_span=pair_span,
        )
    return record, pool_entry, svm_stats, engine.clock.since(before)


def _class_weighted_penalties(
    config: TrainerConfig,
    classes: np.ndarray,
    problem,
    penalty: float,
) -> Optional[np.ndarray]:
    """Per-instance C for one binary problem, or None when unweighted.

    The positive side carries class s's weight; the negative side carries
    class t's (or 1.0 for one-vs-all's "rest" side).
    """
    if not config.class_weight:
        return None
    labels_list = np.asarray(classes).tolist()
    pos_weight = config.class_weight.get(labels_list[problem.s], 1.0)
    if problem.t >= 0:
        neg_weight = config.class_weight.get(labels_list[problem.t], 1.0)
    else:
        neg_weight = 1.0
    if pos_weight == 1.0 and neg_weight == 1.0:
        return None
    return penalty * np.where(problem.labels > 0, pos_weight, neg_weight)


def _batched_solver(
    config: TrainerConfig,
    penalty: float,
    *,
    tracer: Optional[Tracer],
    record_rounds: bool,
) -> BatchSMOSolver:
    """The batched solver under ``config``'s geometry."""
    return BatchSMOSolver(
        penalty=penalty,
        epsilon=config.epsilon,
        working_set_size=config.working_set_size,
        new_per_round=config.new_per_round,
        buffer_rows=config.buffer_rows,
        buffer_policy=config.buffer_policy,
        inner_rule=config.inner_rule,
        register_buffer_memory=False,  # tracked via the task estimate
        tracer=tracer,
        record_rounds=record_rounds,
    )


def _batched_task_bytes(config: TrainerConfig, n: int) -> int:
    """Device bytes one batched-solver task keeps resident.

    Solver state (alpha, f, labels, diagonal) plus the kernel buffer —
    the wave-packing rules bound concurrency from this estimate.
    """
    state_bytes = 4 * n * FLOAT_BYTES
    resident_rows = config.buffer_rows or 2 * config.working_set_size
    return state_bytes + min(resident_rows, n) * n * FLOAT_BYTES


def _solve_pair(
    config: TrainerConfig,
    engine: Engine,
    rows: "KernelRowComputer",
    labels: np.ndarray,
    penalty: float,
    *,
    penalty_vector: Optional[np.ndarray] = None,
    warm: Optional[tuple[np.ndarray, np.ndarray]] = None,
):
    """Run the configured solver on one pairwise problem.

    Returns ``(SolverResult, task_device_bytes)`` where the byte estimate
    covers what the task keeps resident on the device (solver state plus
    its kernel buffer/cache) — the scheduler packs concurrency from it.
    ``warm`` optionally carries ``(initial_alpha, initial_f)`` from
    :func:`_warm_pair_init`; only the batched solver consumes it
    (``_validate_warm_start`` rejects warm starts on the classic path).
    """
    n = rows.n
    state_bytes = 4 * n * FLOAT_BYTES  # alpha, f, labels, diagonal resident
    if config.solver == "batched":
        solver = _batched_solver(
            config,
            penalty,
            tracer=config.tracer,
            record_rounds=config.collect_round_telemetry,
        )
        result = solver.solve(
            rows,
            labels,
            penalty_vector=penalty_vector,
            initial_alpha=None if warm is None else warm[0],
            initial_f=None if warm is None else warm[1],
        )
        return result, _batched_task_bytes(config, n)

    if config.classic_shrinking:
        solver = ShrinkingSMOSolver(
            penalty=penalty,
            epsilon=config.epsilon,
            max_iterations=config.max_iterations,
            cache_bytes=config.classic_cache_bytes,
        )
        result = solver.solve(rows, labels, penalty_vector=penalty_vector)
        cache_budget = config.classic_cache_bytes or 0
        return result, state_bytes + cache_budget

    cache = None
    cache_bytes = 0
    if config.classic_cache_bytes:
        cache_rows = max(2, int(config.classic_cache_bytes) // (n * FLOAT_BYTES))
        cache_rows = min(cache_rows, n)
        cache = KernelBuffer(
            cache_rows, n, policy=config.classic_cache_policy
        )
        cache_bytes = cache.nbytes
    solver = ClassicSMOSolver(
        penalty=penalty,
        epsilon=config.epsilon,
        max_iterations=config.max_iterations,
        buffer=cache,
    )
    result = solver.solve(rows, labels, penalty_vector=penalty_vector)
    return result, state_bytes + cache_bytes


class _SharedPairRows:
    """Adapter: a pairwise-problem view over the shared class-pair kernels.

    Implements the :class:`KernelRowComputer` protocol the solvers use,
    mapping the binary problem's local indices to global instances and
    pulling kernel segments from the cross-SVM share.  The *task* engine is
    exposed for the solver's own charges; kernel computation is charged to
    the sharing service's engine (the master) exactly once per segment.
    """

    def __init__(
        self,
        task_engine: Engine,
        shared: SharedClassPairKernels,
        computer: KernelRowComputer,
        problem,
    ) -> None:
        self.engine = task_engine
        self._shared = shared
        self._computer = computer
        self._problem = problem

    @property
    def n(self) -> int:
        return self._problem.n

    @property
    def row_nbytes(self) -> int:
        return self.n * FLOAT_BYTES

    def diagonal(self) -> np.ndarray:
        return self._computer.diagonal()[self._problem.global_indices]

    def rows(self, local_ids: object, *, category: Optional[str] = None) -> np.ndarray:
        idx = np.asarray(local_ids, dtype=np.int64)
        global_ids = self._problem.global_indices[idx]
        return self._shared.rows_for_pair(
            global_ids,
            self._problem.s,
            self._problem.t,
            category=category if category is not None else "kernel_values",
        )


def _cv_decision_values(
    config: TrainerConfig,
    engine: Engine,
    kernel: KernelFunction,
    pair_data: mops.MatrixLike,
    labels: np.ndarray,
    penalty: float,
    *,
    penalty_vector: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Held-out decision values from a stratified k-fold cross-validation.

    Mirrors LibSVM's ``svm_binary_svc_probability``: for each fold, a
    fresh SVM is trained on the other folds and scored on the held-out
    instances; the assembled out-of-fold values feed the sigmoid fit.
    Fold assignment is deterministic (seeded by the pair size) and
    stratified so every training part keeps both classes.
    """
    n = labels.size
    positives = np.flatnonzero(labels > 0)
    negatives = np.flatnonzero(labels < 0)
    folds = min(config.probability_cv_folds, positives.size, negatives.size)
    if folds < 2:
        # Too few instances of a class to cross-validate; LibSVM falls back
        # to heuristic raw values — we fall back to the direct method.
        warnings.warn(
            "not enough instances per class for CV sigmoid targets; "
            "using direct decision values",
            ConvergenceWarning,
            stacklevel=2,
        )
        raise _CVFallback()

    rng = np.random.default_rng(n)
    decisions = np.empty(n)
    fold_of = np.empty(n, dtype=np.int64)
    for class_indices in (positives, negatives):
        shuffled = class_indices.copy()
        rng.shuffle(shuffled)
        fold_of[shuffled] = np.arange(shuffled.size) % folds

    for fold in range(folds):
        held_out = np.flatnonzero(fold_of == fold)
        train_part = np.flatnonzero(fold_of != fold)
        fold_data = mops.take_rows(pair_data, train_part)
        fold_rows = KernelRowComputer(engine, kernel, fold_data)
        result, _ = _solve_pair(
            config, engine, fold_rows, labels[train_part], penalty,
            penalty_vector=(
                penalty_vector[train_part] if penalty_vector is not None else None
            ),
        )
        support = result.support_indices
        held_data = mops.take_rows(pair_data, held_out)
        if support.size:
            block = fold_rows.block(held_data, category="decision_values")
            coefficients = result.alpha[support] * labels[train_part][support]
            values = block[:, support] @ coefficients + result.bias
            engine.charge(
                "decision_values",
                flops=2 * held_out.size * support.size,
                bytes_read=held_out.size * support.size * FLOAT_BYTES,
                bytes_written=held_out.size * FLOAT_BYTES,
                launches=1,
            )
        else:
            values = np.full(held_out.size, result.bias)
        decisions[held_out] = values
    return decisions


class _CVFallback(Exception):
    """Internal: fall back to direct sigmoid targets."""
