"""Input validation shared by the estimators and baselines."""

from __future__ import annotations

import functools
import inspect

import numpy as np

from repro.exceptions import ValidationError
from repro.sparse import ops as mops

__all__ = [
    "check_fit_inputs",
    "check_predict_inputs",
    "resolve_gamma",
    "strict_config",
]


def strict_config(cls: type) -> type:
    """Class decorator: reject unknown keyword arguments by name.

    Dataclass-generated ``__init__`` raises a bare ``TypeError`` on an
    unexpected keyword; the public configuration objects instead raise
    :class:`~repro.exceptions.ValidationError` (a ``ValueError``) that
    names the offending key(s) and lists the valid parameters, so typos
    like ``bath_size`` fail with an actionable message.  Apply *above*
    ``@dataclass`` so it wraps the generated initializer.
    """
    generated = cls.__init__
    valid = [
        name
        for name in inspect.signature(generated).parameters
        if name != "self"
    ]

    @functools.wraps(generated)
    def __init__(self, *args: object, **kwargs: object) -> None:
        unknown = sorted(set(kwargs) - set(valid))
        if unknown:
            keys = ", ".join(repr(key) for key in unknown)
            raise ValidationError(
                f"unknown {cls.__name__} parameter(s): {keys}; "
                f"valid parameters: {', '.join(valid)}"
            )
        generated(self, *args, **kwargs)

    cls.__init__ = __init__
    return cls


def check_fit_inputs(data: object, y: object) -> tuple[mops.MatrixLike, np.ndarray]:
    """Coerce and validate ``(X, y)`` for fitting."""
    matrix = mops.as_supported_matrix(data)
    labels = np.asarray(y).ravel()
    if labels.size != mops.n_rows(matrix):
        raise ValidationError(
            f"{labels.size} labels for {mops.n_rows(matrix)} instances"
        )
    if labels.size < 2:
        raise ValidationError("need at least two training instances")
    if not np.all(np.isfinite(labels.astype(np.float64))):
        raise ValidationError("labels contain NaN or infinity")
    return matrix, labels


def check_predict_inputs(
    data: object, n_features: int
) -> mops.MatrixLike:
    """Coerce and validate test data against the trained feature count."""
    matrix = mops.as_supported_matrix(data)
    if mops.n_cols(matrix) != n_features:
        raise ValidationError(
            f"test data has {mops.n_cols(matrix)} features; the model was "
            f"trained with {n_features}"
        )
    return matrix


def resolve_gamma(gamma: object, n_features: int) -> float:
    """Resolve ``gamma`` which may be a number, ``"scale"``-less default.

    ``None`` (or the string ``"auto"``) maps to ``1 / n_features``,
    LibSVM's default.
    """
    if gamma is None or gamma == "auto":
        return 1.0 / max(n_features, 1)
    value = float(gamma)  # raises for junk strings
    if value <= 0:
        raise ValidationError(f"gamma must be positive, got {value}")
    return value
