"""Datasets: synthetic generators and the paper-workload registry.

The paper evaluates on nine public datasets (Table 2).  Those exact
datasets (and the hardware to process them) are not available here, so the
registry provides deterministic synthetic counterparts that mirror each
dataset's *shape* — class count, scaled cardinality, dimensionality,
sparsity/feature style, and the paper's C and gamma — per the substitution
policy in DESIGN.md Section 2.
"""

from repro.data.loaders import load_libsvm_dataset
from repro.data.registry import (
    DATASETS,
    Dataset,
    DatasetSpec,
    dataset_names,
    load_dataset,
)
from repro.data.synthetic import (
    binary01_features,
    gaussian_blobs,
    image_like,
    tfidf_like,
    train_test_split,
)

__all__ = [
    "DATASETS",
    "Dataset",
    "DatasetSpec",
    "binary01_features",
    "dataset_names",
    "gaussian_blobs",
    "image_like",
    "load_dataset",
    "load_libsvm_dataset",
    "tfidf_like",
    "train_test_split",
]
