"""Loading real datasets from LibSVM-format files.

The registry provides synthetic stand-ins, but the library works with the
paper's actual datasets wherever they are available: download any dataset
from the LibSVM site and point :func:`load_libsvm_dataset` at it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.data.registry import Dataset, DatasetSpec
from repro.data.synthetic import train_test_split
from repro.exceptions import ValidationError
from repro.sparse.io import load_libsvm

__all__ = ["load_libsvm_dataset"]


def load_libsvm_dataset(
    train_path: Union[str, Path],
    *,
    test_path: Optional[Union[str, Path]] = None,
    name: Optional[str] = None,
    penalty: float = 1.0,
    gamma: float = 1.0,
    test_fraction: float = 0.25,
    seed: int = 0,
) -> Dataset:
    """Build a :class:`Dataset` from LibSVM-format file(s).

    With ``test_path`` the two files are used as-is (feature counts are
    aligned to the wider of the two); without it, ``train_path`` is split
    ``(1 - test_fraction) / test_fraction``.
    """
    x_all, y_all = load_libsvm(train_path)
    if test_path is not None:
        x_test, y_test = load_libsvm(test_path)
        width = max(x_all.shape[1], x_test.shape[1])
        if x_all.shape[1] != width:
            x_all, y_all = load_libsvm(train_path, n_features=width)
        if x_test.shape[1] != width:
            x_test, y_test = load_libsvm(test_path, n_features=width)
        x_train, y_train = x_all, y_all
    else:
        x_train, y_train, x_test, y_test = train_test_split(
            x_all, y_all, test_fraction=test_fraction, seed=seed
        )

    classes = np.unique(y_train)
    if classes.size < 2:
        raise ValidationError("training file contains a single class")
    label = name if name else Path(train_path).stem
    spec = DatasetSpec(
        name=label,
        n_classes=int(classes.size),
        cardinality=int(x_train.shape[0]),
        dimension=int(x_train.shape[1]),
        style="libsvm-file",
        penalty=float(penalty),
        gamma=float(gamma),
        paper_cardinality=int(x_train.shape[0]),
        paper_dimension=int(x_train.shape[1]),
        test_fraction=test_fraction,
        seed=seed,
    )
    return Dataset(
        spec=spec,
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
    )
