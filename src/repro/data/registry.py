"""The paper-workload registry: scaled stand-ins for Table 2's datasets.

Each entry mirrors one of the paper's nine datasets: same class count,
same C and gamma hyper-parameters, and cardinality/dimensionality scaled
down to laptop size (the scale factor is recorded per dataset).  The
feature style matches the original's nature: indicator features for
Adult/Webdata/Connect-4, normalised text for RCV1/Real-sim/News20, pixel
data for MNIST/MNIST8M/CIFAR-10.

Generation is deterministic (fixed seeds) and cached per process.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.data import synthetic
from repro.exceptions import ValidationError
from repro.sparse import ops as mops

__all__ = ["DatasetSpec", "Dataset", "DATASETS", "dataset_names", "load_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """Shape and hyper-parameters of one registry dataset (Table 2 row)."""

    name: str
    n_classes: int
    cardinality: int  # scaled training-set size
    dimension: int  # scaled feature count
    style: str  # "binary01" | "tfidf" | "image"
    penalty: float  # the paper's C
    gamma: float  # the paper's gamma
    paper_cardinality: int
    paper_dimension: int
    test_fraction: float = 0.25
    seed: int = 0
    style_params: tuple = ()

    @property
    def scale_factor(self) -> float:
        """How much smaller than the paper's training set we run."""
        return self.paper_cardinality / self.cardinality

    def scaled_cache_bytes(self, paper_cache_bytes: int) -> int:
        """Scale a kernel-row cache so its *coverage* matches the paper.

        A cache of B bytes holds ``B / (8 n)`` rows, i.e. a fraction
        ``B / (8 n^2)`` of the kernel matrix.  Row length shrinks with the
        dataset, so preserving that fraction requires scaling the cache by
        the square of the cardinality ratio.  This is how the benchmarks
        size the GPU baseline's 4 GB cache and LibSVM's 100 MB cache per
        dataset.
        """
        ratio = self.cardinality / self.paper_cardinality
        return max(1, int(paper_cache_bytes * ratio * ratio))


@dataclass(frozen=True)
class Dataset:
    """A materialised train/test workload."""

    spec: DatasetSpec
    x_train: object
    y_train: np.ndarray
    x_test: object
    y_test: np.ndarray

    @property
    def name(self) -> str:
        """Dataset name (registry key)."""
        return self.spec.name

    @property
    def n_train(self) -> int:
        """Training-set size."""
        return mops.n_rows(self.x_train)

    @property
    def n_test(self) -> int:
        """Test-set size."""
        return mops.n_rows(self.x_test)


def _spec(
    name, k, n, d, style, c, gamma, paper_n, paper_d, seed, **style_params
) -> DatasetSpec:
    return DatasetSpec(
        name=name,
        n_classes=k,
        cardinality=n,
        dimension=d,
        style=style,
        penalty=c,
        gamma=gamma,
        paper_cardinality=paper_n,
        paper_dimension=paper_d,
        seed=seed,
        style_params=tuple(sorted(style_params.items())),
    )


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        # Binary datasets (binary-SVM-level studies).
        _spec("adult", 2, 1200, 123, "binary01", 100.0, 0.5, 32_561, 123, 11,
              active_per_row=14, flip_probability=0.30),
        _spec("rcv1", 2, 800, 2048, "tfidf", 100.0, 0.125, 20_242, 47_236, 12,
              nnz_per_row=48, vocabulary_overlap=0.45),
        _spec("real-sim", 2, 1800, 1024, "tfidf", 4.0, 0.5, 72_309, 20_958, 13,
              nnz_per_row=52, vocabulary_overlap=0.35),
        _spec("webdata", 2, 1500, 300, "binary01", 10.0, 0.5, 49_749, 300, 14,
              active_per_row=12, flip_probability=0.22),
        # Multi-class datasets (whole-GMP-SVM studies).
        _spec("cifar-10", 10, 1500, 256, "image", 10.0, 0.002, 50_000, 3072, 15,
              noise=0.25, active_fraction=0.35, confusability=0.70),
        _spec("connect-4", 3, 2000, 126, "binary01", 1.0, 0.3, 67_557, 126, 16,
              active_per_row=42, flip_probability=0.15, prototypes_per_class=60),
        _spec("mnist", 10, 1800, 196, "image", 10.0, 0.125, 60_000, 780, 17,
              noise=0.25, active_fraction=0.3, confusability=0.50),
        _spec("mnist8m", 10, 6000, 196, "image", 1000.0, 0.006, 8_100_000, 784, 18,
              noise=0.25, active_fraction=0.3, confusability=0.35),
        _spec("news20", 20, 1000, 2560, "tfidf", 4.0, 0.5, 15_935, 62_061, 19,
              nnz_per_row=80, vocabulary_overlap=0.40),
    ]
}


def dataset_names(*, binary_only: bool = False, multiclass_only: bool = False) -> list[str]:
    """Registry names in the paper's Table 2 order."""
    names = list(DATASETS)
    if binary_only:
        return [n for n in names if DATASETS[n].n_classes == 2]
    if multiclass_only:
        return [n for n in names if DATASETS[n].n_classes > 2]
    return names


@lru_cache(maxsize=None)
def load_dataset(name: str) -> Dataset:
    """Materialise a registry dataset (cached per process)."""
    if name not in DATASETS:
        raise ValidationError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    spec = DATASETS[name]
    params = dict(spec.style_params)
    total = int(round(spec.cardinality / (1.0 - spec.test_fraction)))
    if spec.style == "binary01":
        data, labels = synthetic.binary01_features(
            total, spec.dimension, spec.n_classes, seed=spec.seed, **params
        )
    elif spec.style == "tfidf":
        data, labels = synthetic.tfidf_like(
            total, spec.dimension, spec.n_classes, seed=spec.seed, **params
        )
    elif spec.style == "image":
        data, labels = synthetic.image_like(
            total, spec.dimension, spec.n_classes, seed=spec.seed, **params
        )
    else:  # pragma: no cover - specs are static
        raise ValidationError(f"unknown style {spec.style!r}")
    x_train, y_train, x_test, y_test = synthetic.train_test_split(
        data, labels, test_fraction=spec.test_fraction, seed=spec.seed + 1
    )
    return Dataset(
        spec=spec,
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
    )
