"""Deterministic synthetic dataset generators.

Three feature styles cover the paper's nine datasets:

- :func:`image_like` — dense pixel-style features in [0, 1] with per-class
  prototypes (MNIST / MNIST8M / CIFAR-10 stand-ins);
- :func:`binary01_features` — sparse 0/1 indicator features with per-class
  activation patterns (Adult / Webdata / Connect-4 stand-ins);
- :func:`tfidf_like` — sparse L2-normalised positive features drawn from
  per-class vocabularies (RCV1 / Real-sim / News20 stand-ins);

plus :func:`gaussian_blobs` for quickstart examples and tests.  Every
generator takes an explicit seed and is reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.sparse import CSRMatrix

__all__ = [
    "gaussian_blobs",
    "image_like",
    "binary01_features",
    "tfidf_like",
    "train_test_split",
]


def _check_common(n: int, n_features: int, n_classes: int) -> None:
    if n < n_classes:
        raise ValidationError(f"need at least one instance per class ({n} < {n_classes})")
    if n_features < 1:
        raise ValidationError("n_features must be >= 1")
    if n_classes < 2:
        raise ValidationError("n_classes must be >= 2")


def _balanced_labels(n: int, n_classes: int, rng: np.random.Generator) -> np.ndarray:
    """Shuffled labels with near-equal class counts."""
    labels = np.arange(n) % n_classes
    rng.shuffle(labels)
    return labels


def gaussian_blobs(
    n: int,
    n_features: int,
    n_classes: int,
    *,
    separation: float = 2.0,
    noise: float = 1.0,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Dense Gaussian clusters, one center per class."""
    _check_common(n, n_features, n_classes)
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=separation, size=(n_classes, n_features))
    labels = _balanced_labels(n, n_classes, rng)
    data = centers[labels] + rng.normal(scale=noise, size=(n, n_features))
    return data, labels


def image_like(
    n: int,
    n_features: int,
    n_classes: int,
    *,
    noise: float = 0.15,
    active_fraction: float = 0.3,
    confusability: float = 0.0,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Dense pixel-style data in [0, 1] with per-class prototypes.

    Each class has a prototype with ``active_fraction`` of its "pixels"
    lit; instances are noisy clipped copies — similar intensity statistics
    to normalised MNIST digits.

    ``confusability`` blends each instance's prototype toward a random
    *other* class's prototype by a weight drawn from
    ``Uniform(0, confusability)``.  Pixel noise alone barely overlaps
    classes in high dimension; blending creates the structural ambiguity
    (sloppy 4s that look like 9s) that gives real image datasets their
    irreducible error.
    """
    _check_common(n, n_features, n_classes)
    if not 0.0 <= confusability <= 1.0:
        raise ValidationError("confusability must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    prototypes = np.zeros((n_classes, n_features))
    n_active = max(1, int(active_fraction * n_features))
    for c in range(n_classes):
        active = rng.choice(n_features, size=n_active, replace=False)
        prototypes[c, active] = rng.uniform(0.4, 1.0, size=n_active)
    labels = _balanced_labels(n, n_classes, rng)
    data = prototypes[labels]
    if confusability > 0.0:
        other = (labels + rng.integers(1, n_classes, size=n)) % n_classes
        weights = rng.uniform(0.0, confusability, size=n)[:, None]
        data = (1.0 - weights) * data + weights * prototypes[other]
    data = data + rng.normal(scale=noise, size=(n, n_features))
    np.clip(data, 0.0, 1.0, out=data)
    return data, labels


def binary01_features(
    n: int,
    n_features: int,
    n_classes: int,
    *,
    active_per_row: int = 14,
    flip_probability: float = 0.25,
    prototypes_per_class: int = 0,
    seed: int = 0,
) -> tuple[CSRMatrix, np.ndarray]:
    """Sparse 0/1 indicator features (categorical one-hot style).

    Each class prefers a subset of indicators; each instance activates
    ``active_per_row`` features drawn mostly from its class's preferred
    set, with ``flip_probability`` of them drawn uniformly instead — the
    knob controlling class overlap (Adult-style irreducible error).

    With ``prototypes_per_class > 0``, instances cluster around per-class
    prototype patterns instead of being drawn independently: each instance
    copies a prototype and re-draws a ``flip_probability`` fraction of its
    active features.  This matters for wide one-hot data like Connect-4
    board states, where a Gaussian kernel only generalises if near
    neighbours exist.
    """
    _check_common(n, n_features, n_classes)
    if active_per_row < 1 or active_per_row > n_features:
        raise ValidationError("active_per_row out of range")
    if prototypes_per_class < 0:
        raise ValidationError("prototypes_per_class must be >= 0")
    rng = np.random.default_rng(seed)
    preferred_size = max(active_per_row * 2, n_features // (n_classes + 1))
    preferred_size = min(preferred_size, n_features)
    preferred = [
        rng.choice(n_features, size=preferred_size, replace=False)
        for _ in range(n_classes)
    ]
    labels = _balanced_labels(n, n_classes, rng)

    def draw_pattern(label: int) -> set[int]:
        n_noise = rng.binomial(active_per_row, flip_probability)
        n_signal = active_per_row - n_noise
        chosen = set(
            rng.choice(
                preferred[label], size=min(n_signal, preferred_size), replace=False
            )
        )
        while len(chosen) < active_per_row:
            chosen.add(int(rng.integers(n_features)))
        return chosen

    prototypes = None
    if prototypes_per_class:
        prototypes = [
            [draw_pattern(c) for _ in range(prototypes_per_class)]
            for c in range(n_classes)
        ]

    rows = []
    for label in labels:
        if prototypes is None:
            chosen = draw_pattern(label)
        else:
            base = prototypes[label][rng.integers(prototypes_per_class)]
            n_swap = rng.binomial(active_per_row, flip_probability)
            keep = rng.choice(
                np.fromiter(base, dtype=np.int64),
                size=active_per_row - n_swap,
                replace=False,
            )
            chosen = set(int(c) for c in keep)
            while len(chosen) < active_per_row:
                chosen.add(int(rng.integers(n_features)))
        cols = np.sort(np.fromiter(chosen, dtype=np.int64))
        rows.append((cols, np.ones(cols.size)))
    return CSRMatrix.from_rows(rows, n_features), labels


def tfidf_like(
    n: int,
    n_features: int,
    n_classes: int,
    *,
    nnz_per_row: int = 50,
    vocabulary_overlap: float = 0.35,
    seed: int = 0,
) -> tuple[CSRMatrix, np.ndarray]:
    """Sparse L2-normalised positive features (text tf-idf style).

    Each class draws most of its terms from a class vocabulary and the
    rest (``vocabulary_overlap``) from the global vocabulary; values are
    positive and each row is normalised to unit L2 norm, matching the
    normalised text datasets (RCV1, Real-sim, News20) where the Gaussian
    kernel sees ``||x_i - x_j||^2 <= 2``.
    """
    _check_common(n, n_features, n_classes)
    if nnz_per_row < 1 or nnz_per_row > n_features:
        raise ValidationError("nnz_per_row out of range")
    rng = np.random.default_rng(seed)
    vocab_size = min(n_features, max(nnz_per_row * 4, n_features // n_classes))
    vocabularies = [
        rng.choice(n_features, size=vocab_size, replace=False)
        for _ in range(n_classes)
    ]
    labels = _balanced_labels(n, n_classes, rng)
    rows = []
    for label in labels:
        n_shared = rng.binomial(nnz_per_row, vocabulary_overlap)
        n_class = nnz_per_row - n_shared
        chosen = set(
            rng.choice(vocabularies[label], size=min(n_class, vocab_size), replace=False)
        )
        while len(chosen) < nnz_per_row:
            chosen.add(int(rng.integers(n_features)))
        cols = np.sort(np.fromiter(chosen, dtype=np.int64))
        values = np.abs(rng.normal(size=cols.size)) + 0.05
        values /= np.linalg.norm(values)
        rows.append((cols, values))
    return CSRMatrix.from_rows(rows, n_features), labels


def train_test_split(
    data: object,
    labels: np.ndarray,
    *,
    test_fraction: float = 0.25,
    seed: int = 0,
) -> tuple[object, np.ndarray, object, np.ndarray]:
    """Shuffled split preserving the storage format.

    Returns ``(X_train, y_train, X_test, y_test)``.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValidationError("test_fraction must lie in (0, 1)")
    y = np.asarray(labels).ravel()
    n = y.size
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    n_test = max(1, int(round(test_fraction * n)))
    if n_test >= n:
        raise ValidationError("test fraction leaves no training data")
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    from repro.sparse import ops as mops  # local import to avoid a cycle

    return (
        mops.take_rows(data, train_idx),
        y[train_idx],
        mops.take_rows(data, test_idx),
        y[test_idx],
    )
