"""Multi-device sharded training and inference over a simulated cluster.

The one-against-one decomposition's k(k-1)/2 independent binary problems
shard naturally across devices.  This package adds the cluster substrate
(:mod:`~repro.distributed.cluster`), the pair-to-device placement planner
(:mod:`~repro.distributed.placement`), the sharded training driver with
its cross-device SV merge (:mod:`~repro.distributed.trainer`) and the
sharded inference router (:mod:`~repro.distributed.inference`).  Sharding
changes only the simulated timeline — models, decision values and coupled
probabilities stay bitwise identical to the single-device paths.
"""

from repro.distributed.cluster import (
    HOST,
    ClusterSpec,
    DevicePool,
    InterconnectSpec,
)
from repro.distributed.inference import (
    SHARD_STRATEGIES,
    ShardedInferenceRouter,
)
from repro.distributed.placement import (
    PLACEMENT_STRATEGIES,
    PlacementPlan,
    plan_placement,
)
from repro.distributed.trainer import (
    ClusterTrainingReport,
    train_multiclass_sharded,
)

__all__ = [
    "HOST",
    "PLACEMENT_STRATEGIES",
    "SHARD_STRATEGIES",
    "ClusterSpec",
    "ClusterTrainingReport",
    "DevicePool",
    "InterconnectSpec",
    "PlacementPlan",
    "ShardedInferenceRouter",
    "plan_placement",
    "train_multiclass_sharded",
]
