"""A simulated multi-GPU cluster: device pool plus interconnect cost model.

There is still no physical GPU here — :mod:`repro.gpusim` models one device
through a cost model, and this module scales that to several.  A
:class:`ClusterSpec` names ``n_devices`` identical :class:`DeviceSpec`
instances joined by an :class:`InterconnectSpec`; a :class:`DevicePool`
instantiates one engine (own clock, op counters, memory ledger) per device
and charges every host↔device and device↔device copy against the endpoint
clocks.

Transfer model (mirrors the engine's op charge shape):

- ``latency`` — one fixed per-transfer initiation cost (driver/DMA setup);
- ``compute`` — ``nbytes / bandwidth``, the occupancy of the link.

A device↔device copy occupies *both* endpoints (source reads out, sink
writes in), so the charge lands on both clocks; a host↔device copy charges
only the device (the host is not a simulated resource).  All transfers are
tallied in a ``(src, dst) -> bytes`` ledger and, when a tracer is attached,
emitted as ``transfer`` spans on the destination clock's time axis.

Hierarchical topologies: a :class:`ClusterSpec` with ``n_nodes > 1``
spreads its devices node-major over the nodes (device ``d`` lives on node
``d // devices_per_node``), and the interconnect grows a third, slower
tier — peer copies between devices on the *same* node pay the intra-node
(NVLink-class) charge, copies crossing nodes pay the inter-node
(network-class) charge.  The ledger keys stay ``(src, dst)``, so per-tier
volumes fall out of :meth:`DevicePool.tier_bytes`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import ValidationError
from repro.gpusim.clock import TimeCharge
from repro.gpusim.device import DeviceSpec, scaled_tesla_p100
from repro.gpusim.engine import Engine, make_engine
from repro.telemetry.tracer import Tracer, maybe_span

__all__ = ["InterconnectSpec", "ClusterSpec", "DevicePool", "HOST"]

# Ledger key for the host endpoint of a transfer.
HOST = -1


@dataclass(frozen=True)
class InterconnectSpec:
    """Latency + bandwidth of the links joining the cluster.

    Defaults model a PCIe 3.0 x16 host link and an NVLink-class peer
    mesh — per-transfer initiation overhead plus a sustained byte rate.
    The inter-node tier (used only by hierarchical clusters, see
    :class:`ClusterSpec.n_nodes`) defaults to a network-class link:
    higher initiation latency, a quarter of the intra-node bandwidth.
    """

    host_latency_s: float = 10e-6
    host_bandwidth_gbps: float = 12.0
    peer_latency_s: float = 5e-6
    peer_bandwidth_gbps: float = 40.0
    inter_node_latency_s: float = 25e-6
    inter_node_bandwidth_gbps: float = 10.0

    def __post_init__(self) -> None:
        if (
            self.host_latency_s < 0
            or self.peer_latency_s < 0
            or self.inter_node_latency_s < 0
        ):
            raise ValidationError("interconnect latencies must be non-negative")
        if (
            self.host_bandwidth_gbps <= 0
            or self.peer_bandwidth_gbps <= 0
            or self.inter_node_bandwidth_gbps <= 0
        ):
            raise ValidationError("interconnect bandwidths must be positive")

    def host_charge(self, nbytes: int) -> TimeCharge:
        """Cost of moving ``nbytes`` over the host↔device link."""
        return TimeCharge(
            latency_s=self.host_latency_s,
            compute_s=nbytes / (self.host_bandwidth_gbps * 1e9),
        )

    def peer_charge(self, nbytes: int) -> TimeCharge:
        """Cost of moving ``nbytes`` over an intra-node device↔device link."""
        return TimeCharge(
            latency_s=self.peer_latency_s,
            compute_s=nbytes / (self.peer_bandwidth_gbps * 1e9),
        )

    def inter_node_charge(self, nbytes: int) -> TimeCharge:
        """Cost of moving ``nbytes`` over the cross-node link tier."""
        return TimeCharge(
            latency_s=self.inter_node_latency_s,
            compute_s=nbytes / (self.inter_node_bandwidth_gbps * 1e9),
        )


@dataclass(frozen=True)
class ClusterSpec:
    """``n_devices`` identical simulated devices plus their interconnect.

    ``n_nodes > 1`` makes the cluster hierarchical: the devices are
    spread node-major over the nodes (``n_devices`` must divide evenly),
    and peer transfers crossing a node boundary pay the interconnect's
    inter-node tier instead of the intra-node one.  The flat single-node
    cluster is the ``n_nodes = 1`` special case and behaves exactly as
    before.
    """

    device: DeviceSpec = field(default_factory=scaled_tesla_p100)
    n_devices: int = 1
    interconnect: InterconnectSpec = field(default_factory=InterconnectSpec)
    n_nodes: int = 1

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise ValidationError(
                f"a cluster needs at least one device, got {self.n_devices}"
            )
        if self.n_nodes < 1:
            raise ValidationError(
                f"a cluster needs at least one node, got {self.n_nodes}"
            )
        if self.n_devices % self.n_nodes != 0:
            raise ValidationError(
                f"{self.n_devices} devices do not spread evenly over "
                f"{self.n_nodes} nodes"
            )
        if self.device.kind != "gpu":
            raise ValidationError(
                "clusters shard across GPU devices; CPU systems run the "
                f"single-device paths (got device kind {self.device.kind!r})"
            )

    @property
    def devices_per_node(self) -> int:
        """Devices on each node (devices are spread node-major)."""
        return self.n_devices // self.n_nodes

    def node_of(self, device: int) -> int:
        """The node hosting device ``device``."""
        if not 0 <= device < self.n_devices:
            raise ValidationError(
                f"device {device} out of range for a "
                f"{self.n_devices}-device cluster"
            )
        return device // self.devices_per_node

    def same_node(self, a: int, b: int) -> bool:
        """Whether devices ``a`` and ``b`` share a node (fast peer tier)."""
        return self.node_of(a) == self.node_of(b)

    @property
    def name(self) -> str:
        """Display name, e.g. ``4x Tesla P100 (scaled)`` or ``2x2 ...``."""
        if self.n_nodes > 1:
            return (
                f"{self.n_nodes}x{self.devices_per_node} {self.device.name}"
            )
        return f"{self.n_devices}x {self.device.name}"


class DevicePool:
    """Per-device engines over one :class:`ClusterSpec`, plus transfers.

    Each device gets its own :class:`~repro.gpusim.engine.Engine` — its
    own simulated clock, op counters and memory ledger — built with the
    same efficiency knobs single-device training uses.  The pool is the
    only place interconnect time is charged, so per-device timelines
    include exactly the copies that device took part in.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        *,
        flop_efficiency: Optional[float] = None,
        bandwidth_efficiency: float = 1.0,
        backend: Optional[object] = None,
        tracer: Optional[Tracer] = None,
        fault_injector: Optional[object] = None,
    ) -> None:
        self.cluster = cluster
        self.tracer = tracer
        # A repro.faults.FaultInjector (duck-typed to avoid the layering
        # inversion): supplies per-device straggler clock rates at build
        # time and per-transfer link-retry penalties at transfer time.
        self.fault_injector = fault_injector
        self._engines = [
            make_engine(
                cluster.device,
                flop_efficiency=flop_efficiency,
                bandwidth_efficiency=bandwidth_efficiency,
                backend=backend,
            )
            for _ in range(cluster.n_devices)
        ]
        if fault_injector is not None:
            for device, engine in enumerate(self._engines):
                engine.clock.rate = fault_injector.straggler_rate(device)
        # (src, dst) -> bytes moved; HOST (-1) marks the host endpoint.
        self.transfer_ledger: dict[tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_devices(self) -> int:
        """Devices in the pool."""
        return len(self._engines)

    def engine(self, device: int) -> Engine:
        """The engine of device ``device`` (0-based)."""
        self._check_device(device)
        return self._engines[device]

    @property
    def engines(self) -> list[Engine]:
        """All device engines, in device order."""
        return list(self._engines)

    @property
    def total_transfer_bytes(self) -> int:
        """Bytes moved over the interconnect, all links combined."""
        return sum(self.transfer_ledger.values())

    def device_transfer_bytes(self, device: int) -> int:
        """Bytes of every transfer device ``device`` took part in."""
        self._check_device(device)
        return sum(
            nbytes
            for (src, dst), nbytes in self.transfer_ledger.items()
            if device in (src, dst)
        )

    def link_tier(self, src: int, dst: int) -> str:
        """Which interconnect tier a ``(src, dst)`` copy rides.

        ``"host"`` when either endpoint is the host, ``"intra"`` for
        peers sharing a node, ``"inter"`` for peers on different nodes.
        """
        if HOST in (src, dst):
            return "host"
        if self.cluster.same_node(src, dst):
            return "intra"
        return "inter"

    @property
    def tier_bytes(self) -> dict[str, int]:
        """Ledger volume per interconnect tier (host / intra / inter)."""
        totals = {"host": 0, "intra": 0, "inter": 0}
        for (src, dst), nbytes in self.transfer_ledger.items():
            totals[self.link_tier(src, dst)] += nbytes
        return totals

    @property
    def makespan_s(self) -> float:
        """Cluster wall time: the busiest device's simulated clock."""
        return max(engine.clock.elapsed_s for engine in self._engines)

    def utilization(self, device: int) -> float:
        """Device busy time over the cluster makespan (1.0 = critical path)."""
        makespan = self.makespan_s
        if makespan <= 0:
            return 0.0
        return self.engine(device).clock.elapsed_s / makespan

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def host_to_device(
        self, device: int, nbytes: int, *, category: str = "transfer"
    ) -> None:
        """Charge a host→device copy to the device's clock."""
        self._transfer(HOST, device, nbytes, category=category)

    def device_to_host(
        self, device: int, nbytes: int, *, category: str = "transfer"
    ) -> None:
        """Charge a device→host copy to the device's clock."""
        self._transfer(device, HOST, nbytes, category=category)

    def device_to_device(
        self, src: int, dst: int, nbytes: int, *, category: str = "transfer"
    ) -> None:
        """Charge a peer copy; the link occupies both endpoint clocks."""
        if src == dst:
            return  # same-device "copy" moves nothing over the interconnect
        self._transfer(src, dst, nbytes, category=category)

    def _transfer(
        self, src: int, dst: int, nbytes: int, *, category: str
    ) -> None:
        if nbytes < 0:
            raise ValidationError("transfer size must be non-negative")
        for endpoint in (src, dst):
            if endpoint != HOST:
                self._check_device(endpoint)
        if nbytes == 0:
            return
        interconnect = self.cluster.interconnect
        tier = self.link_tier(src, dst)
        if tier == "host":
            charge = interconnect.host_charge(nbytes)
        elif tier == "intra":
            charge = interconnect.peer_charge(nbytes)
        else:
            charge = interconnect.inter_node_charge(nbytes)
        if self.fault_injector is not None:
            # A transfer "happens" at the busier endpoint's current
            # simulated time; a link-fault window covering that instant
            # costs a retry's latency on both endpoint clocks.
            now_s = max(
                self._engines[endpoint].clock.elapsed_s
                for endpoint in (src, dst)
                if endpoint != HOST
            )
            penalty_s = self.fault_injector.link_penalty_s(src, dst, now_s)
            if penalty_s > 0:
                charge = charge + TimeCharge(latency_s=penalty_s)
        span_engine = None
        for endpoint in (src, dst):
            if endpoint == HOST:
                continue
            engine = self._engines[endpoint]
            engine.clock.charge(category, charge)
            engine.counters.record(pcie_bytes=int(nbytes))
            span_engine = engine
        self.transfer_ledger[(src, dst)] = (
            self.transfer_ledger.get((src, dst), 0) + int(nbytes)
        )
        if self.tracer is not None and span_engine is not None:
            with maybe_span(
                self.tracer,
                "transfer",
                clock=span_engine.clock,
                src="host" if src == HOST else src,
                dst="host" if dst == HOST else dst,
                tier=tier,
                nbytes=int(nbytes),
                seconds=charge.latency_s + charge.compute_s,
            ):
                pass

    def _check_device(self, device: int) -> None:
        if not 0 <= device < len(self._engines):
            raise ValidationError(
                f"device {device} out of range for a "
                f"{len(self._engines)}-device cluster"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DevicePool({self.cluster.name}, "
            f"transfers={self.total_transfer_bytes}B)"
        )
