"""Sharded inference over a simulated cluster.

Two ways to spread a sealed model across devices, trading throughput
against per-device memory:

- ``replicated`` — every device seals the *full* model (one
  :class:`~repro.serving.session.InferenceSession` each) and requests are
  routed round-robin across per-device
  :class:`~repro.serving.batcher.MicroBatcher` queues.  Memory per device
  is the whole pool; throughput scales with devices because independent
  requests serve concurrently.
- ``pair_partitioned`` — the k(k-1)/2 binary SVMs are placed onto devices
  with the same planner training uses; each device holds only the pool
  rows *its* SVMs reference.  A request fans out to every shard, each
  shard computes its decision-value columns, and the partial decision
  values are reduced to the root device over the peer links
  (``shard_reduce`` span), where the shared probability tail
  (:func:`~repro.core.predictor.probabilities_from_decisions`) runs once.
  Memory per device shrinks toward ``1/n``-th of the pool; a single
  request's kernel work is split across devices.

**Bitwise parity.**  Every kernel block element is a pure function of its
(test row, pool row) pair — both matmul axes go through the fixed-tile
discipline of :mod:`repro.sparse.ops` — so a shard computing ``K(x, sv)``
against its sub-pool produces the very bytes the full pool would, and each
SVM's weighted sum consumes an identical gathered column block.  The
router chunks ``predict_proba`` exactly like
:meth:`InferenceSession._serve_proba` (same budget, same boundaries) and
runs the same numeric tail, so both strategies return results bitwise
equal to a single-device session for every device count and placement.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from types import SimpleNamespace
from typing import Optional

import numpy as np

from repro.core.predictor import (
    PredictorConfig,
    batch_budget_rows,
    probabilities_from_decisions,
)
from repro.core.validation import check_predict_inputs
from repro.distributed.cluster import ClusterSpec, DevicePool
from repro.distributed.placement import plan_placement
from repro.exceptions import DeviceError, NotFittedError, ValidationError
from repro.gpusim.engine import FLOAT_BYTES
from repro.kernels.functions import KernelFunction
from repro.kernels.rows import KernelRowComputer
from repro.model.multiclass import MPSVMModel
from repro.multiclass.ova import ova_positions
from repro.multiclass.sv_sharing import PooledSVM, SupportVectorPool
from repro.multiclass.voting import ovo_vote
from repro.serving.batcher import MicroBatcher, ServedRequest
from repro.serving.session import InferenceSession
from repro.sparse import ops as mops
from repro.telemetry.tracer import maybe_span

__all__ = ["ShardedInferenceRouter", "ModelShard", "SHARD_STRATEGIES"]

SHARD_STRATEGIES = ("replicated", "pair_partitioned")


@dataclass
class ModelShard:
    """One device's slice of a pair-partitioned model."""

    device: int
    svm_indices: np.ndarray  # columns of the full decision matrix
    pool: SupportVectorPool  # sub-pool holding only this shard's SV rows
    computer: KernelRowComputer  # warm, norms resident on the device

    @property
    def n_svms(self) -> int:
        """Number of binary SVMs served by this shard."""
        return int(self.svm_indices.size)


class ShardedInferenceRouter:
    """Serve one fitted model from several simulated devices.

    Parameters
    ----------
    model:
        The fitted :class:`MPSVMModel` to serve.
    cluster:
        Device count and interconnect (:class:`ClusterSpec`).
    strategy:
        ``"replicated"`` or ``"pair_partitioned"`` (see module docstring).
    config:
        Prediction-side configuration; its device is aligned with the
        cluster's.  Defaults to SV sharing on the cluster's device.
    placement:
        Pair-to-device strategy for ``pair_partitioned`` (same planner as
        sharded training; weight = each SVM's support count).
    max_batch / max_wait_s:
        Per-device :class:`MicroBatcher` knobs (``replicated`` only).

    ``predict_proba`` / ``predict`` / ``decision_function`` return results
    bitwise equal to a single-device :class:`InferenceSession`.
    """

    def __init__(
        self,
        model: MPSVMModel,
        cluster: ClusterSpec,
        *,
        strategy: str = "replicated",
        config: Optional[PredictorConfig] = None,
        placement: str = "affinity",
        max_batch: int = 64,
        max_wait_s: float = 0.0,
    ) -> None:
        if not isinstance(model, MPSVMModel):
            raise NotFittedError(
                "ShardedInferenceRouter serves a fitted MPSVMModel; got "
                f"{type(model).__name__}"
            )
        if strategy not in SHARD_STRATEGIES:
            raise ValidationError(
                f"strategy must be one of {SHARD_STRATEGIES}, got {strategy!r}"
            )
        self.model = model.warm()
        self.cluster = cluster
        self.strategy = strategy
        if config is None:
            config = PredictorConfig(device=cluster.device)
        elif config.device is not cluster.device:
            config = replace(config, device=cluster.device)
        self.config = config
        self._tracer = config.tracer
        self.pool = DevicePool(
            cluster,
            flop_efficiency=config.flop_efficiency,
            bandwidth_efficiency=config.bandwidth_efficiency,
            backend=config.backend,
            tracer=config.tracer,
        )
        # Chunking mirrors InferenceSession._serve_proba on the FULL model
        # — identical chunk boundaries are part of the parity contract.
        self._budget_rows = batch_budget_rows(config, self.model)
        self.n_calls = 0
        self._sessions: list[InferenceSession] = []
        self._batchers: list[MicroBatcher] = []
        self._shards: list[ModelShard] = []
        self._round_robin = 0
        self._submissions: list[ServedRequest] = []
        # Replica health (replicated only): round-robin skips unhealthy
        # devices, so a lost replica degrades capacity without ever
        # serving from dead state.
        self._healthy = [True] * cluster.n_devices
        if strategy == "replicated":
            self._seal_replicated(max_batch, max_wait_s)
        else:
            self._seal_partitioned(placement)

    # ------------------------------------------------------------------
    # Sealing
    # ------------------------------------------------------------------
    def _seal_replicated(self, max_batch: int, max_wait_s: float) -> None:
        """Seal the full model once per device, with a batcher each."""
        for device in range(self.cluster.n_devices):
            # The interconnect cost of replicating the pool; the session
            # then charges its own (device-local) seal work.
            self.pool.host_to_device(device, self.model.sv_pool.pool_nbytes)
            session = InferenceSession(self.model, self.config)
            self._sessions.append(session)
            self._batchers.append(
                MicroBatcher(
                    session, max_batch=max_batch, max_wait_s=max_wait_s
                )
            )

    def _seal_partitioned(self, placement: str) -> None:
        """Place the SVMs on devices and seal each device's sub-pool."""
        sv_pool = self.model.sv_pool
        shapes = [
            SimpleNamespace(s=svm.s, t=svm.t, n=svm.pool_positions.size)
            for svm in sv_pool.svms
        ]
        plan = plan_placement(
            shapes, self.cluster.n_devices, strategy=placement
        )
        self.placement = plan
        for device, svm_indices in enumerate(plan.device_problems):
            if not svm_indices:
                continue
            engine = self.pool.engine(device)
            with maybe_span(
                self._tracer,
                "shard_seal",
                clock=engine.clock,
                device=device,
                n_svms=len(svm_indices),
            ) as span:
                positions = np.unique(
                    np.concatenate(
                        [
                            sv_pool.svms[i].pool_positions
                            for i in svm_indices
                        ]
                    )
                )
                sub_svms = [
                    PooledSVM(
                        s=sv_pool.svms[i].s,
                        t=sv_pool.svms[i].t,
                        pool_positions=np.searchsorted(
                            positions, sv_pool.svms[i].pool_positions
                        ),
                        coefficients=sv_pool.svms[i].coefficients,
                        bias=sv_pool.svms[i].bias,
                    )
                    for i in svm_indices
                ]
                sub_pool = SupportVectorPool(
                    mops.take_rows(sv_pool.pool_data, positions),
                    sv_pool.pool_global_indices[positions],
                    sub_svms,
                )
                self.pool.host_to_device(device, sub_pool.pool_nbytes)
                computer = KernelRowComputer(
                    engine,
                    self.model.kernel,
                    sub_pool.pool_data,
                    category="decision_values",
                )
                computer.norms()  # shard norms resident from now on
                span.set(
                    n_pool=sub_pool.n_pool,
                    pool_nbytes=sub_pool.pool_nbytes,
                )
            self._shards.append(
                ModelShard(
                    device=device,
                    svm_indices=np.asarray(svm_indices, dtype=np.int64),
                    pool=sub_pool,
                    computer=computer,
                )
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_devices(self) -> int:
        """Number of devices in the serving cluster."""
        return self.cluster.n_devices

    @property
    def n_features(self) -> int:
        """Feature count requests must match."""
        return self.model.n_features

    @property
    def sessions(self) -> list[InferenceSession]:
        """Per-device sealed sessions (``replicated`` only)."""
        return list(self._sessions)

    @property
    def shards(self) -> list[ModelShard]:
        """Per-device model slices (``pair_partitioned`` only)."""
        return list(self._shards)

    def device_seconds(self, device: int) -> float:
        """Simulated busy seconds of one device (transfers + serving)."""
        seconds = self.pool.engine(device).clock.elapsed_s
        if self.strategy == "replicated":
            seconds += self._sessions[device].simulated_seconds
        return seconds

    @property
    def simulated_seconds(self) -> float:
        """Cluster serving makespan: the busiest device's timeline."""
        return max(
            self.device_seconds(device) for device in range(self.n_devices)
        )

    def memory_per_device_bytes(self) -> list[int]:
        """Resident model bytes per device (the partitioning win)."""
        if self.strategy == "replicated":
            return [self.model.sv_pool.pool_nbytes] * self.n_devices
        per_device = [0] * self.n_devices
        for shard in self._shards:
            per_device[shard.device] = shard.pool.pool_nbytes
        return per_device

    # ------------------------------------------------------------------
    # One-shot serving
    # ------------------------------------------------------------------
    def predict_proba(self, X: object) -> np.ndarray:
        """Multi-class probabilities, shape ``(m, n_classes)``."""
        data = check_predict_inputs(X, self.n_features)
        if not self.model.probability:
            raise NotFittedError(
                "model was trained without probability output; refit with "
                "probability=True"
            )
        if self.strategy == "replicated":
            return self._next_session().predict_proba(data)
        return self._partitioned_proba(data)

    def predict(self, X: object) -> np.ndarray:
        """Predicted class labels (argmax probability when available)."""
        data = check_predict_inputs(X, self.n_features)
        if self.strategy == "replicated":
            return self._next_session().predict(data)
        if self.model.probability:
            probabilities = self._partitioned_proba(data)
            positions = np.argmax(probabilities, axis=1)
            return self.model.labels_from_positions(positions)
        decisions = self._reduce_decisions(data)
        if self.model.strategy == "ova":
            positions = ova_positions(decisions)
        else:
            positions = ovo_vote(
                decisions, self.model.pairs, self.model.n_classes
            )
        return self.model.labels_from_positions(positions)

    def decision_function(self, X: object) -> np.ndarray:
        """Raw per-SVM decision values, shape ``(m, n_svms)``."""
        data = check_predict_inputs(X, self.n_features)
        if self.strategy == "replicated":
            return self._next_session().decision_function(data)
        return self._reduce_decisions(data)

    # ------------------------------------------------------------------
    # Micro-batched serving (replicated)
    # ------------------------------------------------------------------
    def submit(
        self,
        X: object,
        *,
        kind: str = "predict_proba",
        arrival_s: Optional[float] = None,
    ) -> ServedRequest:
        """Queue one request on the next device's micro-batcher.

        Requests spread round-robin across the replicas; each device's
        queue fuses and dispatches independently on :meth:`drain`.
        """
        self._require("replicated")
        batcher = self._batchers[self._next_healthy()]
        request = batcher.submit(X, kind=kind, arrival_s=arrival_s)
        self._submissions.append(request)
        return request

    def drain(self) -> list[ServedRequest]:
        """Dispatch every queued request; returns them in submission order."""
        self._require("replicated")
        for batcher in self._batchers:
            batcher.drain()
        drained = self._submissions
        self._submissions = []
        return drained

    # ------------------------------------------------------------------
    # Replica health (replicated)
    # ------------------------------------------------------------------
    @property
    def healthy_devices(self) -> list[int]:
        """Devices currently in the serving rotation."""
        return [d for d, ok in enumerate(self._healthy) if ok]

    def mark_unhealthy(self, device: int) -> None:
        """Take ``device``'s replica out of the rotation (replica lost).

        Requests already answered by the replica stand — they were
        computed while it was alive and are bitwise the full model's
        answers.  Later calls route round-robin over the survivors; with
        no survivors, serving raises an explicit
        :class:`~repro.exceptions.DeviceError` rather than degrade
        silently.
        """
        self._require("replicated")
        self.pool._check_device(device)
        self._healthy[device] = False

    def mark_healthy(self, device: int, *, reseal: bool = False) -> None:
        """Return ``device`` to the rotation, optionally as a fresh seal.

        ``reseal=True`` models a *replacement* replica: the pool is
        shipped to the device again and a new session seals there (both
        charged to the simulated clocks); otherwise the existing seal
        rejoins as-is (a restarted process on a surviving device).
        """
        self._require("replicated")
        self.pool._check_device(device)
        if reseal:
            self.pool.host_to_device(device, self.model.sv_pool.pool_nbytes)
            session = InferenceSession(self.model, self.config)
            batcher = self._batchers[device]
            self._sessions[device] = session
            self._batchers[device] = MicroBatcher(
                session,
                max_batch=batcher.max_batch,
                max_wait_s=batcher.max_wait_s,
            )
        self._healthy[device] = True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require(self, strategy: str) -> None:
        if self.strategy != strategy:
            raise ValidationError(
                f"operation requires the {strategy!r} strategy; this "
                f"router is {self.strategy!r}"
            )

    def _next_session(self) -> InferenceSession:
        self.n_calls += 1
        device = self._next_healthy()
        return self._sessions[device]

    def _next_healthy(self) -> int:
        """Advance the round-robin pointer to the next healthy device."""
        n = len(self._sessions) if self._sessions else len(self._batchers)
        for _ in range(n):
            device = self._round_robin
            self._round_robin = (self._round_robin + 1) % n
            if self._healthy[device]:
                return device
        raise DeviceError(
            "every replica is marked unhealthy; restore one with "
            "mark_healthy() before serving"
        )

    def _partitioned_proba(self, data: mops.MatrixLike) -> np.ndarray:
        """Chunked probabilities over the partial-decision reduce.

        Chunk boundaries and the probability tail replicate
        ``InferenceSession._serve_proba`` on the full model exactly; only
        the decision values inside each chunk come from the shards.
        """
        self.n_calls += 1
        root = self._root_engine()
        m = mops.n_rows(data)
        for shard in self._shards:
            self.pool.host_to_device(shard.device, mops.matrix_nbytes(data))
        probabilities = np.empty((m, self.model.n_classes))
        batch = (
            self._budget_rows
            if self.config.batch_size is not None
            else max(1, min(m, self._budget_rows))
        )
        with maybe_span(
            self._tracer,
            "serve_proba",
            clock=root.clock,
            n_instances=m,
            batch_size=batch,
            n_shards=len(self._shards),
        ):
            for start in range(0, m, batch):
                stop = min(start + batch, m)
                chunk = (
                    data
                    if start == 0 and stop == m
                    else mops.take_rows(
                        data, np.arange(start, stop, dtype=np.int64)
                    )
                )
                decisions = self._reduce_decisions(chunk, transfer=False)
                probabilities[start:stop] = probabilities_from_decisions(
                    root,
                    self.model,
                    decisions,
                    coupling_method=self.config.coupling_method,
                )
        return probabilities

    def _reduce_decisions(
        self, data: mops.MatrixLike, *, transfer: bool = False
    ) -> np.ndarray:
        """Partial-decision-value reduce across the shards.

        Every shard computes its SVM columns against its sub-pool, ships
        the ``(m, n_svms_shard)`` partial to the root device over the peer
        links, and the full ``(m, n_svms)`` matrix is assembled in global
        SVM order.
        """
        root = self._root_engine()
        m = mops.n_rows(data)
        out = np.empty((m, len(self.model.sv_pool.svms)))
        with maybe_span(
            self._tracer,
            "shard_reduce",
            clock=root.clock,
            n_instances=m,
            n_shards=len(self._shards),
        ) as span:
            reduced_bytes = 0
            for shard in self._shards:
                engine = self.pool.engine(shard.device)
                if transfer:
                    self.pool.host_to_device(
                        shard.device, mops.matrix_nbytes(data)
                    )
                norms_test = (
                    KernelFunction.compute_norms(
                        engine, data, category="decision_values"
                    )
                    if self.model.kernel.needs_norms
                    else None
                )
                block = shard.computer.block(
                    data, norms_other=norms_test, category="decision_values"
                )
                out[:, shard.svm_indices] = (
                    shard.pool.decision_values_from_block(
                        engine, block, category="decision_values"
                    )
                )
                payload = m * shard.n_svms * FLOAT_BYTES
                self.pool.device_to_device(shard.device, 0, payload)
                if shard.device != 0:
                    reduced_bytes += payload
            span.set(reduced_bytes=reduced_bytes)
        return out

    def _root_engine(self):
        return self.pool.engine(0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedInferenceRouter({self.cluster.name}, "
            f"strategy={self.strategy!r})"
        )
