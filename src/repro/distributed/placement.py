"""Assigning the k(k-1)/2 pairwise problems to cluster devices.

The paper's Figure 3 observes that pairwise SVMs overlap heavily in the
kernel blocks they touch: SVM (s, t) needs exactly the class blocks of s
and of t.  On one device that graph drives cross-SVM kernel-value sharing;
across devices it is the *placement constraint* — co-locating pairs that
share a class means the shared segment store on that device serves both,
and the device only holds that class's training rows once.

Two strategies, both deterministic:

- ``affinity`` — greedy longest-processing-time packing with a class-
  affinity tie-break, followed by a makespan refinement pass.  Problems
  are placed heaviest-first onto the least-loaded device, except that a
  device already hosting both (or one) of the problem's classes wins among
  devices whose projected load is within one problem of the minimum.  The
  refinement pass then tries to move single problems off the critical
  device while that strictly lowers the estimated makespan.
- ``round_robin`` — problem ``i`` to device ``i % n``, the baseline that
  ignores the affinity graph (useful as a control, and what a naive
  sharder would do).

Hierarchical clusters: passing the :class:`~repro.distributed.cluster.
ClusterSpec` makes the affinity strategy *topology-aware* — after the
device-level class overlap, ties prefer a device whose **node** already
hosts the problem's classes, so class blocks duplicate across as few
node boundaries as possible and any cross-device traffic those problems
cause rides the fast intra-node tier.  On a flat (single-node) cluster
the node-level tie-break is a constant and the plan is unchanged, which
preserves the bitwise-parity guarantee of the existing paths.

The estimated cost of a problem is ``n^2`` (SMO work grows superlinearly
with the pair's instance count; the quadratic proxy orders pairs the same
way the measured solves do).  Placement never affects trained *values* —
every schedule produces bitwise-identical models (see
``repro.distributed.trainer``) — only the simulated makespan, memory
residency and transfer volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ValidationError

__all__ = ["PlacementPlan", "plan_placement", "PLACEMENT_STRATEGIES"]

PLACEMENT_STRATEGIES = ("affinity", "round_robin")

# Refinement passes over the critical device (each pass is O(n_problems *
# n_devices)); two passes settle every workload the tests exercise.
_REFINE_PASSES = 4


@dataclass
class PlacementPlan:
    """Which device runs which pairwise problem, plus load estimates."""

    strategy: str
    n_devices: int
    # assignments[i] = device of problem i (problem order = trainer order).
    assignments: list[int]
    # Estimated compute load per device (sum of n^2 over its problems).
    device_load: list[float]
    # Class positions resident per device (drives transfer/memory sizing).
    device_classes: list[set] = field(default_factory=list)
    # Topology (1 for flat clusters): node count and device -> node map.
    n_nodes: int = 1
    node_map: list[int] = field(default_factory=list)

    @property
    def device_problems(self) -> list[list[int]]:
        """Problem indices per device, each in global problem order."""
        groups: list[list[int]] = [[] for _ in range(self.n_devices)]
        for problem_index, device in enumerate(self.assignments):
            groups[device].append(problem_index)
        return groups

    @property
    def balance(self) -> float:
        """Max device load over mean device load (1.0 = perfectly even)."""
        loads = [load for load in self.device_load if load > 0]
        if not loads:
            return 1.0
        mean = sum(self.device_load) / self.n_devices
        return max(self.device_load) / mean if mean > 0 else 1.0

    @property
    def node_classes(self) -> list[set]:
        """Class positions resident per node (union over its devices)."""
        node_map = self.node_map or [0] * self.n_devices
        n_nodes = max(self.n_nodes, 1)
        groups: list[set] = [set() for _ in range(n_nodes)]
        for device, classes in enumerate(self.device_classes):
            groups[node_map[device]].update(classes)
        return groups

    def summary(self) -> dict:
        """JSON-ready description of the placement."""
        return {
            "strategy": self.strategy,
            "n_devices": self.n_devices,
            "n_nodes": int(max(self.n_nodes, 1)),
            "assignments": list(map(int, self.assignments)),
            "device_load": [float(load) for load in self.device_load],
            "device_classes": [
                sorted(map(int, classes)) for classes in self.device_classes
            ],
            "node_classes": [
                sorted(map(int, classes)) for classes in self.node_classes
            ],
            "balance": float(self.balance),
        }


def _problem_classes(problem) -> tuple:
    """Class positions a pairwise (or one-vs-all) problem touches."""
    if problem.t >= 0:
        return (problem.s, problem.t)
    return (problem.s,)


def plan_placement(
    problems: list,
    n_devices: int,
    *,
    strategy: str = "affinity",
    cluster=None,
) -> PlacementPlan:
    """Assign every problem to a device under the chosen strategy.

    ``problems`` are the trainer's pairwise problems in canonical order
    (each carries ``s``, ``t`` and ``n``); the plan's ``assignments`` are
    aligned with that order.  ``cluster`` optionally names the
    :class:`~repro.distributed.cluster.ClusterSpec` being planned for —
    a hierarchical cluster makes the affinity tie-break node-aware (see
    the module docstring); a flat cluster or ``None`` plans exactly as
    before.
    """
    if strategy not in PLACEMENT_STRATEGIES:
        raise ValidationError(
            f"placement strategy must be one of {PLACEMENT_STRATEGIES}, "
            f"got {strategy!r}"
        )
    if n_devices < 1:
        raise ValidationError(f"n_devices must be >= 1, got {n_devices}")
    if cluster is not None and cluster.n_devices != n_devices:
        raise ValidationError(
            f"cluster has {cluster.n_devices} devices but the placement "
            f"was asked for {n_devices}"
        )
    n_nodes = cluster.n_nodes if cluster is not None else 1
    node_map = (
        [cluster.node_of(d) for d in range(n_devices)]
        if cluster is not None
        else [0] * n_devices
    )

    weights = [float(problem.n) ** 2 for problem in problems]
    if strategy == "round_robin" or n_devices == 1:
        assignments = [index % n_devices for index in range(len(problems))]
    else:
        assignments = _affinity_assign(problems, weights, n_devices, node_map)
        assignments = _refine(problems, weights, n_devices, assignments)

    device_load = [0.0] * n_devices
    device_classes: list[set] = [set() for _ in range(n_devices)]
    for index, device in enumerate(assignments):
        device_load[device] += weights[index]
        device_classes[device].update(_problem_classes(problems[index]))
    return PlacementPlan(
        strategy=strategy,
        n_devices=n_devices,
        assignments=assignments,
        device_load=device_load,
        device_classes=device_classes,
        n_nodes=n_nodes,
        node_map=node_map,
    )


def _affinity_assign(
    problems: list, weights: list, n_devices: int, node_map: list
) -> list[int]:
    """Greedy heaviest-first placement with a class-affinity tie-break."""
    order = sorted(
        range(len(problems)), key=lambda i: (-weights[i], i)
    )
    n_nodes = max(node_map) + 1 if node_map else 1
    load = [0.0] * n_devices
    classes: list[set] = [set() for _ in range(n_devices)]
    node_classes: list[set] = [set() for _ in range(n_nodes)]
    assignments = [0] * len(problems)
    for index in order:
        touched = _problem_classes(problems[index])
        projected = [load[d] + weights[index] for d in range(n_devices)]
        best = min(projected)
        # Devices whose projected load is within one problem of the best
        # are all acceptable; among them, prefer the one already hosting
        # the most of this problem's classes (fewer duplicated class
        # blocks, better segment-share reuse), then — on hierarchical
        # clusters — the one whose *node* hosts them (cross-device reuse
        # stays on the fast tier; a constant on flat clusters), then the
        # emptier one.
        eligible = [
            d for d in range(n_devices)
            if projected[d] <= best + weights[index]
        ]
        device = min(
            eligible,
            key=lambda d: (
                -sum(1 for c in touched if c in classes[d]),
                -sum(1 for c in touched if c in node_classes[node_map[d]]),
                projected[d],
                d,
            ),
        )
        assignments[index] = device
        load[device] += weights[index]
        classes[device].update(touched)
        node_classes[node_map[device]].update(touched)
    return assignments


def _refine(
    problems: list,
    weights: list,
    n_devices: int,
    assignments: list[int],
) -> list[int]:
    """Move single problems off the critical device while makespan drops."""
    assignments = list(assignments)
    load = [0.0] * n_devices
    for index, device in enumerate(assignments):
        load[device] += weights[index]
    for _ in range(_REFINE_PASSES):
        critical = max(range(n_devices), key=lambda d: (load[d], d))
        moved = False
        for index in range(len(problems)):
            if assignments[index] != critical:
                continue
            for target in sorted(
                range(n_devices), key=lambda d: (load[d], d)
            ):
                if target == critical:
                    continue
                new_max = max(
                    load[critical] - weights[index],
                    load[target] + weights[index],
                    *(
                        load[d]
                        for d in range(n_devices)
                        if d not in (critical, target)
                    ),
                )
                if new_max < load[critical]:
                    assignments[index] = target
                    load[critical] -= weights[index]
                    load[target] += weights[index]
                    moved = True
                    break
            if moved:
                break
        if not moved:
            break
    return assignments
