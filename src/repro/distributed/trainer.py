"""Sharded multi-class training over a simulated GPU cluster.

The one-against-one decomposition hands us k(k-1)/2 *independent* binary
problems — the natural unit of distribution (Govada et al.'s observation).
This driver:

1. plans a placement of the pairwise problems onto the cluster's devices
   (:mod:`repro.distributed.placement`);
2. per device, ships the class blocks its problems need over the host
   link, builds the same cross-SVM segment share single-device training
   uses, and runs the existing resumable wave driver
   (:func:`repro.core.interleave.run_interleaved`) over that device's
   members — every device reuses the single-device execution machinery
   unchanged, under a ``cluster_wave`` telemetry span;
3. gathers the per-device binary models to the root device over the peer
   links (``shard_merge`` span) and assembles one unified
   :class:`~repro.multiclass.sv_sharing.SupportVectorPool` in global
   problem order.

**Bitwise parity.**  Every per-pair solve consumes kernel values computed
per (instance row, full class column block) through the fixed-tile matmul
discipline (``repro.sparse.ops``), so segment values are pure functions of
the operand rows — independent of which device computes them, what else
shares its waves, and where its tiles sit.  Finalization and pool assembly
run in global problem order regardless of placement.  Training on any
device count with any placement therefore produces records, pool and
sigmoids bit-for-bit identical to ``train_multiclass`` on one device; only
the *simulated timeline* (makespan, transfers, utilization) changes.

Host-side note: arrays are plain NumPy and are not physically partitioned
— the *cost model* charges each device for exactly the class-block bytes
its placement requires, which is what the simulation measures.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Optional

import numpy as np

from repro.core.interleave import run_interleaved
from repro.core.trainer import (
    TrainerConfig,
    _class_weighted_penalties,
    _finalize_member,
    _finalize_pair,
    _interleave_limits,
    _make_pair_member,
    _make_shared_store,
)
from repro.distributed.cluster import ClusterSpec, DevicePool
from repro.distributed.placement import plan_placement
from repro.exceptions import DeviceLostError, SolverError, ValidationError
from repro.faults.checkpoint import (
    CheckpointStore,
    SessionSnapshot,
    TrainingCheckpoint,
)
from repro.faults.plan import FaultInjector, FaultPlan
from repro.gpusim.clock import SimClock
from repro.gpusim.counters import OpCounters
from repro.gpusim.engine import FLOAT_BYTES, make_engine
from repro.kernels.functions import KernelFunction
from repro.model.multiclass import MPSVMModel
from repro.multiclass.decomposition import class_partition, pair_problems
from repro.multiclass.sv_sharing import SupportVectorPool
from repro.sparse import ops as mops
from repro.telemetry.schema import REPORT_SCHEMA_VERSION
from repro.telemetry.tracer import _json_safe, maybe_span

__all__ = ["ClusterTrainingReport", "train_multiclass_sharded"]

# Per-record constants shipped in the SV merge besides the index and
# coefficient arrays: (s, t, bias, iteration count) plus sigmoid (A, B).
_RECORD_HEADER_BYTES = 6 * FLOAT_BYTES


@dataclass
class ClusterTrainingReport:
    """What one sharded training run cost across the cluster."""

    simulated_seconds: float  # cluster makespan (busiest device)
    clock: SimClock  # merged per-category breakdown, all devices
    counters: OpCounters  # aggregate op totals, all devices
    cluster_name: str
    n_devices: int
    n_binary_svms: int = 0
    total_iterations: int = 0
    kernel_rows_computed: int = 0
    max_concurrency: int = 1  # largest wave on any single device
    # Sum of per-device busy seconds over the makespan: how much faster
    # the cluster ran than the same work laid end to end on one device.
    cluster_speedup: float = 1.0
    transfer_bytes_total: int = 0
    merge_bytes: int = 0
    placement: dict = field(default_factory=dict)
    # One entry per device: timeline, utilization, transfers, work totals.
    per_device: list[dict] = field(default_factory=list)
    per_svm: list[dict] = field(default_factory=list)
    schedule_source: str = "cluster_wave"
    # Fault-injection outcome: empty for a nominal run; otherwise the
    # plan, which losses fired, checkpoint and recovery accounting.
    faults: dict = field(default_factory=dict)
    # One entry per cascade-routed pair (instance-sharded training, see
    # repro.cascade): the pair, its owning (root) device, and the full
    # CascadeReport snapshot — per-level timelines, SV survival ratios,
    # feedback accounting, per-tier transfer bytes.
    cascade: list = field(default_factory=list)
    # Interconnect bytes split by link tier (host / intra-node peer /
    # inter-node), the whole run.
    transfer_tier_bytes: dict = field(default_factory=dict)

    @property
    def total_busy_seconds(self) -> float:
        """Sum of every device's busy time (the serial-equivalent load)."""
        return sum(entry["simulated_seconds"] for entry in self.per_device)

    def breakdown(self) -> dict[str, float]:
        """Simulated seconds per cost category, summed across devices."""
        return self.clock.breakdown()

    def to_dict(self) -> dict[str, Any]:
        """A flat, JSON-native, schema-versioned snapshot of this report."""
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "kind": "cluster_training_report",
            "cluster_name": self.cluster_name,
            "n_devices": self.n_devices,
            "simulated_seconds": self.simulated_seconds,
            "breakdown": self.breakdown(),
            "counters": asdict(self.counters),
            "n_binary_svms": self.n_binary_svms,
            "total_iterations": self.total_iterations,
            "kernel_rows_computed": self.kernel_rows_computed,
            "max_concurrency": self.max_concurrency,
            "cluster_speedup": self.cluster_speedup,
            "transfer_bytes_total": self.transfer_bytes_total,
            "merge_bytes": self.merge_bytes,
            "placement": _json_safe(self.placement),
            "per_device": _json_safe(self.per_device),
            "per_svm": _json_safe(self.per_svm),
            "schedule_source": self.schedule_source,
            "faults": _json_safe(self.faults),
            "cascade": _json_safe(self.cascade),
            "transfer_tier_bytes": _json_safe(self.transfer_tier_bytes),
        }

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """The :meth:`to_dict` snapshot serialized to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)


def _check_config(config: TrainerConfig, cluster: ClusterSpec) -> TrainerConfig:
    """Align the trainer config with the cluster's device."""
    if config.solver != "batched":
        raise ValidationError(
            "sharded training drives resumable batched-SMO sessions; "
            f"solver {config.solver!r} is not distributable"
        )
    if config.decomposition != "ovo":
        raise ValidationError(
            "sharded training partitions the one-against-one problems; "
            f"decomposition {config.decomposition!r} is not supported"
        )
    if config.device is not cluster.device:
        config = replace(config, device=cluster.device)
    return config


def _class_block_bytes(data: mops.MatrixLike, partition: dict) -> list[int]:
    """Estimated resident bytes of each class's training-row block."""
    total_rows = max(mops.n_rows(data), 1)
    per_row = mops.matrix_nbytes(data) / total_rows
    return [
        int(round(partition[position].size * per_row))
        for position in range(len(partition))
    ]


def _record_payload_bytes(record) -> int:
    """Interconnect bytes one binary model costs in the SV merge."""
    return int(
        record.global_sv_indices.size * FLOAT_BYTES
        + record.coefficients.size * FLOAT_BYTES
        + _RECORD_HEADER_BYTES
    )


def _member_snapshot(member) -> SessionSnapshot:
    """One member's resumable solver state as a checkpoint snapshot."""
    state = member.session.snapshot_state()
    return SessionSnapshot(
        problem_index=member.index,
        alpha=state["alpha"],
        f=state["f"],
        rounds=state["rounds"],
        inner_total=state["inner_total"],
        ws_order=tuple(state["ws_order"]),
        stalled=state["stalled"],
        converged=state["converged"],
        finished=state["finished"],
    )


def train_multiclass_sharded(
    config: TrainerConfig,
    cluster: ClusterSpec,
    data: mops.MatrixLike,
    y: np.ndarray,
    kernel: KernelFunction,
    penalty: float,
    *,
    placement: str = "affinity",
    fault_plan: Optional[FaultPlan] = None,
    checkpoint_every: int = 4,
    checkpoint_dir: Optional[object] = None,
    cascade: Optional[object] = None,
) -> tuple[MPSVMModel, ClusterTrainingReport]:
    """Train a multi-class SVM sharded across a simulated cluster.

    Models and probabilities are bitwise identical to single-device
    :func:`~repro.core.trainer.train_multiclass` under the same config,
    for every device count and placement strategy (see the module
    docstring); the report carries the cluster timeline instead.

    ``cascade`` (a :class:`repro.cascade.CascadeConfig`, or the one on
    ``config.cascade``) additionally routes pairwise problems with at
    least ``cascade.threshold`` instances through the instance-sharded
    cascade driver across the *whole* cluster — seeded shards, pairwise
    SV merges up a topology-aware reduction tree, global-KKT feedback —
    before the remaining pairs run the bitwise pair-sharded path.
    Cascade-routed pairs are approximate under an explicit dual-gap
    budget (the bitwise guarantee above then covers only the unrouted
    pairs); the report's ``cascade`` section carries each routed pair's
    per-level timeline, SV survival and per-tier transfer bytes.
    Cascade routing cannot be combined with ``fault_plan`` here — for
    faults during a cascade, drive :func:`repro.cascade.train_cascade`
    directly.

    ``fault_plan`` injects scripted faults (see :mod:`repro.faults`):
    stragglers stretch the affected device's timeline; a scripted device
    loss aborts that device at the next wave boundary, after which the
    lost device's problems are re-placed onto the survivors (elastic
    re-placement through the same planner) and resumed from the last
    checkpoint — the final model stays **bitwise identical** to the
    fault-free run, because a restored session's state fully determines
    its remaining iterates.  Checkpoints are taken every
    ``checkpoint_every`` waves per device (their device→host shipping
    cost lands on the simulated clocks) and persisted to
    ``checkpoint_dir`` when given; without a fault plan no checkpoint
    machinery runs unless ``checkpoint_dir`` asks for durability.
    Losses scheduled after a device finished are no-ops, lost devices
    stay lost, and recovery itself runs fault-free (the supported model
    is one failure per device per run).

    With ``config.tracer`` set, the run is recorded as a
    ``train_cluster`` root span over per-device ``cluster_wave`` spans,
    ``transfer`` spans for every interconnect copy, a ``fault_recovery``
    span when a loss fired, and one ``shard_merge`` span for the SV
    gather.
    """
    tracer = config.tracer
    config = _check_config(config, cluster)
    if checkpoint_every < 1:
        raise ValidationError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}"
        )
    labels = np.asarray(y).ravel()
    classes, partition = class_partition(labels)
    if config.force_dense:
        data = mops.to_dense(data)
    problems = list(pair_problems(classes, partition))

    # Instance-sharded cascade routing: the routed pairs train across
    # the whole pool before the per-device phase; placement then covers
    # only the remaining (bitwise pair-sharded) problems.
    cascade_cfg = cascade if cascade is not None else config.cascade
    cascade_indices: set[int] = set()
    if cascade_cfg is not None and cascade_cfg.n_shards > 1:
        from repro.cascade.config import CascadeConfig

        if not isinstance(cascade_cfg, CascadeConfig):
            raise ValidationError(
                "cascade must be a repro.cascade.CascadeConfig, got "
                f"{type(cascade_cfg).__name__}"
            )
        if fault_plan is not None and not fault_plan.is_empty:
            raise ValidationError(
                "cascade routing and fault injection cannot be combined "
                "in sharded training; drive repro.cascade.train_cascade "
                "directly to exercise faults mid-cascade"
            )
        cascade_indices = {
            index
            for index, problem in enumerate(problems)
            if problem.n >= cascade_cfg.threshold
        }
    small_indices = [
        index for index in range(len(problems)) if index not in cascade_indices
    ]
    plan = plan_placement(
        [problems[index] for index in small_indices],
        cluster.n_devices,
        strategy=placement,
        cluster=cluster,
    )
    # Per-device problem lists and classes in *global* problem indices
    # (the plan is over the unrouted subset only).
    device_problems = [
        [small_indices[local] for local in plan.device_problems[device]]
        for device in range(cluster.n_devices)
    ]
    injector = (
        FaultInjector(fault_plan, cluster.n_devices)
        if fault_plan is not None and not fault_plan.is_empty
        else None
    )
    # ":memory:" opts into checkpointing (same simulated shipping cost)
    # without persistence — what a fault-free baseline run uses to be
    # timeline-comparable with a faulted one.
    store_root = None if checkpoint_dir == ":memory:" else checkpoint_dir
    store = (
        CheckpointStore(store_root)
        if injector is not None or checkpoint_dir is not None
        else None
    )
    pool = DevicePool(
        cluster,
        flop_efficiency=config.flop_efficiency,
        bandwidth_efficiency=config.bandwidth_efficiency,
        backend=config.backend,
        tracer=tracer,
        fault_injector=injector,
    )
    block_bytes = _class_block_bytes(data, partition)

    with maybe_span(
        tracer,
        "train_cluster",
        n_devices=cluster.n_devices,
        n_instances=mops.n_rows(data),
        n_binary_svms=len(problems),
        placement=placement,
    ) as root_span:
        finals: dict[int, tuple] = {}  # problem index -> finalize outputs
        # Per-device accumulators; device master clocks live in the pool.
        member_clocks = [SimClock() for _ in range(cluster.n_devices)]
        device_stats = [
            {"iterations": 0, "kernel_rows": 0, "resident_bytes": 0,
             "max_concurrency": 1, "wave_trace": None, "lost": False}
            for _ in range(cluster.n_devices)
        ]
        max_concurrency = 1
        # Final problem ownership: starts at the plan, moves to survivors
        # when a loss forces re-placement (drives the merge payloads).
        # Cascade-routed pairs land on their reduction-tree root device.
        owner = [0] * len(problems)
        for position, index in enumerate(small_indices):
            owner[index] = plan.assignments[position]
        lost_devices: dict[int, float] = {}  # device -> simulated loss time

        # ----------------------------------------------------------
        # Cascade phase: the routed pairs train instance-sharded over
        # the whole pool, one at a time (each cascade already fills
        # every device), before the per-device pair phase.
        # ----------------------------------------------------------
        cascade_entries: list[dict] = []
        if cascade_indices:
            from repro.cascade.driver import _cascade_solve
        for index in sorted(cascade_indices):
            problem = problems[index]
            pair_data = mops.take_rows(data, problem.global_indices)
            penalty_vector = _class_weighted_penalties(
                config, classes, problem, penalty
            )
            result, casc_report = _cascade_solve(
                config,
                cascade_cfg,
                pool,
                pair_data,
                problem.labels,
                kernel,
                penalty,
                penalty_vector=penalty_vector,
                store=store,
                checkpoint_every=checkpoint_every,
                member_clocks=member_clocks,
                tracer=tracer,
            )
            root_device = int(casc_report.tree["root_device"])
            owner[index] = root_device
            finalize_engine = make_engine(
                config.device,
                flop_efficiency=config.flop_efficiency,
                bandwidth_efficiency=config.bandwidth_efficiency,
                backend=config.backend,
                counters=pool.engine(root_device).counters,
            )
            record, pool_entry, svm_stats = _finalize_pair(
                config, finalize_engine, problem, result, data, kernel,
                penalty, penalty_vector=penalty_vector, pair_data=pair_data,
            )
            svm_stats["warm_start"] = False
            svm_stats["cascade"] = {
                "n_shards": casc_report.n_shards,
                "feedback_rounds": casc_report.feedback_rounds,
                "final_gap": casc_report.final_gap,
                "gap_budget": casc_report.gap_budget,
                "budget_met": casc_report.budget_met,
                "sv_survival": casc_report.sv_survival,
                "transfer_bytes": dict(casc_report.transfer_bytes),
                "levels": [
                    {k: v for k, v in level.items()
                     if k not in ("merges", "shards")}
                    for level in casc_report.levels
                ],
            }
            finals[index] = (record, pool_entry, svm_stats)
            member_clocks[root_device].merge(finalize_engine.clock)
            stats = device_stats[root_device]
            stats["iterations"] += result.iterations
            stats["kernel_rows"] += result.kernel_rows_computed
            cascade_entries.append(
                {
                    "index": index,
                    "pair": (problem.s, problem.t),
                    "root_device": root_device,
                    "report": casc_report.to_dict(),
                }
            )
            if tracer is not None:
                tracer.bind_clock(None)

        for device in range(cluster.n_devices):
            problem_indices = device_problems[device]
            master = pool.engine(device)
            if tracer is not None:
                tracer.bind_clock(master.clock)
            resident = sum(
                block_bytes[c] for c in sorted(plan.device_classes[device])
            )
            device_stats[device]["resident_bytes"] = resident
            with maybe_span(
                tracer,
                "cluster_wave",
                clock=master.clock,
                device=device,
                n_svms=len(problem_indices),
                resident_bytes=resident,
            ) as device_span:
                # Ship this device's class blocks over the host link.
                pool.host_to_device(device, resident)
                if not problem_indices:
                    continue
                shared, shared_computer = _make_shared_store(
                    config, master, kernel, data, classes, partition
                )
                members = [
                    _make_pair_member(
                        config,
                        classes,
                        index,
                        problems[index],
                        penalty,
                        data,
                        kernel,
                        shared=shared,
                        shared_computer=shared_computer,
                        counters=master.counters,
                    )
                    for index in problem_indices
                ]
                if injector is not None:
                    rate = injector.straggler_rate(device)
                    if rate != 1.0:
                        for member in members:
                            member.engine.clock.rate = rate
                loss_at = (
                    injector.loss_time(device) if injector is not None else None
                )
                on_wave = None
                if loss_at is not None or store is not None:

                    def on_wave(
                        wave_index,
                        running,
                        finished,
                        wave_outcome,
                        *,
                        _device=device,
                        _members=members,
                        _master=master,
                        _loss_at=loss_at,
                    ):
                        # Device time so far: master charges (transfers,
                        # prefetches) plus the wave-scaled member time.
                        now_s = (
                            _master.clock.elapsed_s
                            + wave_outcome.timeline.elapsed_s
                        )
                        # Loss first: a checkpoint "taken" on the wave
                        # that crosses the loss time would never have
                        # reached the host.
                        if _loss_at is not None and now_s >= _loss_at:
                            injector.check_device(_device, now_s)
                        if store is not None and wave_index % checkpoint_every == 0:
                            checkpoint = TrainingCheckpoint(
                                device=_device,
                                wave=wave_index,
                                simulated_s=now_s,
                                snapshots={
                                    m.index: _member_snapshot(m)
                                    for m in _members
                                },
                            )
                            pool.device_to_host(
                                _device,
                                checkpoint.nbytes,
                                category="checkpoint",
                            )
                            store.save(checkpoint)

                limits = _interleave_limits(config, resident)
                try:
                    outcome = run_interleaved(
                        members,
                        limits,
                        shared=shared,
                        tracer=tracer,
                        span_clock=master.clock,
                        on_wave=on_wave,
                    )
                except DeviceLostError as exc:
                    # Everything resident on the device dies with it —
                    # nothing finalizes here; recovery resumes the
                    # device's problems on survivors from the last
                    # shipped checkpoint (possibly from scratch).  Its
                    # clock stops at the loss, so the inflated makespan
                    # is carried by the survivors that absorb the work.
                    lost_devices[device] = exc.at_s
                    device_stats[device]["lost"] = True
                    device_span.set(lost=True, lost_at_s=exc.at_s)
                    continue
                max_concurrency = max(max_concurrency, outcome.max_concurrency)

                # Finalize this device's members (assembly restores global
                # order below; finalization order is irrelevant to the
                # numerics and each charge lands on its own engine).
                finalize_clock = SimClock()
                stats = device_stats[device]
                for member in members:
                    finals[member.index] = _finalize_member(
                        config, classes, member, data, kernel, penalty, tracer
                    )
                    finalize_clock.merge(finals[member.index][3])
                    stats["iterations"] += member.result.iterations
                    stats["kernel_rows"] += member.result.kernel_rows_computed

                member_clocks[device].merge(outcome.timeline)
                member_clocks[device].merge(finalize_clock)
                stats["max_concurrency"] = outcome.max_concurrency
                stats["wave_trace"] = outcome.wave_trace
                device_span.set(
                    simulated_seconds=(
                        master.clock.elapsed_s
                        + member_clocks[device].elapsed_s
                    ),
                    max_concurrency=outcome.max_concurrency,
                    iterations=stats["iterations"],
                )
            if tracer is not None:
                tracer.bind_clock(None)

        # --------------------------------------------------------------
        # Recovery: re-place every lost device's problems onto the
        # survivors (same planner, elastic) and resume them from the
        # last shipped checkpoint.  A restored session's state fully
        # determines its remaining iterates, so the recovered model is
        # bitwise the fault-free one; only the timeline pays.
        # --------------------------------------------------------------
        recovery: dict = {}
        if lost_devices:
            survivors = [
                d for d in range(cluster.n_devices) if d not in lost_devices
            ]
            if not survivors:
                raise SolverError(
                    "every device in the cluster was lost; nothing "
                    "survives to recover on"
                )
            lost_indices = sorted(
                index
                for device in lost_devices
                for index in device_problems[device]
            )
            snapshots: dict[int, SessionSnapshot] = {}
            if store is not None:
                for device in lost_devices:
                    checkpoint = store.latest(device)
                    if checkpoint is not None:
                        snapshots.update(checkpoint.snapshots)
            replan = plan_placement(
                [problems[index] for index in lost_indices],
                len(survivors),
                strategy=placement,
            )
            with maybe_span(
                tracer,
                "fault_recovery",
                n_problems=len(lost_indices),
                n_survivors=len(survivors),
                resumed_from_checkpoint=sum(
                    1 for index in lost_indices if index in snapshots
                ),
            ):
                for position, survivor in enumerate(survivors):
                    local = replan.device_problems[position]
                    if not local:
                        continue
                    indices = [lost_indices[j] for j in local]
                    master = pool.engine(survivor)
                    if tracer is not None:
                        tracer.bind_clock(master.clock)
                    stats = device_stats[survivor]
                    # Class blocks these problems need beyond what the
                    # survivor already holds, plus the checkpoint upload.
                    needed: set = set()
                    for index in indices:
                        needed.update(
                            (problems[index].s, problems[index].t)
                        )
                    already = set(plan.device_classes[survivor])
                    extra = sum(
                        block_bytes[c] for c in sorted(needed - already)
                    )
                    with maybe_span(
                        tracer,
                        "cluster_wave",
                        clock=master.clock,
                        device=survivor,
                        n_svms=len(indices),
                        resident_bytes=extra,
                        recovery=True,
                    ) as recovery_span:
                        if extra:
                            pool.host_to_device(survivor, extra)
                        restore_bytes = sum(
                            snapshots[index].nbytes
                            for index in indices
                            if index in snapshots
                        )
                        if restore_bytes:
                            pool.host_to_device(
                                survivor, restore_bytes, category="checkpoint"
                            )
                        shared, shared_computer = _make_shared_store(
                            config, master, kernel, data, classes, partition
                        )
                        recovered = [
                            _make_pair_member(
                                config,
                                classes,
                                index,
                                problems[index],
                                penalty,
                                data,
                                kernel,
                                shared=shared,
                                shared_computer=shared_computer,
                                counters=master.counters,
                            )
                            for index in indices
                        ]
                        rate = injector.straggler_rate(survivor)
                        if rate != 1.0:
                            for member in recovered:
                                member.engine.clock.rate = rate
                        for member in recovered:
                            snapshot = snapshots.get(member.index)
                            if snapshot is not None:
                                member.session.restore_state(
                                    {
                                        "alpha": snapshot.alpha,
                                        "f": snapshot.f,
                                        "rounds": snapshot.rounds,
                                        "inner_total": snapshot.inner_total,
                                        "ws_order": list(snapshot.ws_order),
                                        "stalled": snapshot.stalled,
                                        "converged": snapshot.converged,
                                        "finished": snapshot.finished,
                                    }
                                )
                        limits = _interleave_limits(
                            config, stats["resident_bytes"] + extra
                        )
                        outcome = run_interleaved(
                            recovered,
                            limits,
                            shared=shared,
                            tracer=tracer,
                            span_clock=master.clock,
                        )
                        max_concurrency = max(
                            max_concurrency, outcome.max_concurrency
                        )
                        finalize_clock = SimClock()
                        for member in recovered:
                            finals[member.index] = _finalize_member(
                                config,
                                classes,
                                member,
                                data,
                                kernel,
                                penalty,
                                tracer,
                            )
                            finalize_clock.merge(finals[member.index][3])
                            stats["iterations"] += member.result.iterations
                            stats["kernel_rows"] += (
                                member.result.kernel_rows_computed
                            )
                            owner[member.index] = survivor
                        member_clocks[survivor].merge(outcome.timeline)
                        member_clocks[survivor].merge(finalize_clock)
                        stats["resident_bytes"] += extra
                        stats["max_concurrency"] = max(
                            int(stats["max_concurrency"]),
                            outcome.max_concurrency,
                        )
                        if stats["wave_trace"] is None:
                            stats["wave_trace"] = list(outcome.wave_trace)
                        else:
                            stats["wave_trace"].extend(outcome.wave_trace)
                        recovery_span.set(
                            simulated_seconds=(
                                master.clock.elapsed_s
                                + member_clocks[survivor].elapsed_s
                            ),
                            iterations=stats["iterations"],
                        )
                    if tracer is not None:
                        tracer.bind_clock(None)
            recovery = {
                "devices_lost": {
                    int(device): float(lost_devices[device])
                    for device in sorted(lost_devices)
                },
                "survivors": [int(d) for d in survivors],
                "recovered_problems": len(lost_indices),
                "resumed_from_checkpoint": sum(
                    1 for index in lost_indices if index in snapshots
                ),
            }

        # --------------------------------------------------------------
        # Cross-device SV merge: gather every shard's binary models to
        # the root device, then build the unified pool in global problem
        # order.  The root is the lowest *surviving* device.
        # --------------------------------------------------------------
        root = next(
            d for d in range(cluster.n_devices) if d not in lost_devices
        )
        merge_bytes = 0
        root_engine = pool.engine(root)
        if tracer is not None:
            tracer.bind_clock(root_engine.clock)
        with maybe_span(
            tracer,
            "shard_merge",
            clock=root_engine.clock,
            root=root,
            n_binary_svms=len(problems),
        ) as merge_span:
            for device in range(cluster.n_devices):
                if device == root or device in lost_devices:
                    continue
                payload = sum(
                    _record_payload_bytes(finals[index][0])
                    for index in range(len(problems))
                    if owner[index] == device
                )
                merge_bytes += payload
                pool.device_to_device(device, root, payload)
            per_svm_records = [finals[i][0] for i in range(len(problems))]
            pool_entries = [finals[i][1] for i in range(len(problems))]
            per_svm_stats = [finals[i][2] for i in range(len(problems))]
            sv_pool = SupportVectorPool.build(data, pool_entries)
            merge_span.set(
                merge_bytes=merge_bytes,
                n_pool=sv_pool.n_pool,
                sharing_factor=sv_pool.sharing_factor,
            )
        if tracer is not None:
            tracer.bind_clock(None)

        # --------------------------------------------------------------
        # Cluster timeline: a device's busy time is its master clock
        # (transfers, shared prefetches, merge) plus its members' wave-
        # scaled solve/finalize time; the makespan is the busiest device.
        # --------------------------------------------------------------
        device_clocks: list[SimClock] = []
        for device in range(cluster.n_devices):
            clock = SimClock()
            clock.merge(pool.engine(device).clock)
            clock.merge(member_clocks[device])
            device_clocks.append(clock)
        makespan = max(clock.elapsed_s for clock in device_clocks)
        busy_total = sum(clock.elapsed_s for clock in device_clocks)

        per_device = []
        for device in range(cluster.n_devices):
            stats = device_stats[device]
            busy = device_clocks[device].elapsed_s
            per_device.append(
                {
                    "device": device,
                    "n_svms": len(device_problems[device]),
                    "iterations": int(stats["iterations"]),
                    "kernel_rows_computed": int(stats["kernel_rows"]),
                    "resident_bytes": int(stats["resident_bytes"]),
                    "simulated_seconds": float(busy),
                    "utilization": float(
                        busy / makespan if makespan > 0 else 0.0
                    ),
                    "transfer_bytes": pool.device_transfer_bytes(device),
                    "max_concurrency": int(stats["max_concurrency"]),
                    "lost": bool(stats["lost"]),
                    "wave_trace": stats["wave_trace"],
                }
            )

        model = MPSVMModel(
            classes=classes,
            kernel=kernel,
            penalty=float(penalty),
            records=per_svm_records,
            sv_pool=sv_pool,
            probability=config.probability,
            strategy=config.decomposition,
            metadata={
                "trainer": config.solver,
                "device": config.device.name,
                "backend": pool.engine(0).backend.name,
                "dtype": np.dtype(pool.engine(0).backend.dtype).name,
                "cluster_devices": cluster.n_devices,
                "placement": placement,
            },
        )

        faults: dict = {}
        if injector is not None:
            faults = injector.summary()
            faults["checkpoints_written"] = store.n_written if store else 0
            faults["recovery"] = recovery
        elif store is not None and store.n_written:
            faults = {"checkpoints_written": store.n_written}

        combined = SimClock()
        counters = OpCounters()
        for clock in device_clocks:
            combined.merge(clock)
        for engine in pool.engines:
            counters.merge(engine.counters)
        placement_summary = plan.summary()
        if cascade_indices:
            placement_summary["cascade_routed"] = sorted(
                int(index) for index in cascade_indices
            )
        report = ClusterTrainingReport(
            simulated_seconds=makespan,
            clock=combined,
            counters=counters,
            cluster_name=cluster.name,
            n_devices=cluster.n_devices,
            n_binary_svms=len(problems),
            total_iterations=sum(
                stats["iterations"] for stats in device_stats
            ),
            kernel_rows_computed=sum(
                stats["kernel_rows"] for stats in device_stats
            ),
            max_concurrency=max_concurrency,
            cluster_speedup=(busy_total / makespan if makespan > 0 else 1.0),
            transfer_bytes_total=pool.total_transfer_bytes,
            merge_bytes=merge_bytes,
            placement=placement_summary,
            per_device=per_device,
            per_svm=per_svm_stats,
            faults=faults,
            cascade=cascade_entries,
            transfer_tier_bytes=dict(pool.tier_bytes),
        )
        root_span.set(
            simulated_seconds=report.simulated_seconds,
            cluster_speedup=report.cluster_speedup,
            transfer_bytes_total=report.transfer_bytes_total,
            max_concurrency=report.max_concurrency,
        )
    return model, report
