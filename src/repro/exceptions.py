"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  The subclasses mirror the major
subsystems: data validation, sparse-matrix handling, the simulated GPU
device, and the optimisation solvers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ValidationError(ReproError, ValueError):
    """Invalid user input (bad shapes, labels, hyper-parameters)."""


class SparseFormatError(ReproError, ValueError):
    """Malformed CSR structure or unparsable LibSVM-format text."""


class DeviceError(ReproError, RuntimeError):
    """Base class for simulated-device failures."""


class DeviceMemoryError(DeviceError):
    """The simulated device ran out of global memory.

    Carries the request and the remaining capacity so callers (e.g. the
    MP-SVM scheduler) can react by lowering concurrency.
    """

    def __init__(self, requested_bytes: int, free_bytes: int) -> None:
        self.requested_bytes = int(requested_bytes)
        self.free_bytes = int(free_bytes)
        super().__init__(
            f"device out of memory: requested {self.requested_bytes} B, "
            f"only {self.free_bytes} B free"
        )


class DeviceStateError(DeviceError):
    """Illegal operation on the simulated device (double free, use after free)."""


class DeviceLostError(DeviceError):
    """A simulated device dropped out of the cluster mid-run.

    Raised by the fault-injection layer (:mod:`repro.faults`) when a
    scripted device loss fires; carries the device and the simulated
    time of the loss so recovery can re-place the device's pending work.
    """

    def __init__(self, device: int, at_s: float) -> None:
        self.device = int(device)
        self.at_s = float(at_s)
        super().__init__(
            f"device {self.device} lost at simulated t={self.at_s:.6f}s"
        )


class CheckpointError(ReproError, ValueError):
    """A training checkpoint is malformed, corrupt, or unsupported."""


class SolverError(ReproError, RuntimeError):
    """An optimisation solver failed to make progress or diverged."""


class ConvergenceWarning(UserWarning):
    """A solver hit its iteration cap before reaching the requested tolerance."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a fitted estimator was called before ``fit``."""


class ModelFormatError(ReproError, ValueError):
    """A persisted model file is malformed or has an unsupported version."""


class RegistryError(ReproError, RuntimeError):
    """A model-registry operation failed (corrupt manifest, missing or
    tampered artifact, unknown version)."""
