"""Deterministic fault injection and recovery over the simulated cluster.

Real GPU clusters straggle, drop devices and lose partial state mid-run;
the paper's concurrent multi-class training assumes none of that.  This
package makes failure a first-class, *reproducible* input to the
simulation:

- :mod:`~repro.faults.plan` — :class:`FaultPlan` scripts stragglers
  (per-device clock-rate multipliers), fail-stop device losses and
  transient link faults; :class:`FaultInjector` is its runtime side,
  queried by :class:`~repro.distributed.cluster.DevicePool` and the
  sharded trainer.  Seeded plans replay exactly.
- :mod:`~repro.faults.checkpoint` — versioned, lossless snapshots of
  resumable solver sessions; a restored session replays bitwise the
  rounds the lost device would have run, which is what makes the
  recovered model provably identical to the fault-free one.

The fault model is *fail-slow or fail-stop, never fail-wrong*: injected
faults stretch simulated timelines and destroy device-resident state,
but can never corrupt a value — every surviving answer is the right
answer, and every failure is an explicit error (DESIGN.md §15).
"""

from repro.faults.checkpoint import (
    CheckpointStore,
    SessionSnapshot,
    TrainingCheckpoint,
)
from repro.faults.plan import DeviceLoss, FaultInjector, FaultPlan, LinkFault

__all__ = [
    "CheckpointStore",
    "DeviceLoss",
    "FaultInjector",
    "FaultPlan",
    "LinkFault",
    "SessionSnapshot",
    "TrainingCheckpoint",
]
