"""Versioned training checkpoints: lossless session state on the host.

A checkpoint captures, per pairwise problem, the complete resumable
state of its :class:`~repro.solvers.batch_smo.BatchSMOSession` — the
dual weights ``alpha``, the optimality indicators ``f``, the round and
inner-iteration counters, the working-set FIFO and the termination
flags.  That tuple fully determines every future iterate of the solver
(kernel values are pure functions of the data rows under the fixed-tile
discipline), so a session restored from a checkpoint replays *bitwise*
the rounds the lost device would have run — the foundation of the
recovery path's model-parity guarantee.

The serialized form mirrors the registry's conventions (see
``repro.registry.store``): a JSON document with an explicit ``format``
name and integer ``version``, arrays encoded as lossless base64 of
their raw float64 bytes, written via temp-file + atomic rename so a
reader never observes a torn checkpoint.  Unknown formats, newer
versions and corrupt payloads raise
:class:`~repro.exceptions.CheckpointError`, never a silent wrong
restore.
"""

from __future__ import annotations

import base64
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.exceptions import CheckpointError

__all__ = ["SessionSnapshot", "TrainingCheckpoint", "CheckpointStore"]

CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_VERSION = 1


def _encode(array: np.ndarray) -> str:
    return base64.b64encode(
        np.ascontiguousarray(array, dtype=np.float64).tobytes()
    ).decode("ascii")


def _decode(payload: str, n: int) -> np.ndarray:
    try:
        raw = base64.b64decode(payload.encode("ascii"), validate=True)
    except Exception as exc:
        raise CheckpointError(f"array payload is not valid base64: {exc}") from exc
    array = np.frombuffer(raw, dtype=np.float64)
    if array.size != n:
        raise CheckpointError(
            f"array payload has {array.size} elements, expected {n}"
        )
    return array.copy()


@dataclass(frozen=True)
class SessionSnapshot:
    """Resumable state of one problem's solver session at a wave boundary."""

    problem_index: int
    alpha: np.ndarray
    f: np.ndarray
    rounds: int
    inner_total: int
    ws_order: tuple
    stalled: int
    converged: bool
    finished: bool

    @property
    def n(self) -> int:
        """Instance count of the binary problem."""
        return int(self.alpha.size)

    @property
    def nbytes(self) -> int:
        """Device-to-host payload this snapshot costs to ship."""
        return int(self.alpha.nbytes + self.f.nbytes + 8 * len(self.ws_order))

    def to_json(self) -> dict:
        """The snapshot's JSON object form (lossless)."""
        return {
            "problem_index": int(self.problem_index),
            "n": self.n,
            "alpha_b64": _encode(self.alpha),
            "f_b64": _encode(self.f),
            "rounds": int(self.rounds),
            "inner_total": int(self.inner_total),
            "ws_order": [int(i) for i in self.ws_order],
            "stalled": int(self.stalled),
            "converged": bool(self.converged),
            "finished": bool(self.finished),
        }

    @classmethod
    def from_json(cls, entry: dict) -> "SessionSnapshot":
        """Parse one snapshot; raise :class:`CheckpointError` when malformed."""
        try:
            n = int(entry["n"])
            return cls(
                problem_index=int(entry["problem_index"]),
                alpha=_decode(entry["alpha_b64"], n),
                f=_decode(entry["f_b64"], n),
                rounds=int(entry["rounds"]),
                inner_total=int(entry["inner_total"]),
                ws_order=tuple(int(i) for i in entry["ws_order"]),
                stalled=int(entry["stalled"]),
                converged=bool(entry["converged"]),
                finished=bool(entry["finished"]),
            )
        except CheckpointError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed session snapshot: {exc}") from exc


@dataclass(frozen=True)
class TrainingCheckpoint:
    """Everything one device had durably shipped at a wave boundary."""

    device: int
    wave: int
    simulated_s: float  # device timeline when the checkpoint was taken
    snapshots: dict = field(default_factory=dict)  # problem_index -> SessionSnapshot

    @property
    def nbytes(self) -> int:
        """Device-to-host bytes shipping this checkpoint costs."""
        return sum(snap.nbytes for snap in self.snapshots.values())

    def to_json(self) -> dict:
        """Self-describing JSON document (format + version header)."""
        return {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "device": int(self.device),
            "wave": int(self.wave),
            "simulated_s": float(self.simulated_s),
            "snapshots": [
                self.snapshots[index].to_json()
                for index in sorted(self.snapshots)
            ],
        }

    @classmethod
    def from_json(cls, raw: dict) -> "TrainingCheckpoint":
        """Parse a checkpoint document, validating format and version."""
        if not isinstance(raw, dict) or raw.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(f"not a {CHECKPOINT_FORMAT} document")
        if int(raw.get("version", -1)) > CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint version {raw.get('version')} is newer than "
                f"supported ({CHECKPOINT_VERSION})"
            )
        try:
            snapshots = {
                int(entry["problem_index"]): SessionSnapshot.from_json(entry)
                for entry in raw.get("snapshots", [])
            }
            return cls(
                device=int(raw["device"]),
                wave=int(raw["wave"]),
                simulated_s=float(raw["simulated_s"]),
                snapshots=snapshots,
            )
        except CheckpointError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint: {exc}") from exc


class CheckpointStore:
    """Atomic, versioned on-disk checkpoints, one file per (device, wave).

    Layout under one store root::

        ckpt-d<device>-w<wave>.json

    Writes go through temp-file + ``os.replace`` like the registry's, so
    a crash mid-write leaves at worst an orphaned temp file.  ``root``
    may be ``None`` for an in-memory store (the trainer's default: the
    last checkpoint is all recovery needs, durability is opt-in).
    """

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = None if root is None else Path(root)
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
        self._latest: dict[int, TrainingCheckpoint] = {}
        self.n_written = 0

    def save(self, checkpoint: TrainingCheckpoint) -> None:
        """Record ``checkpoint`` as its device's newest, persisting if rooted."""
        self._latest[checkpoint.device] = checkpoint
        self.n_written += 1
        if self.root is None:
            return
        path = self.root / f"ckpt-d{checkpoint.device}-w{checkpoint.wave}.json"
        payload = json.dumps(checkpoint.to_json(), sort_keys=True).encode("utf-8")
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=f".{path.name}.")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def latest(self, device: int) -> Optional[TrainingCheckpoint]:
        """The newest checkpoint recorded for ``device``, or ``None``."""
        return self._latest.get(device)

    def load(self, path: Union[str, Path]) -> TrainingCheckpoint:
        """Parse one checkpoint file; :class:`CheckpointError` on corruption."""
        try:
            raw = json.loads(Path(path).read_text(encoding="utf-8"))
        except FileNotFoundError as exc:
            raise CheckpointError(f"checkpoint missing: {path}") from exc
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"checkpoint is not valid JSON: {exc}") from exc
        return TrainingCheckpoint.from_json(raw)
