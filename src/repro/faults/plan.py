"""Deterministic, seeded fault plans over the simulated cluster.

A :class:`FaultPlan` scripts three fault families against a cluster run:

- **stragglers** — per-device clock-rate multipliers.  A rate of 2.0
  makes every simulated charge on that device take twice as long; the
  numerics are untouched (the cost model only stretches the timeline),
  so trained models stay bitwise identical while makespans inflate.
- **device loss** — a device drops out at a chosen *simulated* time.
  The training driver detects the loss at the next wave boundary,
  abandons the device's in-flight state, and recovers its problems on
  the survivors from the last checkpoint (see
  :mod:`repro.faults.checkpoint` and ``repro.distributed.trainer``).
- **transient link faults** — a peer (or host) link misbehaves during a
  ``[start_s, start_s + duration_s)`` window; transfers initiated inside
  the window pay a retry latency on both endpoint clocks.  Data is never
  corrupted — the fault model is *fail-slow or fail-stop, never
  fail-wrong* — so the only observable is added simulated time.

Plans are plain data and therefore reproducible: the same plan against
the same workload produces the same timeline, failures included.
:meth:`FaultPlan.random` derives a plan from a seed through
``numpy.random.default_rng``, giving the chaos harness an unbounded
family of scenarios that replay exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import DeviceLostError, ValidationError

__all__ = ["DeviceLoss", "LinkFault", "FaultPlan", "FaultInjector"]


@dataclass(frozen=True)
class DeviceLoss:
    """One scripted fail-stop: ``device`` drops at simulated ``at_s``."""

    device: int
    at_s: float

    def __post_init__(self) -> None:
        if self.device < 0:
            raise ValidationError(f"device must be >= 0, got {self.device}")
        if self.at_s < 0:
            raise ValidationError(f"loss time must be >= 0, got {self.at_s}")


@dataclass(frozen=True)
class LinkFault:
    """A transient window during which one link needs retries.

    ``src``/``dst`` are device ids (``-1`` = host endpoint); the fault is
    direction-agnostic — it matches transfers either way across the pair.
    Transfers initiated inside ``[start_s, start_s + duration_s)`` pay
    ``retry_latency_s`` extra on both endpoint clocks.
    """

    src: int
    dst: int
    start_s: float
    duration_s: float
    retry_latency_s: float = 50e-6

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s <= 0:
            raise ValidationError(
                "link fault needs start_s >= 0 and duration_s > 0"
            )
        if self.retry_latency_s <= 0:
            raise ValidationError("retry_latency_s must be positive")

    def matches(self, src: int, dst: int, now_s: float) -> bool:
        """Whether a transfer between ``src``/``dst`` at ``now_s`` is hit."""
        if {src, dst} != {self.src, self.dst}:
            return False
        return self.start_s <= now_s < self.start_s + self.duration_s


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible script of faults for one cluster run.

    ``stragglers`` maps device id to a clock-rate multiplier (> 0; values
    above 1 slow the device).  ``losses`` and ``link_faults`` script
    fail-stop and fail-slow events on the simulated timeline.  ``seed``
    records provenance when the plan came from :meth:`random`.
    """

    stragglers: Mapping[int, float] = field(default_factory=dict)
    losses: Sequence[DeviceLoss] = ()
    link_faults: Sequence[LinkFault] = ()
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        for device, rate in self.stragglers.items():
            if device < 0:
                raise ValidationError(
                    f"straggler device must be >= 0, got {device}"
                )
            if rate <= 0:
                raise ValidationError(
                    f"straggler rate must be positive, got {rate} "
                    f"for device {device}"
                )
        # Accept bare tuples for hand-written plans: (device, at_s) and
        # (src, dst, start_s, duration_s[, retry_latency_s]).
        object.__setattr__(
            self,
            "losses",
            tuple(
                loss if isinstance(loss, DeviceLoss) else DeviceLoss(*loss)
                for loss in self.losses
            ),
        )
        object.__setattr__(
            self,
            "link_faults",
            tuple(
                fault if isinstance(fault, LinkFault) else LinkFault(*fault)
                for fault in self.link_faults
            ),
        )
        lost = [loss.device for loss in self.losses]
        if len(lost) != len(set(lost)):
            raise ValidationError(
                "at most one scripted loss per device (fail-stop model)"
            )

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing (nominal run)."""
        return not (self.stragglers or self.losses or self.link_faults)

    @classmethod
    def random(
        cls,
        seed: int,
        n_devices: int,
        *,
        straggler_probability: float = 0.5,
        max_straggler_rate: float = 3.0,
        loss_probability: float = 0.5,
        loss_window_s: float = 1.0,
        link_fault_probability: float = 0.0,
    ) -> "FaultPlan":
        """A seeded-random plan: same seed, same faults, every time.

        At most one device is lost (the single-failure model the recovery
        path supports), loss time drawn uniformly from
        ``(0, loss_window_s)``; each device independently straggles with
        a rate in ``(1, max_straggler_rate]``.
        """
        if n_devices < 1:
            raise ValidationError(f"n_devices must be >= 1, got {n_devices}")
        rng = np.random.default_rng(seed)
        stragglers: dict[int, float] = {}
        for device in range(n_devices):
            if rng.random() < straggler_probability:
                stragglers[device] = float(
                    1.0 + rng.random() * (max_straggler_rate - 1.0)
                )
        losses: list[DeviceLoss] = []
        if n_devices > 1 and rng.random() < loss_probability:
            device = int(rng.integers(0, n_devices))
            at_s = float(rng.random() * loss_window_s)
            losses.append(DeviceLoss(device=device, at_s=at_s))
        link_faults: list[LinkFault] = []
        if n_devices > 1 and rng.random() < link_fault_probability:
            src = int(rng.integers(0, n_devices))
            dst = int((src + 1 + rng.integers(0, n_devices - 1)) % n_devices)
            start = float(rng.random() * loss_window_s)
            link_faults.append(
                LinkFault(
                    src=src,
                    dst=dst,
                    start_s=start,
                    duration_s=float(loss_window_s / 4 + rng.random() * loss_window_s),
                )
            )
        return cls(
            stragglers=stragglers,
            losses=tuple(losses),
            link_faults=tuple(link_faults),
            seed=int(seed),
        )

    def summary(self) -> dict:
        """JSON-ready description of the plan (lands in reports)."""
        return {
            "seed": self.seed,
            "stragglers": {
                int(d): float(r) for d, r in sorted(self.stragglers.items())
            },
            "losses": [
                {"device": loss.device, "at_s": loss.at_s}
                for loss in self.losses
            ],
            "link_faults": [
                {
                    "src": fault.src,
                    "dst": fault.dst,
                    "start_s": fault.start_s,
                    "duration_s": fault.duration_s,
                    "retry_latency_s": fault.retry_latency_s,
                }
                for fault in self.link_faults
            ],
        }


class FaultInjector:
    """Runtime side of a :class:`FaultPlan`: queried by pool and trainer.

    The injector is stateless with respect to the plan (pure lookups)
    and stateful only in its counters, so one injector drives one run
    and its counters describe exactly what fired.
    """

    def __init__(self, plan: FaultPlan, n_devices: int) -> None:
        if n_devices < 1:
            raise ValidationError(f"n_devices must be >= 1, got {n_devices}")
        for device in plan.stragglers:
            if device >= n_devices:
                raise ValidationError(
                    f"straggler device {device} out of range for "
                    f"{n_devices} devices"
                )
        for loss in plan.losses:
            if loss.device >= n_devices:
                raise ValidationError(
                    f"loss device {loss.device} out of range for "
                    f"{n_devices} devices"
                )
        self.plan = plan
        self.n_devices = int(n_devices)
        self._loss_at = {loss.device: loss.at_s for loss in plan.losses}
        self.n_link_retries = 0
        self.devices_lost: list[int] = []

    def straggler_rate(self, device: int) -> float:
        """Clock-rate multiplier for ``device`` (1.0 = nominal)."""
        return float(self.plan.stragglers.get(device, 1.0))

    def loss_time(self, device: int) -> Optional[float]:
        """Scripted loss time of ``device``, or ``None``."""
        return self._loss_at.get(device)

    def check_device(self, device: int, now_s: float) -> None:
        """Raise :class:`DeviceLostError` if ``device`` is lost by ``now_s``.

        Records the loss (once) in :attr:`devices_lost` so reports can
        tell which scripted losses actually fired.
        """
        at_s = self._loss_at.get(device)
        if at_s is not None and now_s >= at_s:
            if device not in self.devices_lost:
                self.devices_lost.append(device)
            raise DeviceLostError(device, at_s)

    def link_penalty_s(self, src: int, dst: int, now_s: float) -> float:
        """Extra retry seconds for a transfer on ``src``→``dst`` at ``now_s``.

        Returns 0.0 outside every fault window; inside one, counts a
        retry and returns its latency.
        """
        penalty = 0.0
        for fault in self.plan.link_faults:
            if fault.matches(src, dst, now_s):
                penalty += fault.retry_latency_s
        if penalty > 0:
            self.n_link_retries += 1
        return penalty

    def summary(self) -> dict:
        """Plan plus what actually fired, JSON-ready."""
        return {
            "plan": self.plan.summary(),
            "devices_lost": list(self.devices_lost),
            "link_retries": int(self.n_link_retries),
        }
