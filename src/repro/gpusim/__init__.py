"""A simulated GPU/CPU execution substrate.

There is no physical GPU in this environment, so the paper's CUDA substrate
is replaced by a cost-model simulator (documented in DESIGN.md Section 2).
All numerics run in NumPy; *time* is charged through :class:`Engine` ops
according to a device specification (peak FLOPS, memory bandwidth, kernel
launch overhead, PCIe bandwidth).  The pieces:

- :class:`DeviceSpec` and presets (Tesla P100, dual Xeon E5-2640 v4);
- :class:`SimClock` — simulated seconds, split into latency (launch
  overhead chains) and compute (throughput-bound work), per category;
- :class:`OpCounters` — FLOPs, bytes moved, launches, PCIe traffic;
- :class:`DeviceAllocator` — global-memory accounting with OOM;
- :class:`Engine` — the op layer every solver charges through;
- :class:`ConcurrentScheduler` — packs independent tasks onto the device
  (the MP-SVM-level concurrency model).
"""

from repro.gpusim.clock import SimClock, TimeCharge
from repro.gpusim.counters import OpCounters
from repro.gpusim.device import (
    DeviceSpec,
    scaled_tesla_p100,
    scaled_tesla_v100,
    tesla_p100,
    tesla_v100,
    xeon_e5_2640v4,
)
from repro.gpusim.engine import CPUEngine, Engine, GPUEngine, make_engine
from repro.gpusim.memory import DeviceAllocator, DeviceBuffer
from repro.gpusim.scheduler import ConcurrentScheduler, ScheduledTask, TaskCost

__all__ = [
    "CPUEngine",
    "ConcurrentScheduler",
    "DeviceAllocator",
    "DeviceBuffer",
    "DeviceSpec",
    "Engine",
    "GPUEngine",
    "OpCounters",
    "ScheduledTask",
    "SimClock",
    "TaskCost",
    "TimeCharge",
    "make_engine",
    "scaled_tesla_p100",
    "scaled_tesla_v100",
    "tesla_p100",
    "tesla_v100",
    "xeon_e5_2640v4",
]
