"""Simulated clock with per-category latency/compute accounting.

Every engine op charges a :class:`TimeCharge` to a :class:`SimClock` under a
*category* label ("kernel_values", "subproblem", ...).  Categories feed the
paper's component-breakdown figures (Figures 11 and 12).

Each charge is split into two parts:

- ``latency``: fixed per-op costs (kernel-launch overhead, serial
  dependency chains).  When independent tasks run concurrently these
  overlap, which is exactly why the paper's MP-SVM-level concurrency wins.
- ``compute``: throughput-bound work (FLOPs over peak FLOPS, bytes over
  bandwidth).  Throughput is a shared resource, so concurrent tasks' compute
  parts add up.

The :class:`~repro.gpusim.scheduler.ConcurrentScheduler` consumes this split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.exceptions import ValidationError

__all__ = ["TimeCharge", "SimClock"]


@dataclass(frozen=True)
class TimeCharge:
    """An amount of simulated time, split into latency and compute parts."""

    latency_s: float = 0.0
    compute_s: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.compute_s < 0:
            raise ValidationError("time charges must be non-negative")

    @property
    def total_s(self) -> float:
        """Latency plus compute seconds."""
        return self.latency_s + self.compute_s

    def __add__(self, other: "TimeCharge") -> "TimeCharge":
        return TimeCharge(
            self.latency_s + other.latency_s,
            self.compute_s + other.compute_s,
        )

    def scaled(self, factor: float) -> "TimeCharge":
        """This charge repeated ``factor`` times (e.g. per-iteration cost)."""
        if factor < 0:
            raise ValidationError("scale factor must be non-negative")
        return TimeCharge(self.latency_s * factor, self.compute_s * factor)


class SimClock:
    """Accumulates simulated time per category.

    The clock is deliberately dumb: it never advances on its own, only via
    :meth:`charge`.  Wall-clock measurement of the NumPy host code is a
    separate concern handled by pytest-benchmark.
    """

    def __init__(self) -> None:
        self._latency: dict[str, float] = {}
        self._compute: dict[str, float] = {}
        # Straggler multiplier (fault injection): every charge is scaled
        # by this rate at charge time, so a slowed device's entire
        # timeline — ops, transfers, prefetches — stretches uniformly
        # while merges of already-charged clocks stay untouched.
        self._rate = 1.0

    @property
    def rate(self) -> float:
        """Multiplier applied to every incoming charge (1.0 = nominal)."""
        return self._rate

    @rate.setter
    def rate(self, value: float) -> None:
        if value <= 0:
            raise ValidationError(f"clock rate must be positive, got {value}")
        self._rate = float(value)

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------
    def charge(self, category: str, charge: TimeCharge) -> None:
        """Add a charge under ``category``, scaled by the clock's rate."""
        if not category:
            raise ValidationError("category must be a non-empty string")
        self._latency[category] = (
            self._latency.get(category, 0.0) + charge.latency_s * self._rate
        )
        self._compute[category] = (
            self._compute.get(category, 0.0) + charge.compute_s * self._rate
        )

    def merge(self, other: "SimClock") -> None:
        """Fold another clock's charges into this one (category-wise)."""
        for category, seconds in other._latency.items():
            self._latency[category] = self._latency.get(category, 0.0) + seconds
        for category, seconds in other._compute.items():
            self._compute[category] = self._compute.get(category, 0.0) + seconds

    def merge_scaled(self, other: "SimClock", factor: float) -> None:
        """Merge ``other`` with every charge multiplied by ``factor``.

        Used by the scheduler to account concurrency: overlapped latency
        merges with a factor < 1.
        """
        if factor < 0:
            raise ValidationError("scale factor must be non-negative")
        for category, seconds in other._latency.items():
            self._latency[category] = self._latency.get(category, 0.0) + seconds * factor
        for category, seconds in other._compute.items():
            self._compute[category] = self._compute.get(category, 0.0) + seconds * factor

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def elapsed_s(self) -> float:
        """Total simulated seconds across all categories."""
        return sum(self._latency.values()) + sum(self._compute.values())

    @property
    def latency_s(self) -> float:
        """Total latency seconds across all categories."""
        return sum(self._latency.values())

    @property
    def compute_s(self) -> float:
        """Total compute seconds across all categories."""
        return sum(self._compute.values())

    def category_seconds(self, category: str) -> float:
        """Total seconds charged under one category."""
        return self._latency.get(category, 0.0) + self._compute.get(category, 0.0)

    def categories(self) -> Iterable[str]:
        """Sorted category names with any charge."""
        return sorted(set(self._latency) | set(self._compute))

    def breakdown(self) -> dict[str, float]:
        """Total seconds per category."""
        return {name: self.category_seconds(name) for name in self.categories()}

    def fraction_breakdown(
        self, *, grouping: Mapping[str, str] | None = None
    ) -> dict[str, float]:
        """Per-category fractions of total time (sums to 1 when non-empty).

        ``grouping`` optionally maps raw category names to coarser labels
        (used to collapse solver categories into the paper's three-way
        training split).
        """
        total = self.elapsed_s
        if total <= 0:
            return {}
        fractions: dict[str, float] = {}
        for name in self.categories():
            label = grouping.get(name, name) if grouping else name
            fractions[label] = fractions.get(label, 0.0) + self.category_seconds(name) / total
        return fractions

    def copy(self) -> "SimClock":
        """An independent copy of the accumulated charges."""
        clone = SimClock()
        clone._latency = dict(self._latency)
        clone._compute = dict(self._compute)
        clone._rate = self._rate
        return clone

    def since(self, earlier: "SimClock") -> "SimClock":
        """Per-category charges accumulated after ``earlier`` was copied.

        ``earlier`` must be a snapshot of this clock's past (every charge
        it holds is still present here); the interleaved wave driver uses
        this to slice one solver round out of a shared timeline.
        """
        delta = SimClock()
        for category, seconds in self._latency.items():
            diff = seconds - earlier._latency.get(category, 0.0)
            if diff > 0:
                delta._latency[category] = diff
        for category, seconds in self._compute.items():
            diff = seconds - earlier._compute.get(category, 0.0)
            if diff > 0:
                delta._compute[category] = diff
        return delta

    def reset(self) -> None:
        """Drop every charge."""
        self._latency.clear()
        self._compute.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock(elapsed={self.elapsed_s:.6f}s, categories={list(self.categories())})"
