"""Hardware-event counters for the simulated device.

The counters record *what the algorithm asked the device to do* — floating
point operations, global-memory traffic, kernel launches, PCIe transfers —
independent of the time model.  Tests assert on counters (e.g. "kernel
sharing computes fewer bytes"), and the cost model is a pure function of
them, which keeps the simulation auditable.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["OpCounters"]


@dataclass
class OpCounters:
    """Mutable tally of device events."""

    flops: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    shared_bytes: int = 0
    kernel_launches: int = 0
    pcie_bytes: int = 0

    def record(
        self,
        *,
        flops: int = 0,
        bytes_read: int = 0,
        bytes_written: int = 0,
        shared_bytes: int = 0,
        kernel_launches: int = 0,
        pcie_bytes: int = 0,
    ) -> None:
        """Add the given event counts (all non-negative)."""
        increments = (
            flops, bytes_read, bytes_written, shared_bytes,
            kernel_launches, pcie_bytes,
        )
        if min(increments) < 0:
            raise ValueError("counter increments must be non-negative")
        self.flops += flops
        self.bytes_read += bytes_read
        self.bytes_written += bytes_written
        self.shared_bytes += shared_bytes
        self.kernel_launches += kernel_launches
        self.pcie_bytes += pcie_bytes

    @property
    def bytes_total(self) -> int:
        """DRAM bytes read plus written."""
        return self.bytes_read + self.bytes_written

    def merge(self, other: "OpCounters") -> None:
        """Fold another tally into this one."""
        for field in fields(self):
            setattr(
                self,
                field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )

    def snapshot(self) -> "OpCounters":
        """An immutable-by-convention copy of the current counts."""
        return OpCounters(
            **{field.name: getattr(self, field.name) for field in fields(self)}
        )

    def since(self, earlier: "OpCounters") -> "OpCounters":
        """Difference between this tally and an earlier snapshot."""
        return OpCounters(
            **{
                field.name: getattr(self, field.name) - getattr(earlier, field.name)
                for field in fields(self)
            }
        )

    def reset(self) -> None:
        """Zero every counter."""
        for field in fields(self):
            setattr(self, field.name, 0)
