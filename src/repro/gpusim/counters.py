"""Hardware-event counters for the simulated device.

The counters record *what the algorithm asked the device to do* — floating
point operations, global-memory traffic, kernel launches, PCIe transfers —
independent of the time model.  Tests assert on counters (e.g. "kernel
sharing computes fewer bytes"), and the cost model is a pure function of
them, which keeps the simulation auditable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["OpCounters"]

_INT_FIELDS = (
    "flops",
    "bytes_read",
    "bytes_written",
    "shared_bytes",
    "kernel_launches",
    "pcie_bytes",
)


@dataclass
class OpCounters:
    """Mutable tally of device events.

    Besides the fixed hardware counters, ``events`` tallies named
    algorithm-level occurrences (e.g. ``coupling_ridge_retries``) that
    telemetry consumers want alongside the hardware numbers.
    """

    flops: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    shared_bytes: int = 0
    kernel_launches: int = 0
    pcie_bytes: int = 0
    events: dict[str, int] = field(default_factory=dict)

    def record(
        self,
        *,
        flops: int = 0,
        bytes_read: int = 0,
        bytes_written: int = 0,
        shared_bytes: int = 0,
        kernel_launches: int = 0,
        pcie_bytes: int = 0,
    ) -> None:
        """Add the given event counts (all non-negative)."""
        increments = (
            flops, bytes_read, bytes_written, shared_bytes,
            kernel_launches, pcie_bytes,
        )
        if min(increments) < 0:
            raise ValueError("counter increments must be non-negative")
        self.flops += flops
        self.bytes_read += bytes_read
        self.bytes_written += bytes_written
        self.shared_bytes += shared_bytes
        self.kernel_launches += kernel_launches
        self.pcie_bytes += pcie_bytes

    def count_event(self, name: str, count: int = 1) -> None:
        """Tally ``count`` occurrences of the named algorithm-level event."""
        if not name:
            raise ValueError("event name must be a non-empty string")
        if count < 0:
            raise ValueError("counter increments must be non-negative")
        self.events[name] = self.events.get(name, 0) + count

    @property
    def bytes_total(self) -> int:
        """DRAM bytes read plus written."""
        return self.bytes_read + self.bytes_written

    def merge(self, other: "OpCounters") -> None:
        """Fold another tally into this one."""
        for name in _INT_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for name, count in other.events.items():
            self.events[name] = self.events.get(name, 0) + count

    def snapshot(self) -> "OpCounters":
        """An immutable-by-convention copy of the current counts."""
        return OpCounters(
            **{name: getattr(self, name) for name in _INT_FIELDS},
            events=dict(self.events),
        )

    def since(self, earlier: "OpCounters") -> "OpCounters":
        """Difference between this tally and an earlier snapshot."""
        events = {
            name: count - earlier.events.get(name, 0)
            for name, count in self.events.items()
            if count != earlier.events.get(name, 0)
        }
        return OpCounters(
            **{
                name: getattr(self, name) - getattr(earlier, name)
                for name in _INT_FIELDS
            },
            events=events,
        )

    def reset(self) -> None:
        """Zero every counter."""
        for name in _INT_FIELDS:
            setattr(self, name, 0)
        self.events.clear()
