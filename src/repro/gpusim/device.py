"""Device specifications for the simulated execution substrate.

A :class:`DeviceSpec` holds the handful of architectural parameters the
cost model needs.  The presets mirror the paper's testbed (Section 4): an
NVIDIA Tesla P100 and a dual-socket Xeon E5-2640 v4 workstation.

Because the reproduction runs the paper's workloads scaled down by roughly
three orders of magnitude (see ``repro.data.registry``), the default GPU
preset used by the benchmarks is a *proportionally scaled* P100: same
throughput and latency, global memory shrunk by the same factor as the
datasets, so the paper's memory-pressure effects (buffer eviction, capped
concurrency) still occur at laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import ValidationError

__all__ = [
    "DeviceSpec",
    "tesla_p100",
    "tesla_v100",
    "scaled_tesla_p100",
    "scaled_tesla_v100",
    "xeon_e5_2640v4",
    "DEFAULT_MEMORY_SCALE",
]

GIB = 1024**3
DEFAULT_MEMORY_SCALE = 512


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural parameters of a simulated device.

    Attributes
    ----------
    name:
        Human-readable label used in reports.
    kind:
        ``"gpu"`` or ``"cpu"``; selects the engine cost model.
    peak_gflops:
        Aggregate single-precision throughput in GFLOP/s.  For CPUs this is
        the *single-core* figure; multi-threaded throughput is derived from
        ``threads`` and ``thread_efficiency``.
    mem_bandwidth_gbps:
        Device (global/main) memory bandwidth in GB/s.
    global_mem_bytes:
        Capacity of device memory; allocations beyond it raise
        :class:`~repro.exceptions.DeviceMemoryError`.
    launch_overhead_s:
        Fixed latency per kernel launch (GPU) or per dispatched parallel
        region (CPU).  This term is what batching amortises.
    pcie_bandwidth_gbps:
        Host-to-device transfer bandwidth; only meaningful for GPUs.
    num_sms:
        Streaming multiprocessors; bounds how many concurrent tasks the
        scheduler can co-locate when each task caps its block count.
    threads / thread_efficiency:
        CPU parallelism: effective parallel speedup is
        ``1 + (threads - 1) * thread_efficiency`` (a simple OpenMP model
        matching the paper's observed ~10x at 40 threads).
    sync_overhead_s:
        Latency of one intra-kernel synchronisation step (block-wide
        ``__syncthreads`` plus a reduction round).  Charged by loops that
        run many dependent steps inside a single kernel, e.g. the inner
        working-set SMO iterations.
    shared_bandwidth_gbps:
        On-chip bandwidth: GPU shared memory / register traffic, or the
        CPU cache hierarchy.  For CPUs this is the *per-thread* figure
        (caches scale with active cores); see
        :attr:`effective_shared_bandwidth_gbps`.  Ops that operate on
        staged working-set state charge this tier instead of DRAM.
    """

    name: str
    kind: str
    peak_gflops: float
    mem_bandwidth_gbps: float
    global_mem_bytes: int
    launch_overhead_s: float
    pcie_bandwidth_gbps: float = 12.0
    num_sms: int = 1
    threads: int = 1
    thread_efficiency: float = 0.22
    per_thread_bandwidth_gbps: float = 10.0
    sync_overhead_s: float = 0.0
    shared_bandwidth_gbps: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("gpu", "cpu"):
            raise ValidationError(f"device kind must be 'gpu' or 'cpu', got {self.kind!r}")
        if self.peak_gflops <= 0 or self.mem_bandwidth_gbps <= 0:
            raise ValidationError("throughput parameters must be positive")
        if self.global_mem_bytes <= 0:
            raise ValidationError("global_mem_bytes must be positive")
        if self.threads < 1:
            raise ValidationError("threads must be >= 1")
        if not 0.0 <= self.thread_efficiency <= 1.0:
            raise ValidationError("thread_efficiency must lie in [0, 1]")

    @property
    def effective_parallelism(self) -> float:
        """Effective speedup from multi-threading (1.0 for one thread)."""
        return 1.0 + (self.threads - 1) * self.thread_efficiency

    @property
    def effective_gflops(self) -> float:
        """Deliverable GFLOP/s given the threading model."""
        if self.kind == "cpu":
            return self.peak_gflops * self.effective_parallelism
        return self.peak_gflops

    @property
    def effective_bandwidth_gbps(self) -> float:
        """Deliverable memory bandwidth in GB/s.

        A single CPU thread cannot saturate the socket's memory channels,
        so CPU bandwidth scales with effective parallelism up to the
        socket maximum.  GPUs always see the full device bandwidth.
        """
        if self.kind == "cpu":
            return min(
                self.mem_bandwidth_gbps,
                self.per_thread_bandwidth_gbps * self.effective_parallelism,
            )
        return self.mem_bandwidth_gbps

    @property
    def effective_shared_bandwidth_gbps(self) -> float:
        """Deliverable on-chip (shared/cache) bandwidth in GB/s.

        CPU caches are per-core resources, so the figure scales with
        effective parallelism; GPU shared memory is quoted as the
        device-wide aggregate.  Falls back to DRAM bandwidth when the
        device declares no on-chip tier.
        """
        if self.shared_bandwidth_gbps <= 0:
            return self.effective_bandwidth_gbps
        if self.kind == "cpu":
            return self.shared_bandwidth_gbps * self.effective_parallelism
        return self.shared_bandwidth_gbps

    def with_threads(self, threads: int) -> "DeviceSpec":
        """A copy of this (CPU) spec with a different thread count."""
        if self.kind != "cpu":
            raise ValidationError("with_threads applies to CPU devices only")
        return replace(self, threads=threads, name=f"{self.name} ({threads}t)")

    def with_memory(self, global_mem_bytes: int) -> "DeviceSpec":
        """A copy with a different global-memory capacity."""
        return replace(self, global_mem_bytes=int(global_mem_bytes))


def tesla_p100() -> DeviceSpec:
    """The paper's GPU: Tesla P100, 12 GB global memory."""
    return DeviceSpec(
        name="Tesla P100",
        kind="gpu",
        peak_gflops=9300.0,
        mem_bandwidth_gbps=720.0,
        global_mem_bytes=12 * GIB,
        launch_overhead_s=5e-6,
        pcie_bandwidth_gbps=12.0,
        num_sms=56,
        sync_overhead_s=2e-7,
        shared_bandwidth_gbps=9000.0,
    )


def tesla_v100() -> DeviceSpec:
    """The paper's projection target: "Better GPUs such as V100 should
    further improve the efficiency of GMP-SVM, due to higher memory
    bandwidth and more cores."
    """
    return DeviceSpec(
        name="Tesla V100",
        kind="gpu",
        peak_gflops=14_800.0,
        mem_bandwidth_gbps=900.0,
        global_mem_bytes=16 * GIB,
        launch_overhead_s=4e-6,
        pcie_bandwidth_gbps=14.0,
        num_sms=80,
        sync_overhead_s=1.5e-7,
        shared_bandwidth_gbps=13_800.0,
    )


def scaled_tesla_v100(memory_scale: int = DEFAULT_MEMORY_SCALE) -> DeviceSpec:
    """A V100 scaled like :func:`scaled_tesla_p100` (same rationale)."""
    if memory_scale < 1:
        raise ValidationError("memory_scale must be >= 1")
    base = tesla_v100()
    return replace(
        base,
        name=f"Tesla V100 (1/{memory_scale} scale)",
        global_mem_bytes=base.global_mem_bytes // memory_scale,
        launch_overhead_s=base.launch_overhead_s / memory_scale,
        sync_overhead_s=base.sync_overhead_s / memory_scale,
    )


def scaled_tesla_p100(memory_scale: int = DEFAULT_MEMORY_SCALE) -> DeviceSpec:
    """A P100 proportionally scaled to the reproduction's dataset size.

    The reproduction's datasets are scaled down in cardinality by roughly
    ``memory_scale``.  To preserve the paper's behaviour two things must
    shrink with them (DESIGN.md Section 2):

    - global memory, so memory-pressure effects (buffer eviction, capped
      MP-SVM concurrency) still occur; and
    - the fixed latencies (kernel launch, intra-kernel sync), so the
      balance between per-op latency and per-op streaming work matches the
      full-size system — otherwise launch overhead would artificially
      dominate the small scaled workloads and distort every ratio.

    Throughput constants (FLOPS, bandwidth) are scale-free and unchanged.
    """
    if memory_scale < 1:
        raise ValidationError("memory_scale must be >= 1")
    base = tesla_p100()
    return replace(
        base,
        name=f"Tesla P100 (1/{memory_scale} scale)",
        global_mem_bytes=base.global_mem_bytes // memory_scale,
        launch_overhead_s=base.launch_overhead_s / memory_scale,
        sync_overhead_s=base.sync_overhead_s / memory_scale,
    )


def xeon_e5_2640v4(threads: int = 1) -> DeviceSpec:
    """The paper's CPU host: two Xeon E5-2640 v4 (20 cores / 40 threads).

    ``peak_gflops`` is the single-core effective figure; pass
    ``threads=40`` for the OpenMP configurations in the paper.
    """
    return DeviceSpec(
        name=f"2x Xeon E5-2640 v4 ({threads}t)",
        kind="cpu",
        peak_gflops=32.0,
        mem_bandwidth_gbps=120.0,
        global_mem_bytes=256 * GIB,
        launch_overhead_s=2e-9,
        pcie_bandwidth_gbps=0.0,
        num_sms=20,
        threads=threads,
        sync_overhead_s=2e-9,
        per_thread_bandwidth_gbps=20.0,
        shared_bandwidth_gbps=45.0,
    )
