"""The engine: every device operation the solvers perform goes through here.

An :class:`Engine` pairs a :class:`~repro.gpusim.device.DeviceSpec` with a
:class:`~repro.gpusim.clock.SimClock`, an
:class:`~repro.gpusim.counters.OpCounters` tally and a
:class:`~repro.gpusim.memory.DeviceAllocator`.  Engine methods both *execute*
the numerics (NumPy) and *charge* the simulated cost, so algorithm code can
never drift out of sync with its accounting.

Cost model (DESIGN.md Section 6):

- GPU op:  ``latency = launches * launch_overhead``;
  ``compute = flops / peak_flops + bytes / bandwidth + pcie / pcie_bw``.
  The fixed launch term is what the paper's batching amortises ("when
  q > 10, the computation cost per row is often over ten times cheaper").
- CPU op: same formula with a tiny dispatch overhead, thread-scaled
  throughput and thread-scaled bandwidth (the OpenMP model).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.gpusim.clock import SimClock, TimeCharge
from repro.gpusim.counters import OpCounters
from repro.gpusim.device import DeviceSpec
from repro.gpusim.memory import DeviceAllocator
from repro.sparse import CSRMatrix
from repro.sparse import ops as mops

__all__ = ["Engine", "GPUEngine", "CPUEngine", "make_engine"]

FLOAT_BYTES = 8


def _product_costs(a: mops.MatrixLike, b: mops.MatrixLike) -> tuple[int, int, int]:
    """(flops, bytes_read, bytes_written) for ``a @ b.T``.

    Each operand is charged as streamed once from device memory (the
    tiled-GEMM / SpMM model); FLOPs follow the representation actually used.
    """
    m, n = a.shape[0], b.shape[0]
    a_sparse = isinstance(a, CSRMatrix)
    b_sparse = isinstance(b, CSRMatrix)
    if a_sparse and b_sparse:
        flops = 2 * m * b.nnz
    elif a_sparse:
        flops = 2 * a.nnz * n
    elif b_sparse:
        flops = 2 * b.nnz * m
    else:
        flops = 2 * m * n * a.shape[1]
    bytes_read = mops.matrix_nbytes(a) + mops.matrix_nbytes(b)
    bytes_written = m * n * FLOAT_BYTES
    return int(flops), int(bytes_read), int(bytes_written)


class Engine:
    """Base engine; use :class:`GPUEngine`, :class:`CPUEngine` or :func:`make_engine`."""

    def __init__(
        self,
        device: DeviceSpec,
        *,
        clock: Optional[SimClock] = None,
        counters: Optional[OpCounters] = None,
        allocator: Optional[DeviceAllocator] = None,
        flop_efficiency: float = 1.0,
        bandwidth_efficiency: float = 1.0,
        backend: object = None,
    ) -> None:
        if not 0.0 < flop_efficiency <= 1.0:
            raise ValidationError("flop_efficiency must lie in (0, 1]")
        if not 0.0 < bandwidth_efficiency <= 1.0:
            raise ValidationError("bandwidth_efficiency must lie in (0, 1]")
        # Imported lazily: repro.backends pulls in repro.core.validation,
        # and repro.core imports this module while initialising.
        from repro.backends import resolve_backend

        self.backend = resolve_backend(backend)
        self.device = device
        self.flop_efficiency = float(flop_efficiency)
        self.bandwidth_efficiency = float(bandwidth_efficiency)
        self.clock = clock if clock is not None else SimClock()
        self.counters = counters if counters is not None else OpCounters()
        self.allocator = (
            allocator
            if allocator is not None
            else DeviceAllocator(device.global_mem_bytes)
        )

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def op_charge(
        self,
        *,
        flops: int = 0,
        bytes_read: int = 0,
        bytes_written: int = 0,
        shared_bytes: int = 0,
        launches: int = 1,
        syncs: int = 0,
        pcie_bytes: int = 0,
    ) -> TimeCharge:
        """Pure cost-model evaluation; does not touch the clock.

        ``bytes_read``/``bytes_written`` move through device DRAM;
        ``shared_bytes`` move through the on-chip tier (GPU shared memory
        or CPU caches).

        The backend's precision scales apply here: ``flop_time_scale``
        multiplies the FLOP term (a float32 pipe runs ~2x the float64
        peak) and ``dram_byte_scale`` multiplies every byte-traffic term
        (half-width elements move half the bytes).  Both are exactly 1.0
        on the reference backend, and the scaling is skipped entirely in
        that case so its simulated timeline stays bit-for-bit identical
        to the pre-backend engine.
        """
        flop_scale = self.backend.flop_time_scale
        byte_scale = self.backend.dram_byte_scale
        if flop_scale != 1.0:
            flops = flops * flop_scale
        if byte_scale != 1.0:
            bytes_read = bytes_read * byte_scale
            bytes_written = bytes_written * byte_scale
            shared_bytes = shared_bytes * byte_scale
            pcie_bytes = pcie_bytes * byte_scale
        spec = self.device
        latency = launches * spec.launch_overhead_s + syncs * spec.sync_overhead_s
        compute = flops / (spec.effective_gflops * self.flop_efficiency * 1e9)
        compute += (bytes_read + bytes_written) / (
            spec.effective_bandwidth_gbps * self.bandwidth_efficiency * 1e9
        )
        if shared_bytes:
            compute += shared_bytes / (spec.effective_shared_bandwidth_gbps * 1e9)
        if pcie_bytes:
            if spec.pcie_bandwidth_gbps <= 0:
                raise ValidationError(
                    f"device {spec.name!r} has no PCIe link but "
                    f"{pcie_bytes} PCIe bytes were charged"
                )
            compute += pcie_bytes / (spec.pcie_bandwidth_gbps * 1e9)
        return TimeCharge(latency_s=latency, compute_s=compute)

    def charge(
        self,
        category: str,
        *,
        flops: int = 0,
        bytes_read: int = 0,
        bytes_written: int = 0,
        shared_bytes: int = 0,
        launches: int = 1,
        syncs: int = 0,
        pcie_bytes: int = 0,
    ) -> TimeCharge:
        """Record counters and charge the clock; returns the charge."""
        self.counters.record(
            flops=flops,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            shared_bytes=shared_bytes,
            kernel_launches=launches,
            pcie_bytes=pcie_bytes,
        )
        charge = self.op_charge(
            flops=flops,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            shared_bytes=shared_bytes,
            launches=launches,
            syncs=syncs,
            pcie_bytes=pcie_bytes,
        )
        self.clock.charge(category, charge)
        return charge

    # ------------------------------------------------------------------
    # Numeric ops (execute + charge)
    # ------------------------------------------------------------------
    def matmul_transpose(
        self,
        a: mops.MatrixLike,
        b: mops.MatrixLike,
        *,
        category: str,
        launches: int = 1,
    ) -> np.ndarray:
        """Dense ``a @ b.T`` — the batched kernel-row product."""
        flops, bytes_read, bytes_written = _product_costs(a, b)
        self.charge(
            category,
            flops=flops,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            launches=launches,
        )
        return self.backend.matmul_transpose(a, b)

    def reduce_extremum(
        self,
        values: np.ndarray,
        mask: Optional[np.ndarray],
        *,
        mode: str,
        category: str,
        launches: int = 1,
        syncs: int = 0,
        memory: str = "global",
    ) -> tuple[int, float]:
        """Masked argmin/argmax by parallel reduction.

        Defaults to one kernel launch; pass ``launches=0, syncs=1`` for a
        reduction step running inside an already-launched kernel (the inner
        working-set solver).  ``memory`` selects the tier the operands live
        in (see :meth:`elementwise`).  Returns ``(-1, nan)`` when the mask
        selects nothing — callers use that as the "no violator" signal.
        """
        if mode not in ("min", "max"):
            raise ValidationError(f"mode must be 'min' or 'max', got {mode!r}")
        n = values.size
        traffic = self._route_memory(
            memory,
            n * FLOAT_BYTES + (n if mask is not None else 0),
            FLOAT_BYTES,
        )
        self.charge(
            category,
            flops=n,
            launches=launches,
            syncs=syncs,
            **traffic,
        )
        if mask is not None:
            candidates = np.flatnonzero(mask)
            if candidates.size == 0:
                return -1, float("nan")
            local = values[candidates]
            pick = int(np.argmin(local) if mode == "min" else np.argmax(local))
            index = int(candidates[pick])
        else:
            if n == 0:
                return -1, float("nan")
            index = int(np.argmin(values) if mode == "min" else np.argmax(values))
        return index, float(values[index])

    def reduce_sum(
        self,
        values: np.ndarray,
        *,
        category: str,
        launches: int = 1,
        syncs: int = 0,
        memory: str = "global",
    ) -> float:
        """Parallel-reduction sum."""
        n = values.size
        traffic = self._route_memory(memory, n * FLOAT_BYTES, FLOAT_BYTES)
        self.charge(
            category,
            flops=n,
            launches=launches,
            syncs=syncs,
            **traffic,
        )
        return self.backend.reduce_sum(values) if n else 0.0

    def elementwise(
        self,
        category: str,
        n_elements: int,
        *,
        flops_per_element: int = 1,
        arrays_read: int = 2,
        arrays_written: int = 1,
        launches: int = 1,
        syncs: int = 0,
        memory: str = "global",
    ) -> None:
        """Charge a generic map-style kernel; the caller does the NumPy math.

        Used for updates like the optimality-indicator refresh (Eq. 8) where
        the numeric expression is clearer inline at the call site.

        ``memory`` selects the tier the operands occupy:

        - ``"global"`` — device DRAM (default);
        - ``"shared"`` — on-chip on both device kinds (working-set state
          explicitly staged into GPU shared memory);
        - ``"cached"`` — solver state that a CPU's large caches hold but a
          GPU cannot (n-sized arrays): on-chip for CPUs, DRAM for GPUs.
          This asymmetry is exactly why the paper's GPU design stages an
          explicit working set.
        """
        if n_elements < 0:
            raise ValidationError("n_elements must be non-negative")
        traffic = self._route_memory(
            memory,
            n_elements * arrays_read * FLOAT_BYTES,
            n_elements * arrays_written * FLOAT_BYTES,
        )
        self.charge(
            category,
            flops=n_elements * flops_per_element,
            launches=launches,
            syncs=syncs,
            **traffic,
        )

    def _route_memory(
        self, memory: str, read_bytes: int, written_bytes: int
    ) -> dict[str, int]:
        """Map a tier name to charge kwargs (see :meth:`elementwise`)."""
        if memory == "global":
            return {"bytes_read": read_bytes, "bytes_written": written_bytes}
        if memory == "shared" or (memory == "cached" and self.device.kind == "cpu"):
            return {"shared_bytes": read_bytes + written_bytes}
        if memory == "cached":
            return {"bytes_read": read_bytes, "bytes_written": written_bytes}
        raise ValidationError(
            f"memory must be global/shared/cached, got {memory!r}"
        )

    def sort_values(self, values: np.ndarray, *, category: str) -> np.ndarray:
        """Argsort ascending, charged as a GPU radix/merge sort.

        The batched solver sorts optimality indicators every round
        (Algorithm 2 line 6).
        """
        n = values.size
        passes = max(1, int(np.ceil(np.log2(max(n, 2)))))
        self.charge(
            category,
            flops=n * passes,
            bytes_read=n * FLOAT_BYTES * passes,
            bytes_written=n * FLOAT_BYTES * passes,
            launches=1,
        )
        return np.argsort(values, kind="stable")

    def note_event(self, name: str, count: int = 1) -> None:
        """Tally a named algorithm-level event (no time is charged).

        Events surface in :attr:`counters` (and therefore in report
        snapshots) so telemetry can expose occurrences like coupling ridge
        retries without inventing a time category for them.
        """
        self.counters.count_event(name, count)

    def transfer(self, nbytes: int, *, category: str = "transfer") -> None:
        """Host<->device PCIe transfer (no-op for CPU devices)."""
        if nbytes < 0:
            raise ValidationError("transfer size must be non-negative")
        if self.device.kind == "cpu" or nbytes == 0:
            return
        self.charge(category, launches=0, pcie_bytes=int(nbytes))


class GPUEngine(Engine):
    """Engine for ``kind == 'gpu'`` devices."""

    def __init__(self, device: DeviceSpec, **kwargs: object) -> None:
        if device.kind != "gpu":
            raise ValidationError(f"GPUEngine requires a GPU spec, got {device.kind!r}")
        super().__init__(device, **kwargs)


class CPUEngine(Engine):
    """Engine for ``kind == 'cpu'`` devices."""

    def __init__(self, device: DeviceSpec, **kwargs: object) -> None:
        if device.kind != "cpu":
            raise ValidationError(f"CPUEngine requires a CPU spec, got {device.kind!r}")
        super().__init__(device, **kwargs)


# Default achievable fraction of peak FLOPS per device kind.  Hand-written
# CUDA kernels and SpMM sit well below cuBLAS-peak (ThunderSVM-class code
# lands near 30% on mid-size batches); tuned vectorised CPU code is modelled
# at full effective throughput (the per-core figure is already derated).
DEFAULT_FLOP_EFFICIENCY = {"gpu": 0.30, "cpu": 1.0}


def make_engine(
    device: DeviceSpec,
    *,
    flop_efficiency: Optional[float] = None,
    bandwidth_efficiency: float = 1.0,
    backend: object = None,
    **kwargs: object,
) -> Engine:
    """Build the engine subclass matching the device kind.

    ``flop_efficiency`` and ``bandwidth_efficiency`` model *program*
    quality (fraction of device peak the workload's kernels achieve, and
    how well its access patterns coalesce); they default per device kind
    and are overridden by baselines that model less-optimised code (e.g.
    scalar LibSVM, GTSVM's irregular clustered access).

    ``backend`` selects the compute backend (a name, a
    :class:`~repro.backends.BackendSpec`, a
    :class:`~repro.backends.ComputeBackend` instance, or ``None`` for the
    float64 reference); it supplies the engine's numeric primitives and
    the precision scales of the cost model.
    """
    if flop_efficiency is None:
        flop_efficiency = DEFAULT_FLOP_EFFICIENCY[device.kind]
    cls = GPUEngine if device.kind == "gpu" else CPUEngine
    return cls(
        device,
        flop_efficiency=flop_efficiency,
        bandwidth_efficiency=bandwidth_efficiency,
        backend=backend,
        **kwargs,
    )
