"""Device global-memory accounting.

The paper's second key challenge is that "performing training or estimating
probability in a highly parallel way requires a much larger memory footprint
than the GPU memory".  This module makes that constraint real for the
simulation: every buffer a solver keeps resident on the device is allocated
through a :class:`DeviceAllocator`, which enforces the capacity of the
:class:`~repro.gpusim.device.DeviceSpec` and raises
:class:`~repro.exceptions.DeviceMemoryError` on exhaustion.  The MP-SVM
scheduler sizes its concurrency from the same accounting.
"""

from __future__ import annotations

import itertools

from repro.exceptions import DeviceMemoryError, DeviceStateError, ValidationError

__all__ = ["DeviceBuffer", "DeviceAllocator"]


class DeviceBuffer:
    """A handle to a region of simulated device memory.

    Buffers are context managers, so typical usage is::

        with allocator.allocate(nbytes, tag="kernel-buffer") as buf:
            ...  # buf.nbytes resident for the duration
    """

    __slots__ = ("buffer_id", "nbytes", "tag", "_allocator", "_freed")

    def __init__(self, buffer_id: int, nbytes: int, tag: str, allocator: "DeviceAllocator") -> None:
        self.buffer_id = buffer_id
        self.nbytes = nbytes
        self.tag = tag
        self._allocator = allocator
        self._freed = False

    @property
    def freed(self) -> bool:
        """Whether this buffer has been released."""
        return self._freed

    def free(self) -> None:
        """Release the buffer back to its allocator."""
        self._allocator.free(self)

    def __enter__(self) -> "DeviceBuffer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if not self._freed:
            self.free()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "freed" if self._freed else "live"
        return f"DeviceBuffer(id={self.buffer_id}, {self.nbytes} B, tag={self.tag!r}, {state})"


class DeviceAllocator:
    """Tracks allocations against a fixed global-memory capacity."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValidationError("capacity_bytes must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self._used = 0
        self._peak = 0
        self._live: dict[int, DeviceBuffer] = {}
        self._ids = itertools.count()

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, nbytes: int, *, tag: str = "") -> DeviceBuffer:
        """Reserve ``nbytes``; raises :class:`DeviceMemoryError` if it does not fit."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValidationError("allocation size must be non-negative")
        if nbytes > self.free_bytes:
            raise DeviceMemoryError(nbytes, self.free_bytes)
        buffer = DeviceBuffer(next(self._ids), nbytes, tag, self)
        self._live[buffer.buffer_id] = buffer
        self._used += nbytes
        self._peak = max(self._peak, self._used)
        return buffer

    def free(self, buffer: DeviceBuffer) -> None:
        """Release a live buffer; double frees and foreign buffers raise."""
        if buffer._freed:
            raise DeviceStateError(f"double free of {buffer!r}")
        if buffer.buffer_id not in self._live:
            raise DeviceStateError(f"{buffer!r} does not belong to this allocator")
        del self._live[buffer.buffer_id]
        buffer._freed = True
        self._used -= buffer.nbytes

    def fits(self, nbytes: int) -> bool:
        """Whether an allocation of ``nbytes`` would currently succeed."""
        return 0 <= int(nbytes) <= self.free_bytes

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        """Bytes currently resident."""
        return self._used

    @property
    def free_bytes(self) -> int:
        """Bytes still available."""
        return self.capacity_bytes - self._used

    @property
    def peak_bytes(self) -> int:
        """High-water mark of resident bytes over the allocator's lifetime."""
        return self._peak

    @property
    def live_buffers(self) -> int:
        """Count of un-freed buffers."""
        return len(self._live)

    def usage_by_tag(self) -> dict[str, int]:
        """Resident bytes grouped by allocation tag."""
        usage: dict[str, int] = {}
        for buffer in self._live.values():
            usage[buffer.tag] = usage.get(buffer.tag, 0) + buffer.nbytes
        return usage

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeviceAllocator(used={self._used}/{self.capacity_bytes} B, "
            f"live={len(self._live)}, peak={self._peak})"
        )
