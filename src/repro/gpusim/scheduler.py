"""Concurrent-task scheduling on the simulated device.

The MP-SVM level trains k(k-1)/2 independent binary SVMs.  Running them
one at a time leaves the device idle during every kernel-launch gap; running
too many at once exceeds device memory (the paper's challenge (ii)).  The
paper's resolution is to cap each SVM's streaming-multiprocessor footprint
so several fit, and to bound concurrency by memory.

This module models that with a wave-based schedule:

- Tasks declare their serial cost split into *latency* (launch-overhead
  chains, overlappable across tasks) and *compute* (throughput-bound work,
  a shared resource), plus their device-memory footprint and SM-block count.
- Tasks are packed into waves subject to memory capacity, SM capacity and
  an optional concurrency cap.
- A wave's makespan is ``max(max_i(latency_i + compute_i), sum_i compute_i)``:
  each task still pays its own serial chain, the device throughput bounds
  the total, and launch gaps are hidden by other tasks' kernels.  With a
  single task per wave this degrades exactly to serial execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.exceptions import ValidationError
from repro.gpusim.clock import SimClock
from repro.gpusim.device import DeviceSpec
from repro.telemetry.tracer import Tracer, maybe_span

__all__ = [
    "TaskCost",
    "ScheduledTask",
    "SchedulePlan",
    "Wave",
    "WaveLimits",
    "ConcurrentScheduler",
]


@dataclass(frozen=True)
class WaveLimits:
    """The packing rules bounding one concurrent wave.

    Shared by the post-hoc :class:`ConcurrentScheduler` and the
    execution-level interleaved driver (:mod:`repro.core.interleave`) so
    both enforce identical SM/memory/concurrency bounds.
    """

    num_sms: int
    mem_budget_bytes: int
    max_concurrent: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_sms < 1:
            raise ValidationError("num_sms must be >= 1")
        if self.mem_budget_bytes <= 0:
            raise ValidationError("memory budget must be positive")
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise ValidationError("max_concurrent must be >= 1")

    def validate_task(
        self, name: str, *, blocks: int, mem_bytes: int
    ) -> None:
        """Reject a task that cannot run on this device even alone.

        A task whose SM-block count or memory footprint exceeds the device
        capacity would previously underpack silently (a solo wave whose
        simulated memory use exceeded the ledger).  Raise up front, naming
        the task, so misconfigured footprints are diagnosable.
        """
        if blocks > self.num_sms:
            raise ValidationError(
                f"task {name!r} needs {blocks} SM blocks but the device "
                f"has only {self.num_sms}"
            )
        if mem_bytes > self.mem_budget_bytes:
            raise ValidationError(
                f"task {name!r} needs {mem_bytes} bytes but the memory "
                f"budget is {self.mem_budget_bytes} bytes"
            )

    def admits(
        self,
        *,
        count: int,
        blocks: int,
        mem_bytes: int,
        task_blocks: int,
        task_mem_bytes: int,
    ) -> bool:
        """Whether a task joins a wave already holding ``count`` tasks.

        An empty wave admits anything that passed :meth:`validate_task`:
        a task that fits the device but not alongside the wave's current
        residents simply opens the next wave.
        """
        if count == 0:
            return True
        if self.max_concurrent is not None and count >= self.max_concurrent:
            return False
        if blocks + task_blocks > self.num_sms:
            return False
        if mem_bytes + task_mem_bytes > self.mem_budget_bytes:
            return False
        return True


@dataclass(frozen=True)
class TaskCost:
    """Serial resource demands of one independent task."""

    latency_s: float
    compute_s: float
    mem_bytes: int = 0
    blocks: int = 1

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.compute_s < 0:
            raise ValidationError("task times must be non-negative")
        if self.mem_bytes < 0:
            raise ValidationError("mem_bytes must be non-negative")
        if self.blocks < 1:
            raise ValidationError("blocks must be >= 1")

    @property
    def serial_s(self) -> float:
        """Wall time of this task when run alone."""
        return self.latency_s + self.compute_s


@dataclass
class ScheduledTask:
    """A task submitted to the scheduler.

    ``clock`` optionally carries the task's per-category breakdown so the
    plan can produce an aggregate breakdown consistent with the makespan.
    """

    name: str
    cost: TaskCost
    clock: Optional[SimClock] = None

    @classmethod
    def from_clock(
        cls,
        name: str,
        clock: SimClock,
        *,
        mem_bytes: int = 0,
        blocks: int = 1,
    ) -> "ScheduledTask":
        """Build a task whose cost is exactly what a solver's clock recorded."""
        cost = TaskCost(
            latency_s=clock.latency_s,
            compute_s=clock.compute_s,
            mem_bytes=mem_bytes,
            blocks=blocks,
        )
        return cls(name=name, cost=cost, clock=clock)


@dataclass
class Wave:
    """One group of tasks executed concurrently."""

    tasks: list[ScheduledTask] = field(default_factory=list)

    @property
    def mem_bytes(self) -> int:
        """Device memory the wave keeps resident."""
        return sum(t.cost.mem_bytes for t in self.tasks)

    @property
    def blocks(self) -> int:
        """SM blocks the wave occupies."""
        return sum(t.cost.blocks for t in self.tasks)

    @property
    def makespan_s(self) -> float:
        """Concurrent wall time of the wave (see the module docstring)."""
        if not self.tasks:
            return 0.0
        longest_chain = max(t.cost.serial_s for t in self.tasks)
        total_compute = sum(t.cost.compute_s for t in self.tasks)
        return max(longest_chain, total_compute)


@dataclass
class SchedulePlan:
    """The scheduler's output: waves plus derived totals."""

    waves: list[Wave]

    @property
    def makespan_s(self) -> float:
        """Total wall time: waves execute back to back."""
        return sum(wave.makespan_s for wave in self.waves)

    @property
    def serial_s(self) -> float:
        """Wall time had every task run one after another."""
        return sum(t.cost.serial_s for wave in self.waves for t in wave.tasks)

    @property
    def speedup(self) -> float:
        """Serial time over concurrent makespan (>= 1 up to rounding)."""
        makespan = self.makespan_s
        return self.serial_s / makespan if makespan > 0 else 1.0

    @property
    def max_concurrency(self) -> int:
        """Largest number of tasks co-resident in one wave."""
        return max((len(wave.tasks) for wave in self.waves), default=0)

    def aggregate_clock(self) -> SimClock:
        """Per-category breakdown rescaled so its total equals the makespan.

        Category *fractions* are those of the summed task clocks; the
        overall magnitude reflects the concurrent schedule.  Tasks without
        clocks contribute only to the magnitude correction.
        """
        combined = SimClock()
        for wave in self.waves:
            for task in wave.tasks:
                if task.clock is not None:
                    combined.merge(task.clock)
        total = combined.elapsed_s
        result = SimClock()
        if total > 0:
            result.merge_scaled(combined, self.makespan_s / total)
        return result


class ConcurrentScheduler:
    """Packs independent tasks into concurrent waves on one device."""

    def __init__(
        self,
        device: DeviceSpec,
        *,
        max_concurrent: Optional[int] = None,
        mem_budget_bytes: Optional[int] = None,
    ) -> None:
        self.device = device
        budget = (
            mem_budget_bytes
            if mem_budget_bytes is not None
            else device.global_mem_bytes
        )
        self.limits = WaveLimits(
            num_sms=device.num_sms,
            mem_budget_bytes=int(budget),
            max_concurrent=max_concurrent,
        )
        self.max_concurrent = max_concurrent
        self.mem_budget_bytes = self.limits.mem_budget_bytes

    def plan(
        self,
        tasks: Sequence[ScheduledTask],
        *,
        tracer: Optional[Tracer] = None,
    ) -> SchedulePlan:
        """First-fit-decreasing packing by serial time.

        Every task is validated against the device capacity first: a task
        whose SM-block count or memory footprint exceeds what the device
        can hold even alone raises :class:`ValidationError` naming the
        task (it used to underpack silently as a solo wave).

        With ``tracer`` set, the packing is recorded as a
        ``scheduler.plan`` span carrying wave count, concurrency and
        speedup attributes.
        """
        with maybe_span(tracer, "scheduler.plan", n_tasks=len(tasks)) as span:
            for task in tasks:
                self.limits.validate_task(
                    task.name,
                    blocks=task.cost.blocks,
                    mem_bytes=task.cost.mem_bytes,
                )
            pending = sorted(tasks, key=lambda t: t.cost.serial_s, reverse=True)
            waves: list[Wave] = []
            for task in pending:
                placed = False
                for wave in waves:
                    if self._fits(wave, task):
                        wave.tasks.append(task)
                        placed = True
                        break
                if not placed:
                    waves.append(Wave(tasks=[task]))
            plan = SchedulePlan(waves=waves)
            span.set(
                waves=len(plan.waves),
                max_concurrency=plan.max_concurrency,
                speedup=plan.speedup,
                makespan_s=plan.makespan_s,
                serial_s=plan.serial_s,
            )
            return plan

    def _fits(self, wave: Wave, task: ScheduledTask) -> bool:
        return self.limits.admits(
            count=len(wave.tasks),
            blocks=wave.blocks,
            mem_bytes=wave.mem_bytes,
            task_blocks=task.cost.blocks,
            task_mem_bytes=task.cost.mem_bytes,
        )
