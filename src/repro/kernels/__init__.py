"""Kernel functions and kernel-value machinery.

Implements the paper's four kernel functions (Section 2.1), batched
kernel-row computation (Section 3.3.1: "computing those kernel values is
essentially matrix multiplication"), the GPU kernel-value buffer with FIFO
batch replacement, and the MP-SVM-level class-pair block sharing of
Figure 3.
"""

from repro.kernels.cache import BufferStats, KernelBuffer
from repro.kernels.functions import (
    GaussianKernel,
    KernelFunction,
    LinearKernel,
    PolynomialKernel,
    SigmoidKernel,
    kernel_from_name,
)
from repro.kernels.rows import KernelRowComputer
from repro.kernels.shared import SharedClassPairKernels

__all__ = [
    "BufferStats",
    "GaussianKernel",
    "KernelBuffer",
    "KernelFunction",
    "KernelRowComputer",
    "LinearKernel",
    "PolynomialKernel",
    "SharedClassPairKernels",
    "SigmoidKernel",
    "kernel_from_name",
]
