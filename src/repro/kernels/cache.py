"""The GPU kernel-value buffer (Section 3.3.1, "Maintaining a GPU buffer").

The buffer is a preallocated region of device global memory that stores
whole rows of the kernel matrix keyed by instance index.  The paper uses
first-in-first-out replacement at batch granularity ("the first-in
first-out batch replacement strategy is used when the buffer is full";
finding better policies is explicitly left out of scope) — we implement
FIFO as the default and LRU/LFU for the ablation benchmark.

The backing storage is a single ``(capacity, row_length)`` array whose
device footprint is registered with the allocator, so buffer size directly
competes with everything else for simulated GPU memory (the Figure 6
trade-off).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.gpusim.engine import FLOAT_BYTES
from repro.gpusim.memory import DeviceAllocator, DeviceBuffer
from repro.telemetry.tracer import Tracer, maybe_span

__all__ = ["KernelBuffer", "BufferStats"]

POLICIES = ("fifo", "lru", "lfu")


@dataclass
class BufferStats:
    """Hit/miss accounting for one buffer's lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    inserts: int = 0

    @property
    def requests(self) -> int:
        """Total lookups (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the buffer."""
        return self.hits / self.requests if self.requests else 0.0

    def snapshot(self) -> "BufferStats":
        """An independent copy of the current counts."""
        return BufferStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            inserts=self.inserts,
        )

    def since(self, earlier: "BufferStats") -> "BufferStats":
        """Counts accumulated between an earlier snapshot and now."""
        return BufferStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
            inserts=self.inserts - earlier.inserts,
        )

    def as_dict(self) -> dict[str, float]:
        """JSON-safe counts plus derived rates (requests, hit_rate)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "inserts": self.inserts,
            "requests": self.requests,
            "hit_rate": self.hit_rate,
        }


class KernelBuffer:
    """Fixed-capacity store of kernel-matrix rows with pluggable eviction."""

    def __init__(
        self,
        capacity_rows: int,
        row_length: int,
        *,
        policy: str = "fifo",
        allocator: Optional[DeviceAllocator] = None,
        tag: str = "kernel-buffer",
        tracer: Optional[Tracer] = None,
    ) -> None:
        if capacity_rows < 1:
            raise ValidationError("capacity_rows must be >= 1")
        if row_length < 1:
            raise ValidationError("row_length must be >= 1")
        if policy not in POLICIES:
            raise ValidationError(f"policy must be one of {POLICIES}, got {policy!r}")
        self.capacity_rows = int(capacity_rows)
        self.row_length = int(row_length)
        self.policy = policy
        self.tracer = tracer
        self.stats = BufferStats()
        self._storage = np.empty((self.capacity_rows, self.row_length))
        self._slot_of: dict[int, int] = {}
        self._free_slots: deque[int] = deque(range(self.capacity_rows))
        # FIFO: insertion order.  LRU: recency order (front = coldest).
        self._order: OrderedDict[int, None] = OrderedDict()
        self._frequency: dict[int, int] = {}
        self._device_buffer: Optional[DeviceBuffer] = None
        if allocator is not None:
            self._device_buffer = allocator.allocate(self.nbytes, tag=tag)

    @property
    def nbytes(self) -> int:
        """Device footprint of the backing storage."""
        return self.capacity_rows * self.row_length * FLOAT_BYTES

    @property
    def size(self) -> int:
        """Rows currently resident."""
        return len(self._slot_of)

    def free(self) -> None:
        """Release the registered device memory (if any)."""
        if self._device_buffer is not None and not self._device_buffer.freed:
            self._device_buffer.free()

    def __enter__(self) -> "KernelBuffer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.free()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def contains(self, row_id: int) -> bool:
        """Membership probe; does not count as a request."""
        return int(row_id) in self._slot_of

    def get(self, row_id: int) -> Optional[np.ndarray]:
        """Fetch a row (a read-only view) or None on miss."""
        rid = int(row_id)
        slot = self._slot_of.get(rid)
        if slot is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._touch(rid)
        view = self._storage[slot]
        view.flags.writeable = False
        return view

    def fetch(
        self,
        row_ids: Sequence[int],
        compute_missing: Callable[[np.ndarray], np.ndarray],
    ) -> np.ndarray:
        """Assemble rows, computing (and inserting) the missing ones in batch.

        ``compute_missing`` receives the missing ids as one array and must
        return the corresponding rows — this is the paper's batched kernel
        computation; the buffer guarantees it is called at most once.
        """
        ids = [int(r) for r in row_ids]
        out = np.empty((len(ids), self.row_length))
        missing_ids: list[int] = []
        missing_pos: list[int] = []
        for pos, rid in enumerate(ids):
            row = self.get(rid)
            if row is None:
                missing_ids.append(rid)
                missing_pos.append(pos)
            else:
                out[pos] = row
        if missing_ids:
            with maybe_span(self.tracer, "kernel_buffer.fill") as span:
                rows = np.asarray(
                    compute_missing(np.asarray(missing_ids, dtype=np.int64))
                )
                if rows.shape != (len(missing_ids), self.row_length):
                    raise ValidationError(
                        f"compute_missing returned shape {rows.shape}, expected "
                        f"{(len(missing_ids), self.row_length)}"
                    )
                out[missing_pos] = rows
                evictions_before = self.stats.evictions
                self.put_batch(missing_ids, rows)
                span.set(
                    missing=len(missing_ids),
                    hits=len(ids) - len(missing_ids),
                    evictions=self.stats.evictions - evictions_before,
                )
        return out

    # ------------------------------------------------------------------
    # Insertion / eviction
    # ------------------------------------------------------------------
    def put_batch(self, row_ids: Sequence[int], rows: np.ndarray) -> None:
        """Insert a batch of rows, evicting per the policy when full.

        A batch larger than the whole buffer keeps only its last
        ``capacity_rows`` rows (the earlier ones would be evicted by the
        rest of the same batch anyway).
        """
        ids = [int(r) for r in row_ids]
        rows = np.asarray(rows, dtype=np.float64)
        if rows.shape != (len(ids), self.row_length):
            raise ValidationError(
                f"rows shape {rows.shape} does not match ids ({len(ids)}) "
                f"x row_length ({self.row_length})"
            )
        if len(set(ids)) != len(ids):
            raise ValidationError("duplicate row ids in one batch")
        if len(ids) > self.capacity_rows:
            ids = ids[-self.capacity_rows :]
            rows = rows[-self.capacity_rows :]
        for rid, row in zip(ids, rows):
            self._put_one(rid, row)

    def _put_one(self, rid: int, row: np.ndarray) -> None:
        slot = self._slot_of.get(rid)
        if slot is not None:  # refresh in place
            self._storage[slot] = row
            self._touch(rid)
            return
        if not self._free_slots:
            self._evict_one()
        slot = self._free_slots.popleft()
        self._storage[slot] = row
        self._slot_of[rid] = slot
        self._order[rid] = None
        self._frequency[rid] = 0
        self.stats.inserts += 1

    def _evict_one(self) -> None:
        if self.policy in ("fifo", "lru"):
            victim, _ = self._order.popitem(last=False)
        else:  # lfu — min is stable, so frequency ties break by age
            victim = min(self._order, key=self._frequency.__getitem__)
            del self._order[victim]
        slot = self._slot_of.pop(victim)
        del self._frequency[victim]
        self._free_slots.append(slot)
        self.stats.evictions += 1

    def _touch(self, rid: int) -> None:
        self._frequency[rid] += 1
        if self.policy == "lru":
            self._order.move_to_end(rid)

    def resident_ids(self) -> list[int]:
        """Row ids currently stored, coldest first."""
        return list(self._order)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KernelBuffer({self.size}/{self.capacity_rows} rows x "
            f"{self.row_length}, policy={self.policy!r}, "
            f"hit_rate={self.stats.hit_rate:.3f})"
        )
