"""The paper's four kernel functions (Section 2.1).

- Gaussian:    ``K(x, y) = exp(-gamma * ||x - y||^2)``
- Linear:      ``K(x, y) = x . y``
- Polynomial:  ``K(x, y) = (a * x . y + r)^d``
- Sigmoid:     ``K(x, y) = tanh(a * x . y + r)``

All four reduce to a cross dot-product matrix plus an elementwise
transform, which is why the paper computes batched kernel rows as one
(cu)SPARSE matrix product.  Every method takes the :class:`Engine` it
should charge, so kernel evaluation is accounted wherever it happens
(training rows, prediction rows, sigmoid fitting).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.gpusim.engine import Engine
from repro.sparse import ops as mops

__all__ = [
    "KernelFunction",
    "LinearKernel",
    "GaussianKernel",
    "PolynomialKernel",
    "SigmoidKernel",
    "kernel_from_name",
]


class KernelFunction(ABC):
    """A Mercer kernel evaluated via batched cross products."""

    name: str = "abstract"

    @abstractmethod
    def transform(
        self,
        engine: Engine,
        dots: np.ndarray,
        norms_a: Optional[np.ndarray],
        norms_b: Optional[np.ndarray],
        *,
        category: str,
    ) -> np.ndarray:
        """Map a cross dot-product matrix to kernel values (charged)."""

    @abstractmethod
    def diagonal(self, engine: Engine, norms: np.ndarray, *, category: str) -> np.ndarray:
        """``K(x_i, x_i)`` from squared row norms (needed for eta terms)."""

    @abstractmethod
    def params(self) -> dict[str, float]:
        """Hyper-parameters, for model persistence and repr."""

    @property
    def needs_norms(self) -> bool:
        """Whether :meth:`transform` requires squared row norms."""
        return False

    def pairwise(
        self,
        engine: Engine,
        a: mops.MatrixLike,
        b: mops.MatrixLike,
        *,
        category: str,
        norms_a: Optional[np.ndarray] = None,
        norms_b: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Full kernel block ``K(a_i, b_j)``; one batched product + transform.

        ``norms_a`` / ``norms_b`` are squared row norms; pass precomputed
        values to avoid recharging them (the solvers compute them once per
        dataset).  They are only consulted by kernels that need them.
        """
        if self.needs_norms:
            if norms_a is None:
                norms_a = self.compute_norms(engine, a, category=category)
            if norms_b is None:
                norms_b = self.compute_norms(engine, b, category=category)
        dots = engine.matmul_transpose(a, b, category=category)
        return self.transform(engine, dots, norms_a, norms_b, category=category)

    @staticmethod
    def compute_norms(
        engine: Engine, matrix: mops.MatrixLike, *, category: str = "kernel_values"
    ) -> np.ndarray:
        """Squared row norms, charged as one elementwise+reduce pass."""
        engine.elementwise(
            category,
            mops.matrix_nbytes(matrix) // 8,
            flops_per_element=2,
            arrays_read=1,
            arrays_written=0,
        )
        return engine.backend.row_norms_sq(matrix)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, KernelFunction)
            and self.name == other.name
            and self.params() == other.params()
        )

    def __hash__(self) -> int:
        return hash((self.name, tuple(sorted(self.params().items()))))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in self.params().items())
        return f"{type(self).__name__}({inner})"


class LinearKernel(KernelFunction):
    """``K(x, y) = x . y``."""

    name = "linear"

    def transform(self, engine, dots, norms_a, norms_b, *, category):
        return dots

    def diagonal(self, engine, norms, *, category):
        engine.elementwise(category, norms.size, arrays_read=1)
        return norms.copy()

    def params(self):
        return {}


class GaussianKernel(KernelFunction):
    """``K(x, y) = exp(-gamma * ||x - y||^2)`` (a.k.a. RBF)."""

    name = "gaussian"

    def __init__(self, gamma: float) -> None:
        if gamma <= 0:
            raise ValidationError(f"gamma must be positive, got {gamma}")
        self.gamma = float(gamma)

    @property
    def needs_norms(self) -> bool:
        """The squared-distance expansion requires row norms."""
        return True

    def transform(self, engine, dots, norms_a, norms_b, *, category):
        if norms_a is None or norms_b is None:
            raise ValidationError("Gaussian kernel requires row norms")
        engine.elementwise(category, dots.size, flops_per_element=5, arrays_read=3)
        sq_dist = norms_a[:, None] + norms_b[None, :] - 2.0 * dots
        np.maximum(sq_dist, 0.0, out=sq_dist)  # guard tiny negatives
        return np.exp(-self.gamma * sq_dist)

    def diagonal(self, engine, norms, *, category):
        engine.elementwise(category, norms.size, arrays_read=0)
        return np.ones_like(norms)

    def params(self):
        return {"gamma": self.gamma}


class PolynomialKernel(KernelFunction):
    """``K(x, y) = (a * x . y + r)^d`` with the paper's (a, r, d) naming."""

    name = "polynomial"

    def __init__(self, degree: int = 3, gamma: float = 1.0, coef0: float = 0.0) -> None:
        if degree < 1:
            raise ValidationError(f"degree must be >= 1, got {degree}")
        if gamma <= 0:
            raise ValidationError(f"gamma must be positive, got {gamma}")
        self.degree = int(degree)
        self.gamma = float(gamma)
        self.coef0 = float(coef0)

    def transform(self, engine, dots, norms_a, norms_b, *, category):
        engine.elementwise(
            category, dots.size, flops_per_element=2 + self.degree, arrays_read=1
        )
        return np.power(self.gamma * dots + self.coef0, self.degree)

    def diagonal(self, engine, norms, *, category):
        engine.elementwise(category, norms.size, flops_per_element=2 + self.degree, arrays_read=1)
        return np.power(self.gamma * norms + self.coef0, self.degree)

    def params(self):
        return {"degree": self.degree, "gamma": self.gamma, "coef0": self.coef0}


class SigmoidKernel(KernelFunction):
    """``K(x, y) = tanh(a * x . y + r)``."""

    name = "sigmoid"

    def __init__(self, gamma: float = 1.0, coef0: float = 0.0) -> None:
        if gamma <= 0:
            raise ValidationError(f"gamma must be positive, got {gamma}")
        self.gamma = float(gamma)
        self.coef0 = float(coef0)

    def transform(self, engine, dots, norms_a, norms_b, *, category):
        engine.elementwise(category, dots.size, flops_per_element=8, arrays_read=1)
        return np.tanh(self.gamma * dots + self.coef0)

    def diagonal(self, engine, norms, *, category):
        engine.elementwise(category, norms.size, flops_per_element=8, arrays_read=1)
        return np.tanh(self.gamma * norms + self.coef0)

    def params(self):
        return {"gamma": self.gamma, "coef0": self.coef0}


def kernel_from_name(name: str, **params: float) -> KernelFunction:
    """Factory used by the estimator API (``kernel="gaussian"`` etc.).

    ``"rbf"`` is accepted as an alias for ``"gaussian"``.  A Gaussian kernel
    without an explicit gamma gets ``gamma = 1 / n_features`` responsibility
    pushed to the caller — here it must be supplied.
    """
    registry = {
        "linear": LinearKernel,
        "gaussian": GaussianKernel,
        "rbf": GaussianKernel,
        "polynomial": PolynomialKernel,
        "poly": PolynomialKernel,
        "sigmoid": SigmoidKernel,
    }
    lowered = name.lower()
    if lowered not in registry:
        raise ValidationError(
            f"unknown kernel {name!r}; expected one of {sorted(set(registry))}"
        )
    try:
        return registry[lowered](**params)
    except TypeError as exc:
        raise ValidationError(f"bad parameters for kernel {name!r}: {exc}") from exc


def gamma_scale(n_features: int) -> float:
    """The common ``1 / n_features`` default for Gaussian gamma."""
    if n_features < 1:
        raise ValidationError("n_features must be >= 1")
    return 1.0 / n_features
