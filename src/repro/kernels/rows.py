"""Batched kernel-row computation against a fixed training set.

The paper's key binary-level optimisation precomputes all kernel values for
the q new violating instances as *one* batched product ("computing those
kernel values is essentially matrix multiplication between the q instances
and the rest of the training instances").  :class:`KernelRowComputer` owns
the dataset-side state (row norms, diagonal) and exposes exactly that
batched operation, charged to the engine under the ``kernel_values``
category so Figure 11's breakdown falls out of the clock.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.gpusim.engine import FLOAT_BYTES, Engine
from repro.kernels.functions import KernelFunction
from repro.sparse import ops as mops

__all__ = ["KernelRowComputer"]


class KernelRowComputer:
    """Computes rows/blocks of the kernel matrix of one dataset."""

    def __init__(
        self,
        engine: Engine,
        kernel: KernelFunction,
        data: mops.MatrixLike,
        *,
        category: str = "kernel_values",
    ) -> None:
        self.engine = engine
        self.kernel = kernel
        self.data = data
        self.category = category
        self._norms: Optional[np.ndarray] = None
        self._diagonal: Optional[np.ndarray] = None

    @property
    def n(self) -> int:
        """Number of instances (kernel-matrix side length)."""
        return mops.n_rows(self.data)

    @property
    def row_nbytes(self) -> int:
        """Device bytes one kernel row occupies (buffer sizing)."""
        return self.n * FLOAT_BYTES

    # ------------------------------------------------------------------
    # Dataset-side cached quantities
    # ------------------------------------------------------------------
    def norms(self) -> Optional[np.ndarray]:
        """Squared row norms, computed once (None for norm-free kernels)."""
        if not self.kernel.needs_norms:
            return None
        if self._norms is None:
            self._norms = KernelFunction.compute_norms(
                self.engine, self.data, category=self.category
            )
        return self._norms

    def diagonal(self) -> np.ndarray:
        """``K(x_i, x_i)`` for every instance (the eta terms of Eq. 5)."""
        if self._diagonal is None:
            norms = self.norms()
            if norms is None:
                norms = self.engine.backend.row_norms_sq(self.data)
                self.engine.elementwise(
                    self.category,
                    mops.matrix_nbytes(self.data) // FLOAT_BYTES,
                    flops_per_element=2,
                    arrays_read=1,
                    arrays_written=0,
                )
            self._diagonal = self.kernel.diagonal(
                self.engine, norms, category=self.category
            )
        return self._diagonal

    # ------------------------------------------------------------------
    # Row / block computation
    # ------------------------------------------------------------------
    def rows(self, indices: object, *, category: Optional[str] = None) -> np.ndarray:
        """Kernel-matrix rows for the given instance indices, one batch.

        Returns a ``(len(indices), n)`` dense array.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if idx.ndim != 1:
            raise ValidationError(f"indices must be 1-D, got shape {idx.shape}")
        cat = category if category is not None else self.category
        subset = mops.take_rows(self.data, idx)
        norms = self.norms()
        return self.kernel.pairwise(
            self.engine,
            subset,
            self.data,
            category=cat,
            norms_a=None if norms is None else norms[idx],
            norms_b=norms,
        )

    def block(
        self,
        other: mops.MatrixLike,
        *,
        norms_other: Optional[np.ndarray] = None,
        column_indices: Optional[np.ndarray] = None,
        category: Optional[str] = None,
    ) -> np.ndarray:
        """Kernel block ``K(other_i, data_j)`` (e.g. test-vs-SV-pool).

        ``column_indices`` restricts the data side to a subset of instances
        (used by the class-pair sharing layer).
        """
        cat = category if category is not None else self.category
        norms = self.norms()
        data = self.data
        if column_indices is not None:
            col_idx = np.asarray(column_indices, dtype=np.int64)
            data = mops.take_rows(self.data, col_idx)
            if norms is not None:
                norms = norms[col_idx]
        if self.kernel.needs_norms and norms_other is None:
            norms_other = KernelFunction.compute_norms(self.engine, other, category=cat)
        return self.kernel.pairwise(
            self.engine,
            other,
            data,
            category=cat,
            norms_a=norms_other,
            norms_b=norms,
        )
