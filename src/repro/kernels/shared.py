"""MP-SVM-level kernel-value sharing across binary SVMs (Figure 3).

A pairwise problem (s, t) only ever needs kernel values between instances
of classes s and t.  Laid out naively, each of the k(k-1)/2 binary SVMs
owns four private blocks (ss, st, ts, tt) — 12 blocks for k = 3.  The
paper's shared layout stores each *class-pair block* once (9 for k = 3):
the diagonal blocks (s, s) are shared by every SVM involving class s, and
(s, t) serves both orientations.

During training the solvers pull kernel *rows*; the shareable unit is
therefore a row *segment*: the kernel values of one instance against one
class.  :class:`SharedClassPairKernels` caches segments keyed by
``(instance, class)`` so that concurrent binary SVMs reuse each other's
work — SVM(s, t) computing row i of class s against class s makes that
segment free for SVM(s, u).

Set ``enabled=False`` to disable reuse (the ablation baseline); the
interface is identical but every request recomputes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.gpusim.clock import SimClock
from repro.gpusim.counters import OpCounters
from repro.gpusim.engine import FLOAT_BYTES, Engine
from repro.gpusim.memory import DeviceAllocator
from repro.kernels.rows import KernelRowComputer
from repro.sparse import ops as mops

__all__ = ["SharedClassPairKernels", "SharingStats", "unique_block_count", "naive_block_count"]


def unique_block_count(n_classes: int) -> int:
    """Blocks in the shared layout: the full k x k class-pair grid.

    Matches Figure 3b (9 blocks for three classes).
    """
    if n_classes < 1:
        raise ValidationError("n_classes must be >= 1")
    return n_classes * n_classes


def naive_block_count(n_classes: int) -> int:
    """Blocks without sharing: each binary SVM owns ss, st, ts, tt.

    Matches Figure 3a (3 SVMs x 4 blocks = 12 for three classes).
    """
    if n_classes < 1:
        raise ValidationError("n_classes must be >= 1")
    return 2 * n_classes * (n_classes - 1)


@dataclass
class SharingStats:
    """Segment-level reuse accounting.

    The ``prefetch_*`` fields track the interleaved driver's fused wave
    launches (:meth:`SharedClassPairKernels.prefetch`): how many fused
    launches ran, how many segments they computed, and how many member
    demands were deduplicated against another wave member's computation
    of the same segment (the cross-solver sharing win).
    """

    segment_hits: int = 0
    segment_misses: int = 0
    values_reused: int = 0
    values_computed: int = 0
    prefetch_launches: int = 0
    prefetch_segments: int = 0
    prefetch_dedup_hits: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of segment requests served from the share."""
        total = self.segment_hits + self.segment_misses
        return self.segment_hits / total if total else 0.0

    @property
    def bytes_saved(self) -> int:
        """Device bytes not recomputed thanks to sharing."""
        return self.values_reused * FLOAT_BYTES


class SharedClassPairKernels:
    """Cross-SVM cache of per-class kernel-row segments."""

    def __init__(
        self,
        computer: KernelRowComputer,
        class_indices: Mapping[int, np.ndarray],
        *,
        enabled: bool = True,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.computer = computer
        self.class_indices = {
            int(label): np.asarray(idx, dtype=np.int64)
            for label, idx in class_indices.items()
        }
        for label, idx in self.class_indices.items():
            if idx.size == 0:
                raise ValidationError(f"class {label} has no instances")
        self.enabled = enabled
        self.max_bytes = max_bytes
        self.stats = SharingStats()
        self._segments: OrderedDict[tuple[int, int], np.ndarray] = OrderedDict()
        self._resident_bytes = 0
        # Segments computed by a fused prefetch whose owning request has
        # not consumed them yet: the owner's consuming fetch is accounted
        # as the miss it would have been, not as a reuse hit.
        self._prefetched_fresh: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def rows_for_pair(
        self,
        global_ids: np.ndarray,
        class_s: int,
        class_t: int,
        *,
        category: str = "kernel_values",
    ) -> np.ndarray:
        """Kernel rows of the given instances against classes (s, t).

        Columns are ordered ``[class s instances..., class t instances...]``
        — the local column order of the binary problem (s, t).
        """
        self._check_class(class_s)
        self._check_class(class_t)
        ids = np.asarray(global_ids, dtype=np.int64)
        seg_s = self._segments_for_class(ids, class_s, category)
        seg_t = self._segments_for_class(ids, class_t, category)
        return np.hstack([seg_s, seg_t])

    def segment(
        self, global_id: int, class_label: int, *, category: str = "kernel_values"
    ) -> np.ndarray:
        """One instance's kernel values against one class."""
        result = self._segments_for_class(
            np.asarray([global_id], dtype=np.int64), class_label, category
        )
        return result[0]

    def prefetch(
        self,
        requests: Sequence[tuple[np.ndarray, int, int]],
        *,
        category: str = "kernel_values",
    ) -> int:
        """Fuse a wave's kernel-row demand into one batched launch.

        ``requests`` holds one ``(global_ids, class_s, class_t)`` triple per
        concurrently-active binary SVM.  The union of segments missing from
        the share is computed as a *single* fused kernel launch on the
        device — the numerics run per class pair (each kernel value is the
        same per-element product regardless of batch composition, so the
        results are bitwise identical to per-solver computation), but the
        simulated cost is charged to the engine once with the summed
        FLOPs/bytes and a single launch overhead.  Segments one member
        computes are immediately reusable by every other member of the wave
        (``prefetch_dedup_hits``).

        Returns the number of segments computed.  A no-op when sharing is
        disabled (the ablation: each solver computes privately).
        """
        if not self.enabled or not requests:
            return 0
        demanded_ids: list[np.ndarray] = []
        demanded_classes: list[np.ndarray] = []
        for global_ids, class_s, class_t in requests:
            self._check_class(class_s)
            self._check_class(class_t)
            ids = np.asarray(global_ids, dtype=np.int64)
            for class_label in (class_s, class_t):
                demanded_ids.append(ids)
                demanded_classes.append(np.full(ids.size, class_label, dtype=np.int64))
        all_ids = np.concatenate(demanded_ids)
        all_classes = np.concatenate(demanded_classes)
        # Dedup the wave's demand in one vectorized pass (first occurrence
        # wins, preserving request order) instead of per-segment dict probes.
        paired = np.stack([all_ids, all_classes], axis=1)
        _, first_pos, counts = np.unique(
            paired, axis=0, return_index=True, return_counts=True
        )
        order = np.argsort(first_pos)
        queued: OrderedDict[tuple[int, int], None] = OrderedDict()
        for pos, repeat_count in zip(first_pos[order], counts[order]):
            key = (int(all_ids[pos]), int(all_classes[pos]))
            if key in self._segments:
                continue
            queued[key] = None
            self.stats.prefetch_dedup_hits += int(repeat_count) - 1
        if not queued:
            return 0

        # Execute the per-class products against a scratch engine, then
        # charge the real engine once with the totals: one fused launch.
        engine = self.computer.engine
        scratch = Engine(
            engine.device,
            clock=SimClock(),
            counters=OpCounters(),
            allocator=DeviceAllocator(engine.device.global_mem_bytes),
            flop_efficiency=engine.flop_efficiency,
            bandwidth_efficiency=engine.bandwidth_efficiency,
        )
        by_class: OrderedDict[int, list[int]] = OrderedDict()
        for gid, class_label in queued:
            by_class.setdefault(class_label, []).append(gid)
        norms = self.computer.norms()
        for class_label, gids in by_class.items():
            columns = self.class_indices[class_label]
            row_ids = np.asarray(gids, dtype=np.int64)
            block = self.computer.kernel.pairwise(
                scratch,
                mops.take_rows(self.computer.data, row_ids),
                mops.take_rows(self.computer.data, columns),
                category=category,
                norms_a=None if norms is None else norms[row_ids],
                norms_b=None if norms is None else norms[columns],
            )
            self.stats.values_computed += block.size
            for gid, row in zip(gids, block):
                key = (gid, class_label)
                self._store(key, row)
                if key in self._segments:
                    self._prefetched_fresh.add(key)
        used = scratch.counters
        engine.charge(
            category,
            flops=used.flops,
            bytes_read=used.bytes_read,
            bytes_written=used.bytes_written,
            shared_bytes=used.shared_bytes,
            launches=1,
            pcie_bytes=used.pcie_bytes,
        )
        self.stats.prefetch_launches += 1
        self.stats.prefetch_segments += len(queued)
        return len(queued)

    @property
    def resident_bytes(self) -> int:
        """Bytes the segment store currently occupies."""
        return self._resident_bytes

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_class(self, label: int) -> None:
        if label not in self.class_indices:
            raise ValidationError(f"unknown class label {label}")

    def _segments_for_class(
        self, ids: np.ndarray, class_label: int, category: str
    ) -> np.ndarray:
        columns = self.class_indices[class_label]
        out = np.empty((ids.size, columns.size))
        missing_ids: list[int] = []
        missing_pos: list[int] = []
        for pos, gid in enumerate(ids):
            key = (int(gid), class_label)
            cached = self._segments.get(key) if self.enabled else None
            if cached is not None:
                out[pos] = cached
                self._segments.move_to_end(key)
                if key in self._prefetched_fresh:
                    # First touch of a segment this consumer's own wave
                    # request caused to be computed: account it as the
                    # miss it would have been without the fused launch.
                    self._prefetched_fresh.discard(key)
                    self.stats.segment_misses += 1
                else:
                    self.stats.segment_hits += 1
                    self.stats.values_reused += columns.size
            else:
                missing_ids.append(int(gid))
                missing_pos.append(pos)
                self.stats.segment_misses += 1
        if missing_ids:
            subset = mops.take_rows(self.computer.data, np.asarray(missing_ids))
            norms = self.computer.norms()
            block = self.computer.kernel.pairwise(
                self.computer.engine,
                subset,
                mops.take_rows(self.computer.data, columns),
                category=category,
                norms_a=None if norms is None else norms[np.asarray(missing_ids)],
                norms_b=None if norms is None else norms[columns],
            )
            self.stats.values_computed += block.size
            out[missing_pos] = block
            if self.enabled:
                for gid, row in zip(missing_ids, block):
                    self._store((gid, class_label), row)
        return out

    def _store(self, key: tuple[int, int], segment: np.ndarray) -> None:
        nbytes = segment.size * FLOAT_BYTES
        if self.max_bytes is not None:
            while self._resident_bytes + nbytes > self.max_bytes and self._segments:
                evicted_key, evicted = self._segments.popitem(last=False)
                self._resident_bytes -= evicted.size * FLOAT_BYTES
                self._prefetched_fresh.discard(evicted_key)
            if self._resident_bytes + nbytes > self.max_bytes:
                return  # segment alone exceeds the cap; skip caching
        self._segments[key] = segment.copy()
        self._resident_bytes += nbytes
