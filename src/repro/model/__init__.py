"""Trained-model containers and persistence.

An :class:`MPSVMModel` is what training produces and prediction consumes:
the class labels, the kernel, the fitted sigmoids, and the shared
support-vector pool (Section 3.3.3).  Models round-trip through a simple
versioned text format (support vectors stored once, in LibSVM sparse
notation).
"""

from repro.model.binary import BinarySVMRecord
from repro.model.multiclass import MPSVMModel
from repro.model.persistence import load_model, save_model

__all__ = ["BinarySVMRecord", "MPSVMModel", "load_model", "save_model"]
