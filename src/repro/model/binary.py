"""Per-binary-SVM training record.

Holds what Algorithm 2 line 15 saves for each pairwise classifier: the
support-vector weights, the hyperplane bias, and the fitted sigmoid
(A, B).  Support vectors themselves live once in the model-level pool;
this record only references them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.probability.platt import SigmoidModel

__all__ = ["BinarySVMRecord"]


@dataclass
class BinarySVMRecord:
    """One trained pairwise SVM (class positions ``s`` < ``t``)."""

    s: int
    t: int
    global_sv_indices: np.ndarray  # into the original training set
    coefficients: np.ndarray  # alpha_i * y_i per support vector
    bias: float
    sigmoid: Optional[SigmoidModel] = None
    iterations: int = 0
    objective: float = 0.0
    training_error: float = 0.0

    @property
    def n_support(self) -> int:
        """Number of support vectors of this binary SVM."""
        return int(self.global_sv_indices.size)

    def __post_init__(self) -> None:
        self.global_sv_indices = np.asarray(self.global_sv_indices, dtype=np.int64)
        self.coefficients = np.asarray(self.coefficients, dtype=np.float64)
