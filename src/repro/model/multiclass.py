"""The trained MP-SVM model.

Bundles everything prediction needs: the sorted class labels, the kernel
function, the per-pair records (bias + sigmoid), and the shared
support-vector pool.  The heavy lifting of prediction (decision values,
sigmoid evaluation, coupling) lives in :mod:`repro.core.predictor` so
baselines can reuse it with their own sharing/parallelism flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.kernels.functions import KernelFunction
from repro.model.binary import BinarySVMRecord
from repro.multiclass.sv_sharing import SupportVectorPool

__all__ = ["MPSVMModel"]


@dataclass
class MPSVMModel:
    """A fitted multi-class (optionally probabilistic) SVM."""

    classes: np.ndarray  # original class labels, sorted
    kernel: KernelFunction
    penalty: float
    records: list[BinarySVMRecord]
    sv_pool: SupportVectorPool
    probability: bool = True
    strategy: str = "ovo"  # "ovo" (pairwise, the paper) or "ova" (one-vs-all)
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.classes = np.asarray(self.classes)
        if self.strategy not in ("ovo", "ova"):
            raise ValidationError(f"strategy must be ovo/ova, got {self.strategy!r}")
        expected = (
            self.n_classes * (self.n_classes - 1) // 2
            if self.strategy == "ovo"
            else self.n_classes
        )
        if len(self.records) != expected:
            raise ValidationError(
                f"{len(self.records)} binary records for {self.n_classes} "
                f"classes ({self.strategy}); expected {expected}"
            )
        if self.probability and any(rec.sigmoid is None for rec in self.records):
            raise ValidationError(
                "probability=True but some records lack a fitted sigmoid"
            )
        # Lazily-materialized stacked prediction arrays (see sigmoid_params
        # / pair_positions); built on first use, not persisted.
        self._sigmoid_params: tuple[np.ndarray, np.ndarray] | None = None
        self._pair_positions: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def n_classes(self) -> int:
        """Number of classes."""
        return int(self.classes.size)

    @property
    def pairs(self) -> list[tuple[int, int]]:
        """(s, t) class positions per binary SVM, in record order."""
        return [(rec.s, rec.t) for rec in self.records]

    @property
    def n_support_total(self) -> int:
        """Distinct support vectors stored (the shared pool size)."""
        return self.sv_pool.n_pool

    @property
    def n_features(self) -> int:
        """Feature count the model was trained on (pool column count)."""
        return int(self.sv_pool.pool_data.shape[1])

    def warm(self) -> "MPSVMModel":
        """Materialize every lazily-built prediction array; returns self.

        Sealing a serving session must leave nothing to build on the first
        request, so this forces the stacked ``(A, B)`` sigmoid arrays (for
        probabilistic models) and the pair-position indices that the
        batched prediction path reads on every call.
        """
        if self.probability:
            self.sigmoid_params()
        self.pair_positions()
        return self

    @property
    def bias_of_last_svm(self) -> float:
        """Bias of the last binary SVM — the quantity Table 4 reports."""
        return self.records[-1].bias

    def sigmoid_params(self) -> tuple[np.ndarray, np.ndarray]:
        """Stacked sigmoid parameters ``(A, B)`` in record order.

        The batched prediction path applies every pair sigmoid in one
        broadcast pass, so the per-record scalars are materialized once as
        two ``(n_records,)`` float64 arrays and cached on the model.
        Raises :class:`~repro.exceptions.ValidationError` if any record
        lacks a fitted sigmoid.
        """
        if self._sigmoid_params is None:
            n = len(self.records)
            a = np.empty(n)
            b = np.empty(n)
            for index, rec in enumerate(self.records):
                if rec.sigmoid is None:
                    what = (
                        f"binary SVM ({rec.s},{rec.t})"
                        if self.strategy == "ovo"
                        else f"one-vs-all SVM for class {rec.s}"
                    )
                    raise ValidationError(f"{what} has no sigmoid")
                a[index] = rec.sigmoid.a
                b[index] = rec.sigmoid.b
            self._sigmoid_params = (a, b)
        return self._sigmoid_params

    def pair_positions(self) -> tuple[np.ndarray, np.ndarray]:
        """Stacked ``(s, t)`` class-position arrays in record order (cached).

        For one-vs-all models the ``t`` array holds the REST sentinel and
        only ``s`` (the class position) is meaningful.
        """
        if self._pair_positions is None:
            self._pair_positions = (
                np.array([rec.s for rec in self.records], dtype=np.int64),
                np.array([rec.t for rec in self.records], dtype=np.int64),
            )
        return self._pair_positions

    def record_for(self, s: int, t: int) -> BinarySVMRecord:
        """The record of the binary SVM for class pair (s, t)."""
        for rec in self.records:
            if (rec.s, rec.t) == (s, t):
                return rec
        raise ValidationError(f"no binary SVM for pair ({s}, {t})")

    def labels_from_positions(self, positions: np.ndarray) -> np.ndarray:
        """Map class positions (0..k-1) back to original label values."""
        return self.classes[np.asarray(positions, dtype=np.int64)]
