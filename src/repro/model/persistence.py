"""Versioned text-format save/load for trained MP-SVM models.

Layout (all header fields one per line, ``key value...``):

    repro-mpsvm 1
    kernel <name> [<param> <value>]...
    penalty <C>
    probability <0|1>
    strategy <ovo|ova>
    classes <k> <label>...
    n_pool <count> <n_features>
    svm <s> <t> <bias> <sigmoid A> <sigmoid B> <n_sv>
    <pool positions...>
    <coefficients...>
    ... (one svm stanza per pair) ...
    SV
    <pool rows in LibSVM sparse notation, one per line, 0-based>

Support vectors are stored once (the shared pool), so the file mirrors the
paper's in-memory sharing; LibSVM's own model format does the same.
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, Union

import numpy as np

from repro.exceptions import ModelFormatError
from repro.kernels.functions import kernel_from_name
from repro.model.binary import BinarySVMRecord
from repro.model.multiclass import MPSVMModel
from repro.multiclass.sv_sharing import PooledSVM, SupportVectorPool
from repro.probability.platt import SigmoidModel
from repro.sparse import CSRMatrix

__all__ = ["save_model", "load_model"]

FORMAT_NAME = "repro-mpsvm"
FORMAT_VERSION = 1

PathOrFile = Union[str, Path, IO[str]]


def save_model(model: MPSVMModel, target: PathOrFile) -> None:
    """Write ``model`` to ``target`` in the versioned text format."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            save_model(model, handle)
        return

    write = target.write
    write(f"{FORMAT_NAME} {FORMAT_VERSION}\n")
    params = " ".join(
        f"{key} {value:.17g}" for key, value in model.kernel.params().items()
    )
    write(f"kernel {model.kernel.name}{' ' + params if params else ''}\n")
    write(f"penalty {model.penalty:.17g}\n")
    write(f"probability {1 if model.probability else 0}\n")
    write(f"strategy {model.strategy}\n")
    # Training provenance: which compute backend produced the coefficients
    # and in which working precision.  Readers older than this line skip
    # nothing (they never saw it); this reader treats a missing line as
    # the float64 reference, which is what every older file was trained on.
    backend_name = str(model.metadata.get("backend", "numpy64"))
    backend_dtype = str(model.metadata.get("dtype", "float64"))
    write(f"backend {backend_name} {backend_dtype}\n")
    # ".17g" round-trips every float64 exactly; "g" (6 significant digits)
    # silently corrupts float labels like 1234567.5 on reload.  Integer
    # labels still render without a decimal point either way.
    labels = " ".join(format(label, ".17g") for label in model.classes)
    write(f"classes {model.n_classes} {labels}\n")
    pool = model.sv_pool
    write(f"n_pool {pool.n_pool} {pool.pool_data.shape[1]}\n")
    for record, pooled in zip(model.records, pool.svms):
        sigmoid = record.sigmoid
        a = sigmoid.a if sigmoid else 0.0
        b = sigmoid.b if sigmoid else 0.0
        write(
            f"svm {record.s} {record.t} {record.bias:.17g} "
            f"{a:.17g} {b:.17g} {record.n_support}\n"
        )
        write(" ".join(str(int(p)) for p in pooled.pool_positions) + "\n")
        write(" ".join(f"{c:.17g}" for c in pooled.coefficients) + "\n")
    write("SV\n")
    data = pool.pool_data
    if not isinstance(data, CSRMatrix):
        data = CSRMatrix.from_dense(np.asarray(data))
    for i in range(data.shape[0]):
        cols, vals = data.row(i)
        write(" ".join(f"{int(c)}:{v:.17g}" for c, v in zip(cols, vals)) + "\n")


def load_model(source: PathOrFile, *, backend: object = None) -> MPSVMModel:
    """Read a model written by :func:`save_model`.

    The pool data is reconstructed as a :class:`CSRMatrix` regardless of
    the original storage format (kernel evaluation accepts either).

    ``backend`` declares the compute backend the caller will run the model
    under (a name, :class:`~repro.backends.BackendSpec` or instance;
    ``None`` means the float64 reference).  Files record the precision the
    model was trained in; a model trained in a narrower dtype (e.g. a
    float32 ``numpy32`` model) refuses to load under a backend of a
    different working dtype rather than silently reinterpreting its
    coefficients — pass the matching backend explicitly.  Files written
    before the ``backend`` header line load as float64-reference models.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return load_model(handle, backend=backend)

    lines = [line.rstrip("\n") for line in source]
    cursor = 0

    def next_line() -> str:
        nonlocal cursor
        if cursor >= len(lines):
            raise ModelFormatError("unexpected end of model file")
        line = lines[cursor]
        cursor += 1
        return line

    header = next_line().split()
    if len(header) != 2 or header[0] != FORMAT_NAME:
        raise ModelFormatError(f"not a {FORMAT_NAME} file: {header!r}")
    try:
        version = int(header[1])
    except ValueError:
        raise ModelFormatError(
            f"malformed {FORMAT_NAME} version {header[1]!r}: expected an "
            f"integer (this writer produces version {FORMAT_VERSION})"
        ) from None
    if version != FORMAT_VERSION:
        raise ModelFormatError(
            f"unsupported {FORMAT_NAME} format version: expected "
            f"{FORMAT_VERSION}, found {version}; re-save the model with "
            f"this version of repro (repro.save_model) or load it with a "
            f"release that writes version {version}"
        )

    kernel_fields = next_line().split()
    if kernel_fields[0] != "kernel" or len(kernel_fields) < 2:
        raise ModelFormatError("missing kernel line")
    kernel_params = {}
    for key, value in zip(kernel_fields[2::2], kernel_fields[3::2]):
        kernel_params[key] = int(value) if key == "degree" else float(value)
    kernel = kernel_from_name(kernel_fields[1], **kernel_params)

    penalty = float(_expect(next_line(), "penalty")[0])
    probability = bool(int(_expect(next_line(), "probability")[0]))
    strategy = _expect(next_line(), "strategy")[0]

    # Optional provenance line (absent in files written before compute
    # backends existed; those were all trained by the float64 reference).
    recorded_backend, recorded_dtype = "numpy64", "float64"
    if cursor < len(lines) and lines[cursor].startswith("backend "):
        backend_fields = _expect(next_line(), "backend")
        if len(backend_fields) != 2:
            raise ModelFormatError(
                f"malformed backend line: expected 'backend <name> <dtype>', "
                f"got fields {backend_fields!r}"
            )
        recorded_backend, recorded_dtype = backend_fields
    from repro.backends import resolve_backend

    requested = resolve_backend(backend)
    requested_dtype = np.dtype(requested.dtype).name
    if recorded_dtype != "float64" and requested_dtype != recorded_dtype:
        raise ModelFormatError(
            f"model was trained by backend {recorded_backend!r} in "
            f"{recorded_dtype}, but the requested backend "
            f"{requested.name!r} works in {requested_dtype}; refusing to "
            f"silently reinterpret the coefficients — pass "
            f"load_model(..., backend={recorded_backend!r}) (or another "
            f"{recorded_dtype} backend) to load this model"
        )

    class_fields = _expect(next_line(), "classes")
    n_classes = int(class_fields[0])
    classes = np.asarray([float(v) for v in class_fields[1 : 1 + n_classes]])
    if classes.size != n_classes:
        raise ModelFormatError("class count does not match label list")
    if np.all(classes == classes.astype(np.int64)):
        classes = classes.astype(np.int64)

    pool_fields = _expect(next_line(), "n_pool")
    n_pool, n_features = int(pool_fields[0]), int(pool_fields[1])

    records: list[BinarySVMRecord] = []
    pooled: list[PooledSVM] = []
    n_svms = (
        n_classes * (n_classes - 1) // 2 if strategy == "ovo" else n_classes
    )
    for _ in range(n_svms):
        svm_fields = _expect(next_line(), "svm")
        s, t = int(svm_fields[0]), int(svm_fields[1])
        bias = float(svm_fields[2])
        sig_a, sig_b = float(svm_fields[3]), float(svm_fields[4])
        n_sv = int(svm_fields[5])
        positions = np.asarray(
            [int(v) for v in next_line().split()], dtype=np.int64
        )
        coefficients = np.asarray([float(v) for v in next_line().split()])
        if positions.size != n_sv or coefficients.size != n_sv:
            raise ModelFormatError(f"svm ({s},{t}): SV count mismatch")
        if positions.size and (
            positions.min() < 0 or positions.max() >= n_pool
        ):
            # Per-stanza counts are attacker/bitrot-controlled: positions
            # must index the declared pool, or prediction would fault (or
            # silently read wrong rows) long after loading succeeded.
            raise ModelFormatError(
                f"svm ({s},{t}): pool position out of range "
                f"[0, {n_pool}) in positions line"
            )
        sigmoid = SigmoidModel(a=sig_a, b=sig_b) if probability else None
        pooled.append(
            PooledSVM(
                s=s, t=t, pool_positions=positions,
                coefficients=coefficients, bias=bias,
            )
        )
        records.append(
            BinarySVMRecord(
                s=s, t=t,
                global_sv_indices=positions,  # original ids are not persisted
                coefficients=coefficients, bias=bias, sigmoid=sigmoid,
            )
        )

    if next_line().strip() != "SV":
        raise ModelFormatError("missing SV section")
    rows = []
    for _ in range(n_pool):
        fields = next_line().split()
        cols = np.asarray([int(f.split(":", 1)[0]) for f in fields], dtype=np.int64)
        vals = np.asarray([float(f.split(":", 1)[1]) for f in fields])
        rows.append((cols, vals))
    pool_data = CSRMatrix.from_rows(rows, n_features)
    pool = SupportVectorPool(
        pool_data, np.arange(n_pool, dtype=np.int64), pooled
    )
    return MPSVMModel(
        classes=classes,
        kernel=kernel,
        penalty=penalty,
        records=records,
        sv_pool=pool,
        probability=probability,
        strategy=strategy,
        metadata={"backend": recorded_backend, "dtype": recorded_dtype},
    )


def _expect(line: str, key: str) -> list[str]:
    fields = line.split()
    if not fields or fields[0] != key:
        raise ModelFormatError(f"expected {key!r} line, got {line!r}")
    return fields[1:]
