"""Model selection: k-fold cross-validation and grid search.

The paper fixes C and gamma per dataset "the same as the existing
studies"; those existing studies found them by exactly this kind of grid
search.  The utilities here are deliberately explicit: they take a
*factory* callable instead of cloning estimators, so any of the library's
systems (GMPSVC, the baselines, custom configurations) can be selected
over.

Example
-------
>>> from repro import GMPSVC
>>> from repro.data import gaussian_blobs
>>> from repro.model_selection import grid_search
>>> X, y = gaussian_blobs(120, 4, 2, seed=0)
>>> result = grid_search(
...     lambda **p: GMPSVC(working_set_size=16, **p),
...     {"C": [1.0, 10.0], "gamma": [0.1, 1.0]},
...     X, y, folds=3,
... )
>>> sorted(result.best_params) == ["C", "gamma"]
True
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.sparse import ops as mops

__all__ = ["k_fold_indices", "cross_val_score", "grid_search", "GridSearchResult"]


def k_fold_indices(
    labels: np.ndarray,
    folds: int,
    *,
    seed: int = 0,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Stratified, shuffled k-fold split.

    Returns ``folds`` pairs of ``(train_indices, test_indices)``.  Each
    class is distributed round-robin over the folds after a seeded
    shuffle, so every training part sees every class (as long as each
    class has at least ``folds`` members... otherwise some folds simply
    lack that class in their held-out part, which is still valid).
    """
    y = np.asarray(labels).ravel()
    if folds < 2:
        raise ValidationError(f"folds must be >= 2, got {folds}")
    if folds > y.size:
        raise ValidationError(f"folds={folds} exceeds {y.size} instances")
    rng = np.random.default_rng(seed)
    fold_of = np.empty(y.size, dtype=np.int64)
    for label in np.unique(y):
        members = np.flatnonzero(y == label)
        shuffled = members.copy()
        rng.shuffle(shuffled)
        fold_of[shuffled] = np.arange(shuffled.size) % folds
    splits = []
    for fold in range(folds):
        test_idx = np.flatnonzero(fold_of == fold)
        train_idx = np.flatnonzero(fold_of != fold)
        if test_idx.size == 0 or np.unique(y[train_idx]).size < 2:
            raise ValidationError(
                f"fold {fold} is degenerate; use fewer folds"
            )
        splits.append((train_idx, test_idx))
    return splits


def cross_val_score(
    make_classifier: Callable[[], object],
    data: object,
    labels: np.ndarray,
    *,
    folds: int = 5,
    seed: int = 0,
) -> np.ndarray:
    """Per-fold accuracies of a freshly built classifier.

    ``make_classifier`` is a zero-argument callable returning an unfitted
    estimator with ``fit``/``score`` (a ``lambda: GMPSVC(...)``).
    """
    matrix = mops.as_supported_matrix(data)
    y = np.asarray(labels).ravel()
    scores = []
    for train_idx, test_idx in k_fold_indices(y, folds, seed=seed):
        classifier = make_classifier()
        classifier.fit(mops.take_rows(matrix, train_idx), y[train_idx])
        scores.append(
            classifier.score(mops.take_rows(matrix, test_idx), y[test_idx])
        )
    return np.asarray(scores)


@dataclass
class GridSearchResult:
    """Outcome of :func:`grid_search`."""

    best_params: dict
    best_score: float
    results: list[dict] = field(default_factory=list)  # one per configuration

    def as_table(self) -> str:
        """Fixed-width summary, best configuration first."""
        ordered = sorted(self.results, key=lambda r: r["mean_score"], reverse=True)
        lines = [f"{'configuration':<40}{'mean acc':>10}{'std':>8}"]
        lines.append("-" * len(lines[0]))
        for row in ordered:
            name = " ".join(f"{k}={v:g}" for k, v in row["params"].items())
            lines.append(
                f"{name:<40}{row['mean_score']:>10.4f}{row['std_score']:>8.4f}"
            )
        return "\n".join(lines)


def grid_search(
    make_classifier: Callable[..., object],
    param_grid: Mapping[str, Sequence],
    data: object,
    labels: np.ndarray,
    *,
    folds: int = 5,
    seed: int = 0,
) -> GridSearchResult:
    """Exhaustive search over a parameter grid by cross-validated accuracy.

    ``make_classifier`` receives each grid point as keyword arguments.
    Ties break toward the earlier grid point (deterministic).
    """
    if not param_grid:
        raise ValidationError("param_grid must contain at least one parameter")
    names = list(param_grid)
    for name in names:
        if not len(param_grid[name]):
            raise ValidationError(f"parameter {name!r} has no candidate values")

    results: list[dict] = []
    best: Optional[dict] = None
    for values in itertools.product(*(param_grid[name] for name in names)):
        params = dict(zip(names, values))
        scores = cross_val_score(
            lambda: make_classifier(**params), data, labels,
            folds=folds, seed=seed,
        )
        row = {
            "params": params,
            "mean_score": float(scores.mean()),
            "std_score": float(scores.std()),
            "fold_scores": scores.tolist(),
        }
        results.append(row)
        if best is None or row["mean_score"] > best["mean_score"]:
            best = row
    assert best is not None
    return GridSearchResult(
        best_params=dict(best["params"]),
        best_score=best["mean_score"],
        results=results,
    )
