"""Multi-class machinery: pairwise decomposition, SV sharing, voting.

MP-SVMs are built by pairwise coupling (one-against-one): a k-class
problem becomes k(k-1)/2 binary problems (Section 2.2).  This package
provides the decomposition, the unified support-vector pool that
implements the paper's prediction-time sharing (Section 3.3.3), and the
one-vs-one voting rule used for non-probabilistic prediction.
"""

from repro.multiclass.decomposition import (
    BinaryProblem,
    class_partition,
    make_pairs,
    pair_problems,
)
from repro.multiclass.ova import REST, ova_positions, ova_problems
from repro.multiclass.sv_sharing import SupportVectorPool
from repro.multiclass.voting import ovo_vote

__all__ = [
    "BinaryProblem",
    "SupportVectorPool",
    "REST",
    "class_partition",
    "make_pairs",
    "ova_positions",
    "ova_problems",
    "ovo_vote",
    "pair_problems",
]
