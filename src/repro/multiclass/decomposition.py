"""Pairwise (one-against-one) decomposition of a multi-class dataset.

Following LibSVM's convention, classes are processed in sorted label
order; the binary problem for the pair ``(s, t)`` (``s`` before ``t``)
assigns ``+1`` to instances of class ``s`` and ``-1`` to those of class
``t``.  A positive decision value therefore votes for ``s``, and the
fitted sigmoid estimates ``P(class s | class s or t)`` — the ``r[s, t]``
entry fed to pairwise coupling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["BinaryProblem", "class_partition", "make_pairs", "pair_problems"]


@dataclass(frozen=True)
class BinaryProblem:
    """One pairwise subproblem of the one-against-one decomposition.

    Attributes
    ----------
    s, t:
        Class *positions* (indices into the sorted class array), s < t.
    global_indices:
        Indices into the full training set, class-s instances first.
    labels:
        +1 for class-s instances, -1 for class-t instances (aligned with
        ``global_indices``).
    """

    s: int
    t: int
    global_indices: np.ndarray
    labels: np.ndarray

    @property
    def n(self) -> int:
        """Instances in this binary problem."""
        return int(self.global_indices.size)

    @property
    def n_positive(self) -> int:
        """Instances labelled +1 (class s)."""
        return int(np.count_nonzero(self.labels > 0))

    @property
    def n_negative(self) -> int:
        """Instances labelled -1 (class t / rest)."""
        return self.n - self.n_positive


def class_partition(y: np.ndarray) -> tuple[np.ndarray, dict[int, np.ndarray]]:
    """Sorted class labels and the index set of each class.

    Labels may be arbitrary integers (LibSVM accepts any numeric labels);
    class *positions* used throughout the multi-class layer are indices
    into the returned sorted array.
    """
    labels = np.asarray(y).ravel()
    if labels.size == 0:
        raise ValidationError("empty label vector")
    if not np.all(np.isfinite(labels.astype(np.float64))):
        raise ValidationError("labels contain NaN or infinity")
    classes = np.unique(labels)
    if classes.size < 2:
        raise ValidationError(
            f"need at least two classes, got only {classes.tolist()}"
        )
    partition = {
        position: np.flatnonzero(labels == label)
        for position, label in enumerate(classes)
    }
    return classes, partition


def make_pairs(n_classes: int) -> list[tuple[int, int]]:
    """All k(k-1)/2 class-position pairs in LibSVM's (s, t) order."""
    if n_classes < 2:
        raise ValidationError("need at least two classes")
    return [(s, t) for s in range(n_classes) for t in range(s + 1, n_classes)]


def pair_problems(
    classes: np.ndarray, partition: dict[int, np.ndarray]
) -> Iterator[BinaryProblem]:
    """Yield every pairwise binary problem of the decomposition."""
    for s, t in make_pairs(classes.size):
        idx_s = partition[s]
        idx_t = partition[t]
        indices = np.concatenate([idx_s, idx_t])
        labels = np.concatenate([np.ones(idx_s.size), -np.ones(idx_t.size)])
        yield BinaryProblem(s=s, t=t, global_indices=indices, labels=labels)
