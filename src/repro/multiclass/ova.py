"""One-vs-all (one-against-all) decomposition.

The paper uses pairwise coupling because "the pairwise coupling method
outperforms other methods" (Hsu & Lin), but its related work discusses the
one-against-all alternative (Rifkin & Klautau, "In defense of one-vs-all
classification") and notes it "is rarely used for probabilistic SVMs".
This module provides that alternative: k binary problems, each separating
one class (+1) from the union of the others (-1).

Prediction picks the class whose SVM reports the largest decision value;
probabilistic output (where requested) normalises the per-class sigmoid
estimates — a common heuristic, not the principled coupling of Problem
(14), which only exists for pairwise estimates.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import ValidationError
from repro.multiclass.decomposition import BinaryProblem

__all__ = ["REST", "ova_problems", "ova_positions"]

# Sentinel class position meaning "all other classes" in a record's t slot.
REST = -1


def ova_problems(
    classes: np.ndarray, partition: dict[int, np.ndarray]
) -> Iterator[BinaryProblem]:
    """Yield the k one-vs-rest binary problems.

    Each problem covers the entire training set: class-``s`` instances
    first with label +1, then everything else with label -1 (keeping the
    class-blocked layout the solvers and sigmoids expect).
    """
    k = int(classes.size)
    if k < 2:
        raise ValidationError("need at least two classes")
    for s in range(k):
        positives = partition[s]
        negatives = np.concatenate(
            [partition[c] for c in range(k) if c != s]
        )
        indices = np.concatenate([positives, negatives])
        labels = np.concatenate(
            [np.ones(positives.size), -np.ones(negatives.size)]
        )
        yield BinaryProblem(s=s, t=REST, global_indices=indices, labels=labels)


def ova_positions(decision_values: np.ndarray) -> np.ndarray:
    """Winning class positions: the SVM with the largest decision value."""
    values = np.asarray(decision_values, dtype=np.float64)
    if values.ndim != 2:
        raise ValidationError(f"expected (m, k) decisions, got {values.shape}")
    return np.argmax(values, axis=1)
