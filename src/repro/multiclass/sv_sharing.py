"""Support-vector sharing across binary SVMs (Section 3.3.3).

"Without support vector sharing, the same training instance may be stored
in (k - 1) binary SVMs as a support vector.  Our support vector sharing
technique reduces the GPU memory consumption by up to a factor of
(k - 1)."

The pool stores every distinct support vector once and gives each binary
SVM a view (pool positions + signed coefficients).  At prediction time the
kernel block between the test batch and the *pool* is computed once; every
SVM's decision values are then cheap weighted sums over its slice of that
block — this is both the memory saving and the kernel-value sharing of the
paper's prediction phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.backends.reference import matmul_transpose as _ref_matmul_transpose
from repro.exceptions import ValidationError
from repro.gpusim.engine import FLOAT_BYTES, Engine
from repro.kernels.functions import KernelFunction
from repro.kernels.rows import KernelRowComputer
from repro.sparse import ops as mops

__all__ = ["SupportVectorPool", "PooledSVM"]


@dataclass(frozen=True)
class PooledSVM:
    """One binary SVM's view into the shared pool."""

    s: int
    t: int
    pool_positions: np.ndarray  # positions into the pool's row order
    coefficients: np.ndarray  # alpha_i * y_i, aligned with pool_positions
    bias: float


class SupportVectorPool:
    """Deduplicated support vectors of all binary SVMs of one model."""

    def __init__(
        self,
        pool_data: mops.MatrixLike,
        pool_global_indices: np.ndarray,
        svms: list[PooledSVM],
    ) -> None:
        self.pool_data = pool_data
        self.pool_global_indices = np.asarray(pool_global_indices, dtype=np.int64)
        self.svms = svms
        if mops.n_rows(pool_data) != self.pool_global_indices.size:
            raise ValidationError("pool data and index arrays disagree")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        train_data: mops.MatrixLike,
        per_svm: list[tuple[int, int, np.ndarray, np.ndarray, float]],
    ) -> "SupportVectorPool":
        """Build the pool from per-SVM support lists.

        ``per_svm`` entries are ``(s, t, global_sv_indices, coefficients,
        bias)`` where coefficients are ``alpha_i * y_i`` of the binary
        problem, aligned with the global indices.
        """
        all_indices = (
            np.concatenate([entry[2] for entry in per_svm])
            if per_svm
            else np.empty(0, dtype=np.int64)
        )
        unique = np.unique(all_indices)
        position_of = {int(g): pos for pos, g in enumerate(unique)}
        svms = []
        for s, t, indices, coefficients, bias in per_svm:
            if indices.size != coefficients.size:
                raise ValidationError(
                    f"SVM ({s},{t}): {indices.size} SVs but "
                    f"{coefficients.size} coefficients"
                )
            positions = np.asarray(
                [position_of[int(g)] for g in indices], dtype=np.int64
            )
            svms.append(
                PooledSVM(
                    s=s,
                    t=t,
                    pool_positions=positions,
                    coefficients=np.asarray(coefficients, dtype=np.float64),
                    bias=float(bias),
                )
            )
        pool_data = mops.take_rows(train_data, unique) if unique.size else None
        if pool_data is None:
            raise ValidationError("model has no support vectors")
        return cls(pool_data, unique, svms)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_pool(self) -> int:
        """Distinct support vectors stored."""
        return int(self.pool_global_indices.size)

    @property
    def n_references(self) -> int:
        """Total SV references across SVMs (what unshared storage holds)."""
        return int(sum(svm.pool_positions.size for svm in self.svms))

    @property
    def sharing_factor(self) -> float:
        """References per stored vector; up to (k - 1) per the paper."""
        return self.n_references / self.n_pool if self.n_pool else 0.0

    @property
    def pool_nbytes(self) -> int:
        """Device bytes the deduplicated pool occupies."""
        return mops.matrix_nbytes(self.pool_data)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _weighted_sums(
        self,
        engine: Engine,
        block: np.ndarray,
        svm: PooledSVM,
        *,
        sliced: bool,
        category: str,
    ) -> np.ndarray:
        """One SVM's ``sum_i alpha_i y_i K(x, sv_i) + b`` over a kernel block.

        ``sliced=True`` gathers the SVM's columns out of a test-vs-pool
        block; ``sliced=False`` takes a block already restricted to the
        SVM's own support vectors.  The reduction runs through the
        reference fixed-shape tiled product so every output value is
        bitwise independent of how the test batch was composed (the
        invariant the serving layer's micro-batching relies on; see
        ``repro.backends.reference.MATMUL_TILE_ROWS``).  Float32 kernel
        blocks promote against the float64 coefficients, so the
        mixed-precision backend accumulates decision values in float64
        through this same call.
        """
        m = block.shape[0]
        columns = block[:, svm.pool_positions] if sliced else block
        values = _ref_matmul_transpose(columns, svm.coefficients[None, :])[:, 0]
        engine.charge(
            category,
            flops=2 * m * svm.pool_positions.size,
            bytes_read=m * svm.pool_positions.size * FLOAT_BYTES,
            bytes_written=m * FLOAT_BYTES,
            launches=1,
        )
        return values + svm.bias

    def decision_values_from_block(
        self,
        engine: Engine,
        block: np.ndarray,
        *,
        category: str = "decision_values",
    ) -> np.ndarray:
        """Decision values from a precomputed test-vs-pool kernel block.

        ``block`` must be the full ``(m, n_pool)`` kernel matrix between
        the test batch and the shared pool (what :class:`InferenceSession`
        keeps resident in its tile cache); each SVM's decision values are
        the cheap weighted sums over its slice.
        """
        if block.shape[1] != self.n_pool:
            raise ValidationError(
                f"block has {block.shape[1]} columns; pool holds {self.n_pool}"
            )
        out = np.empty((block.shape[0], len(self.svms)))
        for column, svm in enumerate(self.svms):
            out[:, column] = self._weighted_sums(
                engine, block, svm, sliced=True, category=category
            )
        return out

    def decision_values(
        self,
        engine: Engine,
        kernel: KernelFunction,
        test_data: mops.MatrixLike,
        *,
        shared: bool = True,
        category: str = "decision_values",
        computer: Optional[KernelRowComputer] = None,
    ) -> np.ndarray:
        """Decision values of every test instance under every binary SVM.

        Returns an ``(m, n_svms)`` array ordered like ``self.svms``.

        ``shared=True`` (GMP-SVM) computes the test-vs-pool kernel block
        once; ``shared=False`` (the GPU baseline) recomputes the block of
        each SVM's own support vectors separately, as Phase (iii)(1) does.
        ``computer`` optionally supplies a prebuilt pool-side
        :class:`KernelRowComputer` (with its norms already resident) so a
        sealed serving session skips the per-call pool preparation.
        """
        if computer is None:
            computer = KernelRowComputer(
                engine, kernel, self.pool_data, category=category
            )
        m = mops.n_rows(test_data)
        norms_test = (
            KernelFunction.compute_norms(engine, test_data, category=category)
            if kernel.needs_norms
            else None
        )
        if shared:
            block = computer.block(
                test_data, norms_other=norms_test, category=category
            )
            return self.decision_values_from_block(
                engine, block, category=category
            )

        out = np.empty((m, len(self.svms)))
        for column, svm in enumerate(self.svms):
            block = computer.block(
                test_data,
                norms_other=norms_test,
                column_indices=svm.pool_positions,
                category=category,
            )
            out[:, column] = self._weighted_sums(
                engine, block, svm, sliced=False, category=category
            )
        return out
