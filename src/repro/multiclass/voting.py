"""One-vs-one voting for non-probabilistic multi-class prediction.

Each binary SVM (s, t) votes for ``s`` when its decision value is
non-negative and for ``t`` otherwise; the class with the most votes wins.
Ties break toward the earlier class position, matching LibSVM (which
scans classes in order and keeps the first maximum).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["ovo_vote"]


def ovo_vote(
    decision_values: np.ndarray,
    pairs: list[tuple[int, int]],
    n_classes: int,
) -> np.ndarray:
    """Class positions winning the pairwise vote for each instance.

    Parameters
    ----------
    decision_values:
        ``(m, n_pairs)`` array; column order matches ``pairs``.
    pairs:
        The (s, t) class-position pairs, as from
        :func:`repro.multiclass.decomposition.make_pairs`.
    """
    values = np.asarray(decision_values, dtype=np.float64)
    if values.ndim != 2 or values.shape[1] != len(pairs):
        raise ValidationError(
            f"decision values shape {values.shape} does not match "
            f"{len(pairs)} pairs"
        )
    m = values.shape[0]
    votes = np.zeros((m, n_classes), dtype=np.int64)
    for column, (s, t) in enumerate(pairs):
        if not (0 <= s < n_classes and 0 <= t < n_classes):
            raise ValidationError(f"pair ({s}, {t}) out of range for k={n_classes}")
        positive = values[:, column] >= 0
        votes[positive, s] += 1
        votes[~positive, t] += 1
    return np.argmax(votes, axis=1)
