"""Performance reporting: simulated-time reports, breakdowns, speedups."""

from repro.perf.breakdown import PREDICT_GROUPS, TRAIN_GROUPS, grouped_fractions
from repro.perf.report import PredictionReport, TrainingReport
from repro.perf.speedup import speedup_table

__all__ = [
    "PREDICT_GROUPS",
    "PredictionReport",
    "TRAIN_GROUPS",
    "TrainingReport",
    "grouped_fractions",
    "speedup_table",
]
