"""Category groupings for the paper's component-breakdown figures.

Figure 11 splits *training* time into kernel value computation, solving
the subproblem, and "the remaining tasks such as selecting the working set
and updating the optimality indicators".  Figure 12 splits *prediction*
into decision values, sigmoid evaluation and multi-class coupling.
"""

from __future__ import annotations

from typing import Mapping

from repro.gpusim.clock import SimClock

__all__ = ["TRAIN_GROUPS", "PREDICT_GROUPS", "grouped_fractions"]

# Raw clock categories -> Figure 11 labels.
TRAIN_GROUPS: dict[str, str] = {
    "kernel_values": "kernel values",
    "subproblem": "subproblem",
    "selection": "other",
    "f_update": "other",
    "sigmoid": "other",
    "decision_values": "other",
    "transfer": "other",
}

# Raw clock categories -> Figure 12 labels.
PREDICT_GROUPS: dict[str, str] = {
    "decision_values": "decision values",
    "kernel_values": "decision values",
    "sigmoid": "sigmoid",
    "coupling": "multi-class probability",
    "transfer": "decision values",
}


def grouped_fractions(clock: SimClock, groups: Mapping[str, str]) -> dict[str, float]:
    """Fraction of total time per group label (unknown categories pass through)."""
    return clock.fraction_breakdown(grouping=dict(groups))
