"""Timing reports produced by training and prediction runs.

All times are *simulated* device seconds from the cost model (DESIGN.md
Section 6); wall-clock time of the NumPy host computation is a separate
measurement owned by pytest-benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.gpusim.clock import SimClock
from repro.gpusim.counters import OpCounters

__all__ = ["TrainingReport", "PredictionReport"]


@dataclass
class TrainingReport:
    """What one multi-class training run cost."""

    simulated_seconds: float
    clock: SimClock
    counters: OpCounters
    device_name: str
    n_binary_svms: int = 0
    total_iterations: int = 0
    kernel_rows_computed: int = 0
    max_concurrency: int = 1
    concurrency_speedup: float = 1.0
    sharing_hit_rate: float = 0.0
    peak_task_memory_bytes: int = 0
    per_svm: list[dict] = field(default_factory=list)

    def breakdown(self) -> dict[str, float]:
        """Simulated seconds per cost category."""
        return self.clock.breakdown()

    def fraction_breakdown(
        self, grouping: Optional[Mapping[str, str]] = None
    ) -> dict[str, float]:
        """Fractions of total time per (optionally grouped) category."""
        return self.clock.fraction_breakdown(grouping=grouping)


@dataclass
class PredictionReport:
    """What one prediction run cost."""

    simulated_seconds: float
    clock: SimClock
    counters: OpCounters
    device_name: str
    n_instances: int = 0
    sv_sharing: bool = True

    def breakdown(self) -> dict[str, float]:
        """Simulated seconds per cost category."""
        return self.clock.breakdown()

    def fraction_breakdown(
        self, grouping: Optional[Mapping[str, str]] = None
    ) -> dict[str, float]:
        """Fractions of total time per (optionally grouped) category."""
        return self.clock.fraction_breakdown(grouping=grouping)
