"""Timing reports produced by training and prediction runs.

All times are *simulated* device seconds from the cost model (DESIGN.md
Section 6); wall-clock time of the NumPy host computation is a separate
measurement owned by pytest-benchmark.

Both reports serialize: :meth:`TrainingReport.to_dict` /
:meth:`TrainingReport.to_json` (and the prediction equivalents) emit a
flat, JSON-native snapshot stamped with
:data:`~repro.telemetry.schema.REPORT_SCHEMA_VERSION`, which is what
``repro-train --report-json`` writes and what the benchmark regression
gate consumes.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping, Optional

from repro.gpusim.clock import SimClock
from repro.gpusim.counters import OpCounters
from repro.telemetry.schema import REPORT_SCHEMA_VERSION
from repro.telemetry.tracer import _json_safe

__all__ = ["TrainingReport", "PredictionReport"]


@dataclass
class TrainingReport:
    """What one multi-class training run cost."""

    simulated_seconds: float
    clock: SimClock
    counters: OpCounters
    device_name: str
    n_binary_svms: int = 0
    total_iterations: int = 0
    kernel_rows_computed: int = 0
    max_concurrency: int = 1
    concurrency_speedup: float = 1.0
    sharing_hit_rate: float = 0.0
    peak_task_memory_bytes: int = 0
    per_svm: list[dict] = field(default_factory=list)
    # Where the concurrency numbers came from: "wave_trace" (measured by
    # the interleaved driver's executed waves), "posthoc" (repacked serial
    # clocks via ConcurrentScheduler.plan) or "serial" (no concurrency).
    schedule_source: str = "serial"
    # Per-wave execution record from the interleaved driver (None for the
    # other schedule sources).
    wave_trace: Optional[list] = None

    def breakdown(self) -> dict[str, float]:
        """Simulated seconds per cost category."""
        return self.clock.breakdown()

    def fraction_breakdown(
        self, grouping: Optional[Mapping[str, str]] = None
    ) -> dict[str, float]:
        """Fractions of total time per (optionally grouped) category."""
        return self.clock.fraction_breakdown(grouping=grouping)

    @property
    def buffer_hit_rate(self) -> float:
        """Mean kernel-buffer hit rate across the trained binary SVMs."""
        rates = [
            svm["buffer_hit_rate"]
            for svm in self.per_svm
            if "buffer_hit_rate" in svm
        ]
        return float(sum(rates) / len(rates)) if rates else 0.0

    def to_dict(self) -> dict[str, Any]:
        """A flat, JSON-native, schema-versioned snapshot of this report."""
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "kind": "training_report",
            "device_name": self.device_name,
            "simulated_seconds": self.simulated_seconds,
            "breakdown": self.breakdown(),
            "fraction_breakdown": self.fraction_breakdown(),
            "counters": asdict(self.counters),
            "n_binary_svms": self.n_binary_svms,
            "total_iterations": self.total_iterations,
            "kernel_rows_computed": self.kernel_rows_computed,
            "max_concurrency": self.max_concurrency,
            "concurrency_speedup": self.concurrency_speedup,
            "sharing_hit_rate": self.sharing_hit_rate,
            "buffer_hit_rate": self.buffer_hit_rate,
            "peak_task_memory_bytes": self.peak_task_memory_bytes,
            "schedule_source": self.schedule_source,
            "wave_trace": _json_safe(self.wave_trace),
            "per_svm": _json_safe(self.per_svm),
        }

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """The :meth:`to_dict` snapshot serialized to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)


@dataclass
class PredictionReport:
    """What one prediction run cost."""

    simulated_seconds: float
    clock: SimClock
    counters: OpCounters
    device_name: str
    n_instances: int = 0
    sv_sharing: bool = True

    def breakdown(self) -> dict[str, float]:
        """Simulated seconds per cost category."""
        return self.clock.breakdown()

    def fraction_breakdown(
        self, grouping: Optional[Mapping[str, str]] = None
    ) -> dict[str, float]:
        """Fractions of total time per (optionally grouped) category."""
        return self.clock.fraction_breakdown(grouping=grouping)

    def to_dict(self) -> dict[str, Any]:
        """A flat, JSON-native, schema-versioned snapshot of this report."""
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "kind": "prediction_report",
            "device_name": self.device_name,
            "simulated_seconds": self.simulated_seconds,
            "breakdown": self.breakdown(),
            "fraction_breakdown": self.fraction_breakdown(),
            "counters": asdict(self.counters),
            "n_instances": self.n_instances,
            "sv_sharing": self.sv_sharing,
        }

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """The :meth:`to_dict` snapshot serialized to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)
