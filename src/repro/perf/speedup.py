"""Speedup tables for the comparison figures (Figures 4/5/8/9/10)."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.exceptions import ValidationError

__all__ = ["speedup_table", "format_table"]


def speedup_table(
    reference: Mapping[str, float],
    others: Mapping[str, Mapping[str, float]],
) -> dict[str, dict[str, float]]:
    """Per-dataset speedups of the reference system over each other system.

    ``reference`` maps dataset -> simulated seconds of the reference (the
    paper's GMP-SVM); ``others`` maps system name -> {dataset -> seconds}.
    Speedup > 1 means the reference is faster.
    """
    table: dict[str, dict[str, float]] = {}
    for system, timings in others.items():
        row: dict[str, float] = {}
        for dataset, seconds in timings.items():
            if dataset not in reference:
                raise ValidationError(
                    f"dataset {dataset!r} missing from reference timings"
                )
            ref = reference[dataset]
            if ref <= 0:
                raise ValidationError(f"non-positive reference time for {dataset!r}")
            row[dataset] = seconds / ref
        table[system] = row
    return table


def format_table(
    rows: Mapping[str, Mapping[str, float]],
    columns: Sequence[str],
    *,
    title: str = "",
    value_format: str = "0.4g",
    row_label: str = "system",
) -> str:
    """Fixed-width text table (the benches print these).

    Column widths adapt to the header labels; the default ``0.4g`` value
    format keeps sub-millisecond simulated times readable.
    """
    label_width = max(
        [len(row_label)] + [len(str(name)) for name in rows], default=len(row_label)
    )

    def render(value: object) -> str:
        return format(value, value_format) if value is not None else "-"

    widths = [
        max(12, len(str(col)) + 2,
            max((len(render(values.get(col))) + 2 for values in rows.values()),
                default=0))
        for col in columns
    ]
    header = f"{row_label:<{label_width}}" + "".join(
        f"{str(col):>{width}}" for col, width in zip(columns, widths)
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for name, values in rows.items():
        cells = "".join(
            f"{render(values.get(col)):>{width}}"
            for col, width in zip(columns, widths)
        )
        lines.append(f"{str(name):<{label_width}}" + cells)
    return "\n".join(lines)
