"""Probability machinery for probabilistic SVMs.

- :mod:`repro.probability.platt` — Platt sigmoid fitting (Eqs. 12/13) via
  Newton's method with backtracking, including the paper's parallel
  candidate-step evaluation (Section 3.3.2).
- :mod:`repro.probability.pairwise` — Wu-Lin-Weng pairwise coupling
  (Problem 14 / Eq. 15) solved by Gaussian elimination, plus LibSVM's
  iterative method as a cross-check.
- :mod:`repro.probability.linalg` — the from-scratch dense linear-algebra
  kernels (Gaussian elimination with partial pivoting, scalar and batched)
  the coupling uses.
"""

from repro.probability.linalg import (
    gaussian_elimination,
    gaussian_elimination_batch,
)
from repro.probability.pairwise import (
    couple_batch,
    couple_probabilities,
    pairwise_matrix_from_estimates,
)
from repro.probability.platt import SigmoidModel, fit_sigmoid, sigmoid_predict

__all__ = [
    "SigmoidModel",
    "couple_batch",
    "couple_probabilities",
    "fit_sigmoid",
    "gaussian_elimination",
    "gaussian_elimination_batch",
    "pairwise_matrix_from_estimates",
    "sigmoid_predict",
]
