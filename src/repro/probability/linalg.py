"""Dense linear solves implemented from scratch.

The paper solves the coupling problem (14) "by Gaussian elimination"
(citing Wu et al.).  The substrate rule of this reproduction is to build
dependencies rather than import them, so this module provides partial-pivot
Gaussian elimination instead of calling ``numpy.linalg.solve``.  The
matrices involved are tiny (k x k, with k the class count), but prediction
solves one system *per test instance*, so the hot entry point is the
batched :func:`gaussian_elimination_batch`: it eliminates a whole
``(m, n, n)`` stack column-by-column with every per-instance operation
vectorized across the batch.  The scalar :func:`gaussian_elimination` is a
batch of one, which keeps the two paths arithmetically identical — the
per-element operations are the same NumPy expressions either way, so a
batched solve reproduces the scalar answer bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SolverError, ValidationError

__all__ = ["gaussian_elimination", "gaussian_elimination_batch"]


def gaussian_elimination(
    matrix: np.ndarray,
    rhs: np.ndarray,
    *,
    pivot_tolerance: float = 1e-12,
) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` by Gaussian elimination with partial pivoting.

    Raises :class:`~repro.exceptions.SolverError` when a pivot falls below
    ``pivot_tolerance`` times the matrix scale (numerically singular) —
    callers regularise and retry, as the paper does ("a small value is
    added to Q when its inversion does not exist").

    Implemented as a batch of one (see :func:`gaussian_elimination_batch`),
    so scalar and batched solves of the same system agree exactly.
    """
    a = np.asarray(matrix, dtype=np.float64)
    b = np.asarray(rhs, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValidationError(f"matrix must be square, got shape {a.shape}")
    n = a.shape[0]
    if b.shape not in ((n,), (n, 1)):
        raise ValidationError(f"rhs shape {b.shape} incompatible with {a.shape}")
    x = gaussian_elimination_batch(
        a[None, :, :], b.reshape(1, n), pivot_tolerance=pivot_tolerance
    )
    return x[0]


def gaussian_elimination_batch(
    matrices: np.ndarray,
    rhs: np.ndarray,
    *,
    pivot_tolerance: float = 1e-12,
    on_singular: str = "raise",
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Solve ``matrices[i] @ x[i] = rhs[i]`` for a whole ``(m, n, n)`` stack.

    One pass of partial-pivot elimination runs over the batch: each of the
    ``n`` column steps performs its pivot search, row swap and rank-1 update
    for *all* ``m`` systems at once, so the Python-level loop is O(n)
    instead of O(m * n).  ``rhs`` has shape ``(m, n)``, or ``(n,)`` to share
    one right-hand side across the batch.

    ``on_singular`` selects what happens when a system's pivot falls below
    ``pivot_tolerance`` times that system's scale:

    - ``"raise"`` (default) — raise :class:`~repro.exceptions.SolverError`
      naming the first offending batch index, matching the scalar contract;
    - ``"mask"`` — keep going, return ``(x, singular)`` where ``singular``
      is a boolean ``(m,)`` mask and flagged rows of ``x`` are NaN; callers
      ridge-regularise and retry just those systems.
    """
    if on_singular not in ("raise", "mask"):
        raise ValidationError(
            f"on_singular must be 'raise' or 'mask', got {on_singular!r}"
        )
    a = np.array(matrices, dtype=np.float64)
    if a.ndim != 3 or a.shape[1] != a.shape[2]:
        raise ValidationError(f"matrices must be (m, n, n), got shape {a.shape}")
    m, n = a.shape[0], a.shape[1]
    b = np.array(rhs, dtype=np.float64)
    if b.shape == (n,):
        b = np.broadcast_to(b, (m, n)).copy()
    if b.shape != (m, n):
        raise ValidationError(f"rhs shape {b.shape} incompatible with {a.shape}")
    if m == 0:
        x = np.empty((0, n))
        return (x, np.zeros(0, dtype=bool)) if on_singular == "mask" else x

    batch = np.arange(m)
    scale = np.maximum(np.abs(a).reshape(m, -1).max(axis=1), 1.0)
    singular = np.zeros(m, dtype=bool)

    # Forward elimination, one column step across the whole batch.
    for col in range(n):
        pivot_rows = col + np.argmax(np.abs(a[:, col:, col]), axis=1)
        pivots = a[batch, pivot_rows, col]
        bad = np.abs(pivots) < pivot_tolerance * scale
        if bad.any():
            if on_singular == "raise":
                first = int(np.flatnonzero(bad)[0])
                raise SolverError(
                    f"singular matrix: pivot {pivots[first]:.3e} at column "
                    f"{col}" + (f" (batch index {first})" if m > 1 else "")
                )
            singular |= bad
        swap = pivot_rows != col
        if swap.any():
            who = np.flatnonzero(swap)
            rows = pivot_rows[who]
            a[who, col], a[who, rows] = a[who, rows], a[who, col].copy()
            b[who, col], b[who, rows] = b[who, rows], b[who, col].copy()
        # Give flagged systems a harmless pivot so the rest of the batch can
        # proceed; their results are overwritten with NaN below.
        if singular.any():
            a[singular, col, col] = scale[singular]
        factors = a[:, col + 1 :, col] / a[:, col, None, col]
        a[:, col + 1 :, col:] -= factors[:, :, None] * a[:, None, col, col:]
        b[:, col + 1 :] -= factors * b[:, None, col]

    # Back substitution.
    x = np.zeros((m, n))
    for row in range(n - 1, -1, -1):
        residual = b[:, row] - (a[:, row, row + 1 :] * x[:, row + 1 :]).sum(axis=1)
        x[:, row] = residual / a[:, row, row]
    if on_singular == "mask":
        x[singular] = np.nan
        return x, singular
    return x
