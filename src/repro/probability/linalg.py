"""Dense linear solves implemented from scratch.

The paper solves the coupling problem (14) "by Gaussian elimination"
(citing Wu et al.).  The substrate rule of this reproduction is to build
dependencies rather than import them, so this module provides partial-pivot
Gaussian elimination instead of calling ``numpy.linalg.solve``.  The
matrices involved are tiny (k x k, with k the class count), so an O(k^3)
textbook elimination is the appropriate tool.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SolverError, ValidationError

__all__ = ["gaussian_elimination"]


def gaussian_elimination(
    matrix: np.ndarray,
    rhs: np.ndarray,
    *,
    pivot_tolerance: float = 1e-12,
) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` by Gaussian elimination with partial pivoting.

    Raises :class:`~repro.exceptions.SolverError` when a pivot falls below
    ``pivot_tolerance`` times the matrix scale (numerically singular) —
    callers regularise and retry, as the paper does ("a small value is
    added to Q when its inversion does not exist").
    """
    a = np.array(matrix, dtype=np.float64)
    b = np.array(rhs, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValidationError(f"matrix must be square, got shape {a.shape}")
    n = a.shape[0]
    if b.shape not in ((n,), (n, 1)):
        raise ValidationError(f"rhs shape {b.shape} incompatible with {a.shape}")
    b = b.reshape(n)
    scale = max(float(np.abs(a).max()), 1.0)

    # Forward elimination.
    for col in range(n):
        pivot_row = col + int(np.argmax(np.abs(a[col:, col])))
        pivot = a[pivot_row, col]
        if abs(pivot) < pivot_tolerance * scale:
            raise SolverError(
                f"singular matrix: pivot {pivot:.3e} at column {col}"
            )
        if pivot_row != col:
            a[[col, pivot_row]] = a[[pivot_row, col]]
            b[[col, pivot_row]] = b[[pivot_row, col]]
        factors = a[col + 1 :, col] / a[col, col]
        a[col + 1 :, col:] -= factors[:, None] * a[col, col:]
        b[col + 1 :] -= factors * b[col]

    # Back substitution.
    x = np.zeros(n)
    for row in range(n - 1, -1, -1):
        x[row] = (b[row] - a[row, row + 1 :] @ x[row + 1 :]) / a[row, row]
    return x
