"""Dense linear solves (moved to :mod:`repro.backends.reference`).

The partial-pivot Gaussian elimination this module used to implement is
now a compute-backend primitive — the batched solve is dispatched through
:meth:`repro.backends.ComputeBackend.gaussian_elimination_batch`, and the
float64 reference implementation lives in
:mod:`repro.backends.reference`.  The old entry points here keep working:
:func:`gaussian_elimination` is a plain alias (it remains the documented
scalar solve), while :func:`gaussian_elimination_batch` is a deprecation
shim pointing callers at the backend API.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.backends.reference import gaussian_elimination

__all__ = ["gaussian_elimination", "gaussian_elimination_batch"]


def gaussian_elimination_batch(
    matrices: np.ndarray,
    rhs: np.ndarray,
    *,
    pivot_tolerance: float = 1e-12,
    on_singular: str = "raise",
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Deprecated alias for the backend batched-elimination primitive.

    Delegates to :func:`repro.backends.reference.gaussian_elimination_batch`
    (same bits, same errors); call it there — or through a
    :class:`~repro.backends.ComputeBackend` — instead.  This alias will be
    removed in a future release.
    """
    warnings.warn(
        "repro.probability.linalg.gaussian_elimination_batch moved to "
        "repro.backends (repro.backends.gaussian_elimination_batch, or use "
        "a ComputeBackend); this alias will be removed in a future release",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.backends.reference import gaussian_elimination_batch as _impl

    return _impl(
        matrices, rhs, pivot_tolerance=pivot_tolerance, on_singular=on_singular
    )
