"""Pairwise coupling of binary probabilities (Wu, Lin & Weng; Problem 14).

Given ``r[s, t] = P(y = s | y in {s, t}, x)`` from the k(k-1)/2 local
probability estimators, the multi-class probability vector solves the
convex problem (14); its optimum satisfies the linear system of Eq. (15):

    Q p = lambda e,   sum(p) = 1,
    Q[s, s] = sum_{u != s} r[u, s]^2,   Q[s, t] = -r[s, t] r[t, s].

We implement Eq. (15) directly — solve ``Q x = e`` by our own Gaussian
elimination and normalise — adding a small ridge on failure ("a small
value is added to Q when its inversion does not exist").  LibSVM's fixed-
point iteration is provided as ``method="iterative"`` for cross-checking;
the two agree to solver tolerance.

The prediction hot path is :func:`couple_batch`: the paper launches one
coupling procedure per test instance *concurrently* (Phase (iii)(3)), so
the batch builds every Q at once with one einsum, solves the whole
``(m, k, k)`` stack in one batched elimination, and charges the engine a
single launch for the lot.  Only the rare numerically-singular systems
fall back to the per-instance ridge-retry loop, whose extra solves are
charged individually and tallied as the ``coupling_ridge_retries``
telemetry event.
"""

from __future__ import annotations

import numpy as np

from repro.backends.reference import gaussian_elimination
from repro.exceptions import SolverError, ValidationError
from repro.gpusim.engine import Engine

__all__ = ["pairwise_matrix_from_estimates", "couple_probabilities", "couple_batch"]

PROB_CLIP = 1e-7
RIDGE_START = 1e-10
RIDGE_MAX = 1e-3
ITERATIVE_EPS = 0.005 / 100.0
ITERATIVE_MAX = 100
RIDGE_RETRY_EVENT = "coupling_ridge_retries"


def pairwise_matrix_from_estimates(
    estimates: dict[tuple[int, int], float], n_classes: int
) -> np.ndarray:
    """Assemble the full r matrix from per-pair estimates.

    ``estimates[(s, t)]`` (s < t) is the probability of class ``s`` within
    the pair; ``r[t, s] = 1 - r[s, t]`` fills the lower triangle.
    """
    if n_classes < 2:
        raise ValidationError("need at least two classes")
    r = np.full((n_classes, n_classes), 0.5)
    seen = set()
    for (s, t), value in estimates.items():
        if not 0 <= s < t < n_classes:
            raise ValidationError(f"bad pair ({s}, {t}) for k={n_classes}")
        r[s, t] = min(max(float(value), PROB_CLIP), 1.0 - PROB_CLIP)
        r[t, s] = 1.0 - r[s, t]
        seen.add((s, t))
    expected = n_classes * (n_classes - 1) // 2
    if len(seen) != expected:
        raise ValidationError(f"expected {expected} pair estimates, got {len(seen)}")
    return r


def _build_q(r: np.ndarray) -> np.ndarray:
    """The coupling matrix Q of Eq. (15); positive semi-definite."""
    k = r.shape[0]
    q = -(r * r.T)
    diag = np.einsum("us,us->s", r, r) - np.diagonal(r) ** 2
    q[np.diag_indices(k)] = diag
    return q


def _build_q_batch(r_batch: np.ndarray) -> np.ndarray:
    """All Q matrices of a ``(m, k, k)`` batch at once (same math as
    :func:`_build_q`, vectorized over the leading axis)."""
    k = r_batch.shape[1]
    q = -(r_batch * r_batch.transpose(0, 2, 1))
    diag = np.einsum("mus,mus->ms", r_batch, r_batch) - np.square(
        np.diagonal(r_batch, axis1=1, axis2=2)
    )
    rows, cols = np.diag_indices(k)
    q[:, rows, cols] = diag
    return q


def _eq15_charge_args(k: int) -> dict[str, int]:
    """Per-instance cost of one Eq.-15 build + solve (Q build: k^2
    elementwise; solve: ~k^3/3 inside one kernel)."""
    return {
        "flops": 2 * k * k + (k**3) // 3,
        "bytes_read": k * k * 8,
        "bytes_written": k * 8,
    }


def _ridge_retry_solve(
    engine: Engine, q: np.ndarray, category: str
) -> np.ndarray:
    """Re-solve one singular Q with an escalating ridge, charging each retry.

    Every attempt is a real device solve the original accounting missed:
    each is charged like the first solve and tallied under the
    ``coupling_ridge_retries`` telemetry event.
    """
    k = q.shape[0]
    ones = np.ones(k)
    ridge = RIDGE_START
    while True:
        engine.charge(category, launches=1, **_eq15_charge_args(k))
        engine.note_event(RIDGE_RETRY_EVENT)
        try:
            return gaussian_elimination(q + ridge * np.eye(k), ones)
        except SolverError:
            ridge *= 100.0
            if ridge > RIDGE_MAX:
                raise


def _normalise(x: np.ndarray) -> np.ndarray:
    """Map one solved ``Q x = e`` vector onto the probability simplex."""
    total = x.sum()
    if total == 0:
        raise SolverError("degenerate coupling system: Q^-1 e sums to zero")
    p = x / total
    np.clip(p, 0.0, None, out=p)
    return p / p.sum()


def couple_probabilities(
    engine: Engine,
    r: np.ndarray,
    *,
    method: str = "eq15",
    category: str = "coupling",
) -> np.ndarray:
    """Multi-class probabilities for one instance from its r matrix."""
    r = np.asarray(r, dtype=np.float64)
    k = r.shape[0]
    if r.shape != (k, k) or k < 2:
        raise ValidationError(f"r must be k x k with k >= 2, got shape {r.shape}")
    r = np.clip(r, PROB_CLIP, 1.0 - PROB_CLIP)
    if method == "eq15":
        return _couple_eq15(engine, r, category)
    if method == "iterative":
        return _couple_iterative(engine, r, category)
    raise ValidationError(f"unknown coupling method {method!r}")


def _couple_eq15(engine: Engine, r: np.ndarray, category: str) -> np.ndarray:
    k = r.shape[0]
    q = _build_q(r)
    engine.charge(category, launches=1, **_eq15_charge_args(k))
    try:
        x = gaussian_elimination(q, np.ones(k))
    except SolverError:
        x = _ridge_retry_solve(engine, q, category)
    return _normalise(x)


def _couple_iterative(engine: Engine, r: np.ndarray, category: str) -> np.ndarray:
    """LibSVM's fixed-point iteration for Problem (14) (cross-check path)."""
    k = r.shape[0]
    q = _build_q(r)
    p = np.full(k, 1.0 / k)
    for _ in range(ITERATIVE_MAX):
        qp = q @ p
        pqp = float(p @ qp)
        engine.charge(
            category,
            flops=2 * k * k + 4 * k,
            bytes_read=k * k * 8,
            bytes_written=k * 8,
            launches=1,
        )
        max_error = float(np.max(np.abs(qp - pqp)))
        if max_error < ITERATIVE_EPS:
            break
        for t in range(k):
            diff = (-qp[t] + pqp) / q[t, t]
            p[t] += diff
            pqp = (pqp + diff * (diff * q[t, t] + 2.0 * qp[t])) / (1.0 + diff) ** 2
            qp = (qp + diff * q[:, t]) / (1.0 + diff)
            p /= 1.0 + diff
    return p


def couple_batch(
    engine: Engine,
    r_batch: np.ndarray,
    *,
    method: str = "eq15",
    category: str = "coupling",
) -> np.ndarray:
    """Couple many instances; ``r_batch`` has shape ``(m, k, k)``.

    The paper launches one coupling procedure per instance concurrently
    (Phase (iii)(3)); instances are independent, so the whole batch runs as
    one device pass: every Q is assembled by a single einsum, the stacked
    linear systems are eliminated together, and the engine is charged one
    launch for the batch.  Systems the batched elimination flags as
    singular (rare, near-degenerate r) take the scalar ridge-retry path,
    whose additional solves are charged per retry.  Results are identical
    to mapping :func:`couple_probabilities` over the batch.
    """
    r_batch = np.asarray(r_batch, dtype=np.float64)
    if r_batch.ndim != 3 or r_batch.shape[1] != r_batch.shape[2]:
        raise ValidationError(f"r_batch must be (m, k, k), got {r_batch.shape}")
    m, k = r_batch.shape[0], r_batch.shape[1]
    if k < 2:
        raise ValidationError(f"r_batch must have k >= 2 classes, got k={k}")
    if m == 0:
        return np.empty((0, k))
    if method == "iterative":
        return np.stack(
            [
                couple_probabilities(
                    engine, r_batch[i], method=method, category=category
                )
                for i in range(m)
            ]
        )
    if method != "eq15":
        raise ValidationError(f"unknown coupling method {method!r}")

    r_batch = np.clip(r_batch, PROB_CLIP, 1.0 - PROB_CLIP)
    q = _build_q_batch(r_batch)
    per_instance = _eq15_charge_args(k)
    engine.charge(
        category,
        launches=1,
        **{name: m * cost for name, cost in per_instance.items()},
    )
    x, singular = engine.backend.gaussian_elimination_batch(
        q, np.ones(k), on_singular="mask"
    )
    for index in np.flatnonzero(singular):
        x[index] = _ridge_retry_solve(engine, q[index], category)

    totals = x.sum(axis=1)
    if np.any(totals == 0):
        raise SolverError("degenerate coupling system: Q^-1 e sums to zero")
    p = x / totals[:, None]
    np.clip(p, 0.0, None, out=p)
    return p / p.sum(axis=1, keepdims=True)
