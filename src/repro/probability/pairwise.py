"""Pairwise coupling of binary probabilities (Wu, Lin & Weng; Problem 14).

Given ``r[s, t] = P(y = s | y in {s, t}, x)`` from the k(k-1)/2 local
probability estimators, the multi-class probability vector solves the
convex problem (14); its optimum satisfies the linear system of Eq. (15):

    Q p = lambda e,   sum(p) = 1,
    Q[s, s] = sum_{u != s} r[u, s]^2,   Q[s, t] = -r[s, t] r[t, s].

We implement Eq. (15) directly — solve ``Q x = e`` by our own Gaussian
elimination and normalise — adding a small ridge on failure ("a small
value is added to Q when its inversion does not exist").  LibSVM's fixed-
point iteration is provided as ``method="iterative"`` for cross-checking;
the two agree to solver tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SolverError, ValidationError
from repro.gpusim.engine import Engine
from repro.probability.linalg import gaussian_elimination

__all__ = ["pairwise_matrix_from_estimates", "couple_probabilities", "couple_batch"]

PROB_CLIP = 1e-7
RIDGE_START = 1e-10
RIDGE_MAX = 1e-3
ITERATIVE_EPS = 0.005 / 100.0
ITERATIVE_MAX = 100


def pairwise_matrix_from_estimates(
    estimates: dict[tuple[int, int], float], n_classes: int
) -> np.ndarray:
    """Assemble the full r matrix from per-pair estimates.

    ``estimates[(s, t)]`` (s < t) is the probability of class ``s`` within
    the pair; ``r[t, s] = 1 - r[s, t]`` fills the lower triangle.
    """
    if n_classes < 2:
        raise ValidationError("need at least two classes")
    r = np.full((n_classes, n_classes), 0.5)
    seen = set()
    for (s, t), value in estimates.items():
        if not 0 <= s < t < n_classes:
            raise ValidationError(f"bad pair ({s}, {t}) for k={n_classes}")
        r[s, t] = min(max(float(value), PROB_CLIP), 1.0 - PROB_CLIP)
        r[t, s] = 1.0 - r[s, t]
        seen.add((s, t))
    expected = n_classes * (n_classes - 1) // 2
    if len(seen) != expected:
        raise ValidationError(f"expected {expected} pair estimates, got {len(seen)}")
    return r


def _build_q(r: np.ndarray) -> np.ndarray:
    """The coupling matrix Q of Eq. (15); positive semi-definite."""
    k = r.shape[0]
    q = -(r * r.T)
    diag = np.einsum("us,us->s", r, r) - np.diagonal(r) ** 2
    q[np.diag_indices(k)] = diag
    return q


def couple_probabilities(
    engine: Engine,
    r: np.ndarray,
    *,
    method: str = "eq15",
    category: str = "coupling",
) -> np.ndarray:
    """Multi-class probabilities for one instance from its r matrix."""
    r = np.asarray(r, dtype=np.float64)
    k = r.shape[0]
    if r.shape != (k, k) or k < 2:
        raise ValidationError(f"r must be k x k with k >= 2, got shape {r.shape}")
    r = np.clip(r, PROB_CLIP, 1.0 - PROB_CLIP)
    if method == "eq15":
        return _couple_eq15(engine, r, category)
    if method == "iterative":
        return _couple_iterative(engine, r, category)
    raise ValidationError(f"unknown coupling method {method!r}")


def _couple_eq15(engine: Engine, r: np.ndarray, category: str) -> np.ndarray:
    k = r.shape[0]
    q = _build_q(r)
    # Q build: k^2 elementwise; solve: ~k^3/3 inside one kernel.
    engine.charge(
        category,
        flops=2 * k * k + (k**3) // 3,
        bytes_read=k * k * 8,
        bytes_written=k * 8,
        launches=1,
    )
    ones = np.ones(k)
    ridge = 0.0
    while True:
        try:
            x = gaussian_elimination(q + ridge * np.eye(k), ones)
            break
        except SolverError:
            ridge = RIDGE_START if ridge == 0.0 else ridge * 100.0
            if ridge > RIDGE_MAX:
                raise
    total = x.sum()
    if total == 0:
        raise SolverError("degenerate coupling system: Q^-1 e sums to zero")
    p = x / total
    np.clip(p, 0.0, None, out=p)
    return p / p.sum()


def _couple_iterative(engine: Engine, r: np.ndarray, category: str) -> np.ndarray:
    """LibSVM's fixed-point iteration for Problem (14) (cross-check path)."""
    k = r.shape[0]
    q = _build_q(r)
    p = np.full(k, 1.0 / k)
    for _ in range(ITERATIVE_MAX):
        qp = q @ p
        pqp = float(p @ qp)
        engine.charge(
            category,
            flops=2 * k * k + 4 * k,
            bytes_read=k * k * 8,
            bytes_written=k * 8,
            launches=1,
        )
        max_error = float(np.max(np.abs(qp - pqp)))
        if max_error < ITERATIVE_EPS:
            break
        for t in range(k):
            diff = (-qp[t] + pqp) / q[t, t]
            p[t] += diff
            pqp = (pqp + diff * (diff * q[t, t] + 2.0 * qp[t])) / (1.0 + diff) ** 2
            qp = (qp + diff * q[:, t]) / (1.0 + diff)
            p /= 1.0 + diff
    return p


def couple_batch(
    engine: Engine,
    r_batch: np.ndarray,
    *,
    method: str = "eq15",
    category: str = "coupling",
) -> np.ndarray:
    """Couple many instances; ``r_batch`` has shape ``(m, k, k)``.

    The paper launches one coupling procedure per instance concurrently
    (Phase (iii)(3)); instances are independent, so this is a plain map.
    """
    r_batch = np.asarray(r_batch, dtype=np.float64)
    if r_batch.ndim != 3 or r_batch.shape[1] != r_batch.shape[2]:
        raise ValidationError(f"r_batch must be (m, k, k), got {r_batch.shape}")
    return np.stack(
        [
            couple_probabilities(engine, r_batch[i], method=method, category=category)
            for i in range(r_batch.shape[0])
        ]
    )
