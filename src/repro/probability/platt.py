"""Platt scaling: fitting a sigmoid to SVM decision values (Section 2.1.2).

``P(y = 1 | x) = 1 / (1 + exp(A v + B))`` with (A, B) maximising the
regularised log-likelihood of Eq. (13), using the smoothed targets

    t_i = (N+ + 1) / (N+ + 2)   for positive instances,
    t_i = 1 / (N- + 2)          for negative instances.

The optimiser is Newton's method with backtracking line search and the
numerically-stable objective of Lin, Lin & Weng (2007), exactly as in
LibSVM's ``sigmoid_train``.  The paper's GMP-SVM additionally "evaluates
multiple possible values for A and B concurrently in the Newton's method"
— the ``parallel_line_search`` flag implements that: all candidate step
sizes are scored in one batched device pass and the first Armijo-accepting
step is taken, which is bitwise the same answer as the sequential search.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConvergenceWarning, ValidationError
from repro.gpusim.engine import Engine

__all__ = ["SigmoidModel", "fit_sigmoid", "sigmoid_predict"]

MAX_NEWTON_ITERATIONS = 100
MIN_STEP = 1e-10
HESSIAN_RIDGE = 1e-12
GRADIENT_EPS = 1e-5
ARMIJO = 1e-4


@dataclass(frozen=True)
class SigmoidModel:
    """Fitted sigmoid parameters; ``predict`` maps decision values to P(y=1)."""

    a: float
    b: float
    iterations: int = 0
    converged: bool = True

    def predict(self, decision_values: np.ndarray) -> np.ndarray:
        """P(y = +1) for the given decision values (Eq. 12)."""
        return sigmoid_predict(decision_values, self.a, self.b)


def sigmoid_predict(decision_values: np.ndarray, a: float, b: float) -> np.ndarray:
    """Stable evaluation of ``1 / (1 + exp(A v + B))`` (Eq. 12).

    ``a`` and ``b`` may also be arrays that broadcast against
    ``decision_values`` — passing an ``(m, n)`` decision matrix with the
    stacked per-pair ``(A, B)`` vectors evaluates every pair sigmoid of a
    test batch in one pass, elementwise-identical to the per-column calls.
    """
    values = np.asarray(decision_values, dtype=np.float64)
    fapb = a * values + b
    out = np.empty_like(fapb)
    pos = fapb >= 0
    out[pos] = np.exp(-fapb[pos]) / (1.0 + np.exp(-fapb[pos]))
    out[~pos] = 1.0 / (1.0 + np.exp(fapb[~pos]))
    return out


def _objective(fapb: np.ndarray, targets: np.ndarray) -> float:
    """Stable negative log-likelihood: ``sum t*fApB + log(1 + exp(-fApB))``.

    (The Lin-Lin-Weng rewrite; equal to Eq. 13 up to sign and constant.)
    """
    pos = fapb >= 0
    terms = np.empty_like(fapb)
    terms[pos] = targets[pos] * fapb[pos] + np.log1p(np.exp(-fapb[pos]))
    terms[~pos] = (targets[~pos] - 1.0) * fapb[~pos] + np.log1p(np.exp(fapb[~pos]))
    return float(terms.sum())


def fit_sigmoid(
    engine: Engine,
    decision_values: np.ndarray,
    labels: np.ndarray,
    *,
    parallel_line_search: bool = False,
    category: str = "sigmoid",
    max_iterations: int = MAX_NEWTON_ITERATIONS,
) -> SigmoidModel:
    """Fit (A, B) of Eq. (12) on one binary problem's decision values.

    Parameters
    ----------
    decision_values:
        SVM outputs ``v_i`` on the (training) instances of the binary
        problem (Eq. 11).
    labels:
        The +1/-1 labels of those instances.
    parallel_line_search:
        Score all backtracking candidates in one batched pass (the GMP-SVM
        variant) instead of one at a time (the GPU-baseline variant).

    The returned model's ``converged`` flag is truthful: it is only True
    when the gradient-norm stopping test passed.  ``max_iterations=0``
    (no Newton step taken) therefore reports ``converged=False``, and a
    failed backtracking line search or an exhausted iteration budget emits
    :class:`~repro.exceptions.ConvergenceWarning` (LibSVM prints the same
    diagnostics) while still returning the best (A, B) found.
    """
    values = np.asarray(decision_values, dtype=np.float64).ravel()
    y = np.asarray(labels, dtype=np.float64).ravel()
    if values.size != y.size:
        raise ValidationError(f"{values.size} decision values for {y.size} labels")
    if values.size == 0:
        raise ValidationError("cannot fit a sigmoid on zero instances")
    if max_iterations < 0:
        raise ValidationError(f"max_iterations must be >= 0, got {max_iterations}")
    n = values.size
    n_pos = int(np.count_nonzero(y > 0))
    n_neg = n - n_pos

    hi = (n_pos + 1.0) / (n_pos + 2.0)
    lo = 1.0 / (n_neg + 2.0)
    targets = np.where(y > 0, hi, lo)

    a = 0.0
    b = float(np.log((n_neg + 1.0) / (n_pos + 1.0)))
    fapb = values * a + b
    engine.elementwise(category, n, flops_per_element=2, arrays_read=1)
    fval = _objective(fapb, targets)

    iteration = 0
    converged = False
    for iteration in range(1, max_iterations + 1):
        # p, q of the Lin-Lin-Weng formulation; one elementwise pass.
        pos = fapb >= 0
        p = np.empty(n)
        q = np.empty(n)
        exp_neg = np.exp(-np.abs(fapb))
        p[pos] = exp_neg[pos] / (1.0 + exp_neg[pos])
        q[pos] = 1.0 / (1.0 + exp_neg[pos])
        p[~pos] = 1.0 / (1.0 + exp_neg[~pos])
        q[~pos] = exp_neg[~pos] / (1.0 + exp_neg[~pos])
        engine.elementwise(category, n, flops_per_element=6, arrays_read=2)

        d1 = targets - p
        d2 = p * q
        # Gradient and Hessian entries: five parallel-reduction sums.
        h11 = engine.reduce_sum(values * values * d2, category=category) + HESSIAN_RIDGE
        h22 = engine.reduce_sum(d2, category=category) + HESSIAN_RIDGE
        h21 = engine.reduce_sum(values * d2, category=category)
        g1 = engine.reduce_sum(values * d1, category=category)
        g2 = engine.reduce_sum(d1, category=category)

        if abs(g1) < GRADIENT_EPS and abs(g2) < GRADIENT_EPS:
            converged = True
            break

        # Newton direction from the 2x2 system.
        det = h11 * h22 - h21 * h21
        da = -(h22 * g1 - h21 * g2) / det
        db = -(-h21 * g1 + h11 * g2) / det
        gd = g1 * da + g2 * db

        step = _line_search(
            engine,
            values,
            targets,
            a,
            b,
            da,
            db,
            fval,
            gd,
            parallel=parallel_line_search,
            category=category,
        )
        if step is None:
            # LibSVM: "Line search fails in two-class probability estimates".
            warnings.warn(
                "line search failed in sigmoid (Platt) fitting at iteration "
                f"{iteration}; returning the last (A, B) iterate",
                ConvergenceWarning,
                stacklevel=2,
            )
            break
        a += step * da
        b += step * db
        fapb = values * a + b
        engine.elementwise(category, n, flops_per_element=2, arrays_read=1)
        fval = _objective(fapb, targets)
    else:
        if max_iterations > 0:
            # LibSVM: "Reaching maximal iterations in two-class probability
            # estimates".
            warnings.warn(
                f"sigmoid (Platt) fitting hit the {max_iterations}-iteration "
                "cap before the gradient test passed",
                ConvergenceWarning,
                stacklevel=2,
            )

    return SigmoidModel(a=a, b=b, iterations=iteration, converged=converged)


def _line_search(
    engine: Engine,
    values: np.ndarray,
    targets: np.ndarray,
    a: float,
    b: float,
    da: float,
    db: float,
    fval: float,
    gd: float,
    *,
    parallel: bool,
    category: str,
) -> float | None:
    """Backtracking Armijo search; returns the accepted step or None.

    Sequential and parallel variants accept the identical step: both take
    the largest step in {1, 1/2, 1/4, ...} satisfying the Armijo condition.
    """
    n = values.size
    steps: list[float] = []
    step = 1.0
    while step >= MIN_STEP:
        steps.append(step)
        step /= 2.0

    if parallel:
        # One batched pass scores every candidate (the paper's Sec 3.3.2(ii)
        # concurrency); dependent-iteration latency collapses to one launch.
        step_arr = np.asarray(steps)
        fapb = values[None, :] * (a + step_arr[:, None] * da) + (
            b + step_arr[:, None] * db
        )
        engine.elementwise(
            category, n * step_arr.size, flops_per_element=6, arrays_read=2
        )
        for idx, candidate in enumerate(steps):
            new_f = _objective(fapb[idx], targets)
            if new_f < fval + ARMIJO * candidate * gd:
                return candidate
        return None

    for candidate in steps:
        fapb = values * (a + candidate * da) + (b + candidate * db)
        engine.elementwise(category, n, flops_per_element=6, arrays_read=2)
        new_f = _objective(fapb, targets)
        if new_f < fval + ARMIJO * candidate * gd:
            return candidate
    return None
