"""Versioned model registry: durable lifecycle state between training
and serving.

- :mod:`repro.registry.store` — :class:`ModelRegistry`: content-hashed
  artifacts, a monotonically versioned manifest, lineage, and
  integrity-checked loads.
- :mod:`repro.registry.watch` — :class:`RegistryWatcher`: cheap polling
  for new versions, the input side of the dispatcher's atomic hot swap.
"""

from repro.registry.store import ModelRegistry, ModelVersion
from repro.registry.watch import RegistryWatcher

__all__ = ["ModelRegistry", "ModelVersion", "RegistryWatcher"]
