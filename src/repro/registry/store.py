"""Versioned on-disk model registry with content-addressed artifacts.

The registry is the durable side of the model lifecycle: training
publishes models into it, the serving layer polls it and hot-swaps new
versions in (see :mod:`repro.registry.watch` and
:meth:`repro.server.dispatcher.Dispatcher.swap_model`).

Layout under one registry root::

    manifest.json                     index: versions, head, lineage
    artifacts/<sha256-prefix>.repro   model files (save_model text format)

Artifacts are **content-addressed**: the file name is a prefix of the
SHA-256 of the exact bytes, so identical models deduplicate and a
republished byte-for-byte model reuses its artifact.  Versions are
**monotonic** integers assigned by the manifest (never reused, even
after deletion is off the table — there is no delete).  Every
:meth:`ModelRegistry.load` re-hashes the artifact and refuses to return
a model whose bytes do not match the manifest — a torn write or on-disk
corruption surfaces as :class:`~repro.exceptions.RegistryError`, never
as a silently wrong model.

Writes are crash-safe on POSIX: both artifacts and the manifest are
written to a temporary file in the same directory and moved into place
with ``os.replace`` (atomic rename), so a reader never observes a
half-written manifest and a crash mid-publish leaves at worst an
orphaned temp file, never a corrupt registry.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.exceptions import ModelFormatError, RegistryError
from repro.model.multiclass import MPSVMModel
from repro.model.persistence import load_model, save_model

__all__ = ["ModelRegistry", "ModelVersion"]

MANIFEST_NAME = "manifest.json"
ARTIFACT_DIR = "artifacts"
MANIFEST_FORMAT = "repro-registry"
MANIFEST_VERSION = 1
_HASH_PREFIX = 16  # artifact filename: first 16 hex chars of the sha256


@dataclass(frozen=True)
class ModelVersion:
    """One immutable manifest entry describing a published model."""

    version: int  # monotonic, assigned at publish time
    sha256: str  # full hex digest of the artifact bytes
    artifact: str  # path relative to the registry root
    parent: Optional[int] = None  # lineage: the version this one warm-started from
    n_classes: int = 0
    n_features: int = 0
    strategy: str = "ovo"
    metadata: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        """Render this entry as the manifest's JSON object form."""
        return {
            "version": self.version,
            "sha256": self.sha256,
            "artifact": self.artifact,
            "parent": self.parent,
            "n_classes": self.n_classes,
            "n_features": self.n_features,
            "strategy": self.strategy,
            "metadata": self.metadata,
        }

    @classmethod
    def from_json(cls, entry: dict) -> "ModelVersion":
        """Parse a manifest entry; raise RegistryError when malformed."""
        try:
            return cls(
                version=int(entry["version"]),
                sha256=str(entry["sha256"]),
                artifact=str(entry["artifact"]),
                parent=(
                    None if entry.get("parent") is None else int(entry["parent"])
                ),
                n_classes=int(entry.get("n_classes", 0)),
                n_features=int(entry.get("n_features", 0)),
                strategy=str(entry.get("strategy", "ovo")),
                metadata=dict(entry.get("metadata") or {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RegistryError(f"malformed manifest entry: {exc}") from exc


def _atomic_write(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via temp file + atomic rename."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _serialize(model: MPSVMModel) -> bytes:
    buffer = io.StringIO()
    save_model(model, buffer)
    return buffer.getvalue().encode("utf-8")


class ModelRegistry:
    """Content-hashed, monotonically versioned store of trained models.

    ``ModelRegistry(root)`` opens (or initializes) the registry rooted at
    ``root``.  All state lives in the manifest; the object itself holds
    only the root path, so any number of readers and pollers can watch
    the same directory.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / ARTIFACT_DIR).mkdir(exist_ok=True)
        if not self.manifest_path.exists():
            self._write_manifest([])

    @property
    def manifest_path(self) -> Path:
        """Path of the manifest file (stat its mtime for cheap polling)."""
        return self.root / MANIFEST_NAME

    # ------------------------------------------------------------------
    # Manifest I/O
    # ------------------------------------------------------------------
    def _read_manifest(self) -> list[ModelVersion]:
        try:
            raw = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError as exc:
            raise RegistryError(f"manifest missing: {self.manifest_path}") from exc
        except json.JSONDecodeError as exc:
            raise RegistryError(f"manifest is not valid JSON: {exc}") from exc
        if not isinstance(raw, dict) or raw.get("format") != MANIFEST_FORMAT:
            raise RegistryError(
                f"not a {MANIFEST_FORMAT} manifest: {self.manifest_path}"
            )
        if int(raw.get("version", -1)) > MANIFEST_VERSION:
            raise RegistryError(
                f"manifest format version {raw.get('version')} is newer than "
                f"supported ({MANIFEST_VERSION})"
            )
        entries = [ModelVersion.from_json(e) for e in raw.get("versions", [])]
        versions = [e.version for e in entries]
        if versions != sorted(set(versions)):
            raise RegistryError("manifest versions are not strictly increasing")
        return entries

    def _write_manifest(self, entries: list[ModelVersion]) -> None:
        payload = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "head": entries[-1].version if entries else None,
            "versions": [e.to_json() for e in entries],
        }
        _atomic_write(
            self.manifest_path,
            json.dumps(payload, indent=2, sort_keys=True).encode("utf-8"),
        )

    # ------------------------------------------------------------------
    # Publish / query
    # ------------------------------------------------------------------
    def publish(
        self,
        model: MPSVMModel,
        *,
        parent: Optional[int] = None,
        metadata: Optional[dict] = None,
    ) -> ModelVersion:
        """Store ``model`` and return its new :class:`ModelVersion`.

        ``parent`` records lineage (the version this model warm-started
        or otherwise derived from); it must exist in the manifest.
        Identical bytes deduplicate to one artifact but still get a new
        version number — versions are events, artifacts are content.
        """
        entries = self._read_manifest()
        if parent is not None and all(e.version != parent for e in entries):
            raise RegistryError(f"parent version {parent} is not in the registry")
        payload = _serialize(model)
        digest = hashlib.sha256(payload).hexdigest()
        artifact_rel = f"{ARTIFACT_DIR}/{digest[:_HASH_PREFIX]}.repro"
        artifact_path = self.root / artifact_rel
        if not artifact_path.exists():
            _atomic_write(artifact_path, payload)
        entry = ModelVersion(
            version=(entries[-1].version + 1) if entries else 1,
            sha256=digest,
            artifact=artifact_rel,
            parent=parent,
            n_classes=model.n_classes,
            n_features=model.n_features,
            strategy=model.strategy,
            metadata=dict(metadata or {}),
        )
        self._write_manifest(entries + [entry])
        return entry

    def versions(self) -> list[ModelVersion]:
        """All published versions, oldest first."""
        return self._read_manifest()

    def latest(self) -> Optional[ModelVersion]:
        """The newest version, or ``None`` for an empty registry."""
        entries = self._read_manifest()
        return entries[-1] if entries else None

    def get(self, version: int) -> ModelVersion:
        """The manifest entry for ``version``; :class:`RegistryError` if absent."""
        for entry in self._read_manifest():
            if entry.version == version:
                return entry
        raise RegistryError(f"version {version} is not in the registry")

    def lineage(self, version: int) -> list[int]:
        """Ancestor chain ``[version, parent, grandparent, ...]``."""
        by_version = {e.version: e for e in self._read_manifest()}
        if version not in by_version:
            raise RegistryError(f"version {version} is not in the registry")
        chain = [version]
        seen = {version}
        current = by_version[version]
        while current.parent is not None:
            if current.parent in seen:
                raise RegistryError(
                    f"lineage cycle detected at version {current.parent}"
                )
            if current.parent not in by_version:
                raise RegistryError(
                    f"lineage broken: parent {current.parent} of "
                    f"{current.version} is not in the registry"
                )
            current = by_version[current.parent]
            chain.append(current.version)
            seen.add(current.version)
        return chain

    # ------------------------------------------------------------------
    # Load (with integrity check)
    # ------------------------------------------------------------------
    def load(
        self, version: Optional[int] = None
    ) -> tuple[MPSVMModel, ModelVersion]:
        """Load a version (default: latest), verifying artifact integrity.

        The artifact's bytes are re-hashed and compared against the
        manifest before parsing; a mismatch (torn write, bit rot, manual
        edit) raises :class:`~repro.exceptions.RegistryError`.
        """
        entry = self.latest() if version is None else self.get(version)
        if entry is None:
            raise RegistryError("registry is empty")
        artifact_path = self.root / entry.artifact
        try:
            payload = artifact_path.read_bytes()
        except FileNotFoundError as exc:
            raise RegistryError(
                f"artifact missing for version {entry.version}: {artifact_path}"
            ) from exc
        digest = hashlib.sha256(payload).hexdigest()
        if digest != entry.sha256:
            raise RegistryError(
                f"artifact hash mismatch for version {entry.version}: "
                f"manifest says {entry.sha256[:12]}…, file is {digest[:12]}…"
            )
        try:
            model = load_model(io.StringIO(payload.decode("utf-8")))
        except (UnicodeDecodeError, ModelFormatError) as exc:
            raise RegistryError(
                f"artifact for version {entry.version} failed to parse: {exc}"
            ) from exc
        return model, entry
