"""Polling for new registry versions, built for the serving loop.

:class:`RegistryWatcher` answers one question cheaply: *has a version
newer than the one I'm serving appeared?*  The fast path is a single
``stat`` of the manifest — the registry's atomic-rename writes guarantee
the mtime changes whenever content does — so calling :meth:`poll` on
every request is affordable.  Only when the mtime moves (or on first
poll) does the watcher read the manifest, and only when the head version
advances does it pay for loading + integrity-checking the artifact.

A wall-clock ``min_interval_s`` additionally rate-limits the stat itself
for very hot serving loops; ``clock`` is injectable so tests drive the
interval deterministically.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.exceptions import RegistryError
from repro.model.multiclass import MPSVMModel
from repro.registry.store import ModelRegistry, ModelVersion

__all__ = ["RegistryWatcher"]


class RegistryWatcher:
    """Tracks the newest version of a :class:`ModelRegistry`.

    Parameters
    ----------
    registry:
        The registry to watch.
    start_version:
        Version currently being served (new versions must exceed it);
        ``None`` means any published version counts as new.
    min_interval_s:
        Minimum wall-clock spacing between manifest stats; polls inside
        the window return ``None`` immediately.
    clock:
        Monotonic time source (seconds); injectable for tests.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        start_version: Optional[int] = None,
        min_interval_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.registry = registry
        self.last_version = start_version
        self.min_interval_s = float(min_interval_s)
        self._clock = clock
        self._last_poll_s: Optional[float] = None
        self._last_mtime_ns: Optional[int] = None
        self.n_polls = 0
        self.n_manifest_reads = 0

    def poll(self) -> Optional[tuple[MPSVMModel, ModelVersion]]:
        """Return ``(model, version)`` if a newer version appeared, else ``None``.

        The returned model is fully loaded and integrity-checked;
        ``last_version`` advances so each version is delivered once.
        Corrupt registries raise :class:`~repro.exceptions.RegistryError`
        (the caller decides whether to keep serving the old model).
        """
        now = self._clock()
        if (
            self._last_poll_s is not None
            and now - self._last_poll_s < self.min_interval_s
        ):
            return None
        self._last_poll_s = now
        self.n_polls += 1

        try:
            mtime_ns = self.registry.manifest_path.stat().st_mtime_ns
        except FileNotFoundError as exc:
            raise RegistryError(
                f"manifest missing: {self.registry.manifest_path}"
            ) from exc
        if self._last_mtime_ns is not None and mtime_ns == self._last_mtime_ns:
            return None

        # The mtime is committed only after the read/load below succeeds:
        # if the manifest or artifact vanishes *between* the stat and the
        # read (delete or swap mid-poll), the poll raises RegistryError —
        # the caller keeps serving the old model — and the *next* poll
        # still sees a moved mtime and retries, so the new version is
        # never silently skipped.
        self.n_manifest_reads += 1
        try:
            head = self.registry.latest()
        except FileNotFoundError as exc:  # pragma: no cover - store wraps
            raise RegistryError(
                f"manifest vanished mid-read: {self.registry.manifest_path}"
            ) from exc
        if head is None:
            self._last_mtime_ns = mtime_ns
            return None
        if self.last_version is not None and head.version <= self.last_version:
            self._last_mtime_ns = mtime_ns
            return None
        try:
            model, entry = self.registry.load(head.version)
        except FileNotFoundError as exc:  # pragma: no cover - store wraps
            raise RegistryError(
                f"version {head.version} artifact vanished mid-read"
            ) from exc
        self._last_mtime_ns = mtime_ns
        self.last_version = entry.version
        return model, entry
