"""The HTTP serving front-end: wire protocol, admission control, dispatch.

The network edge over the serving layer (DESIGN.md §13):

- :mod:`repro.server.protocol` — lossless JSON wire format (base64
  float64 buffers, so HTTP responses stay bitwise-equal to direct
  session calls);
- :mod:`repro.server.admission` — per-tenant token buckets, bounded
  priority queues and graceful shedding (429/503 + retry-after);
- :mod:`repro.server.dispatcher` — the worker-pool discrete-event loop
  on the simulated clock, with adaptive micro-batching;
- :mod:`repro.server.app` — routing, headers, WSGI, and the stdlib
  socket server behind the ``repro-serve`` CLI.
"""

from repro.server.admission import (
    AdmissionController,
    AdmissionDecision,
    TenantCounters,
    TenantPolicy,
    TokenBucket,
)
from repro.server.app import ServerApp, serve_http
from repro.server.dispatcher import (
    Dispatcher,
    DispatcherStats,
    ServerRequest,
    SwapReport,
)
from repro.server.protocol import ProtocolError

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "Dispatcher",
    "DispatcherStats",
    "ProtocolError",
    "ServerApp",
    "ServerRequest",
    "SwapReport",
    "TenantCounters",
    "TenantPolicy",
    "TokenBucket",
    "serve_http",
]
