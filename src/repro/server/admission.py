"""Per-tenant admission control: token buckets, bounded queues, shedding.

A front-end taking traffic from many tenants cannot let one hot client
queue the others into timeout territory.  Admission happens *at arrival*,
on the simulated clock, and is a pure function of (tenant policy, bucket
state, queue occupancy, request priority) — which is what makes shed
decisions deterministic and therefore testable and gateable in CI.

Three verdicts:

- **admit** — a token was available and the tenant's queue (and the
  global queue) had room;
- **429 rate_limited** — the tenant's token bucket is empty; the response
  carries ``retry_after_s``, the exact simulated time until the next
  token accrues (capped by the policy);
- **503 overloaded** — queues are full.  Before rejecting, a
  higher-priority arrival *evicts* the lowest-priority queued request
  (which is shed with 503 ``evicted``) — overload never inverts
  priorities: a request is only ever displaced by a strictly more
  important one, and an arrival is only rejected when nothing queued is
  less important than it.

``shutting_down`` (503) covers the drain window: a stopping server
completes what it admitted and refuses the rest.

Every decision increments per-tenant counters
(:class:`TenantCounters`), the raw material for the ``/v1/stats``
endpoint and the load generator's shed-rate metrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import ValidationError

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "TenantCounters",
    "TenantPolicy",
    "TokenBucket",
]


@dataclass(frozen=True)
class TenantPolicy:
    """Admission limits for one tenant (or the default for unknown ones).

    Parameters
    ----------
    rate_per_s:
        Sustained token refill rate (requests per simulated second).
        ``0`` means the tenant is fully blocked (every request sheds).
    burst:
        Bucket capacity — how many requests may arrive back to back
        before the sustained rate applies.
    max_queue:
        Most requests this tenant may have waiting (admitted, not yet
        dispatched).  ``0`` means the tenant may never wait: requests
        are only admitted when a worker can take them immediately, so a
        zero-capacity queue plus a zero rate is a fully shed tenant.
    max_retry_after_s:
        Ceiling for the advertised ``retry_after_s`` (a blocked tenant
        would otherwise advertise infinity).
    """

    rate_per_s: float = 1000.0
    burst: int = 32
    max_queue: int = 64
    max_retry_after_s: float = 60.0

    def __post_init__(self) -> None:
        if self.rate_per_s < 0:
            raise ValidationError(
                f"rate_per_s must be >= 0, got {self.rate_per_s}"
            )
        if self.burst < 0:
            raise ValidationError(f"burst must be >= 0, got {self.burst}")
        if self.max_queue < 0:
            raise ValidationError(
                f"max_queue must be >= 0, got {self.max_queue}"
            )
        if self.max_retry_after_s <= 0:
            raise ValidationError(
                f"max_retry_after_s must be > 0, got {self.max_retry_after_s}"
            )


class TokenBucket:
    """Deterministic token bucket on the simulated-time axis."""

    __slots__ = ("rate_per_s", "burst", "tokens", "updated_s")

    def __init__(self, rate_per_s: float, burst: int, *, now_s: float = 0.0) -> None:
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated_s = float(now_s)

    def _refill(self, now_s: float) -> None:
        if now_s > self.updated_s:
            self.tokens = min(
                self.burst,
                self.tokens + (now_s - self.updated_s) * self.rate_per_s,
            )
            self.updated_s = now_s

    def try_take(self, now_s: float) -> bool:
        """Consume one token at ``now_s`` if available."""
        self._refill(now_s)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def seconds_until_token(self, now_s: float) -> float:
        """Simulated seconds from ``now_s`` until one token is available."""
        self._refill(now_s)
        if self.tokens >= 1.0:
            return 0.0
        if self.rate_per_s <= 0.0:
            return math.inf
        return (1.0 - self.tokens) / self.rate_per_s


@dataclass
class TenantCounters:
    """Per-tenant admission and completion tallies."""

    offered: int = 0
    admitted: int = 0
    shed_rate_limited: int = 0
    shed_overloaded: int = 0
    shed_evicted: int = 0
    shed_shutdown: int = 0
    completed: int = 0

    @property
    def shed(self) -> int:
        """Total requests refused or displaced, any reason."""
        return (
            self.shed_rate_limited
            + self.shed_overloaded
            + self.shed_evicted
            + self.shed_shutdown
        )

    def as_dict(self) -> dict[str, int]:
        """Flat snapshot for the stats endpoint."""
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "shed_rate_limited": self.shed_rate_limited,
            "shed_overloaded": self.shed_overloaded,
            "shed_evicted": self.shed_evicted,
            "shed_shutdown": self.shed_shutdown,
            "shed": self.shed,
            "completed": self.completed,
        }


@dataclass(frozen=True)
class AdmissionDecision:
    """The verdict on one arrival (or one eviction)."""

    admitted: bool
    status: int = 200  # 200 admit, 429 rate-limited, 503 overloaded/down
    reason: str = "admitted"
    retry_after_s: Optional[float] = None


@dataclass
class _TenantState:
    policy: TenantPolicy
    bucket: TokenBucket
    queued: int = 0
    counters: TenantCounters = field(default_factory=TenantCounters)


class AdmissionController:
    """Arrival-time gatekeeper shared by the dispatcher and the HTTP app.

    Parameters
    ----------
    default_policy:
        Applied to tenants without an explicit entry in ``policies``.
    policies:
        Per-tenant overrides, name to :class:`TenantPolicy`.
    max_queue_global:
        Bound on the total admitted-but-waiting population across all
        tenants (the server's global backlog).
    """

    def __init__(
        self,
        *,
        default_policy: Optional[TenantPolicy] = None,
        policies: Optional[dict[str, TenantPolicy]] = None,
        max_queue_global: int = 256,
    ) -> None:
        if max_queue_global < 0:
            raise ValidationError(
                f"max_queue_global must be >= 0, got {max_queue_global}"
            )
        self.default_policy = default_policy or TenantPolicy()
        self._policies = dict(policies or {})
        self.max_queue_global = int(max_queue_global)
        self._tenants: dict[str, _TenantState] = {}
        self.queued_global = 0

    # ------------------------------------------------------------------
    # Tenant state
    # ------------------------------------------------------------------
    def policy_for(self, tenant: str) -> TenantPolicy:
        """The effective policy for a tenant name."""
        return self._policies.get(tenant, self.default_policy)

    def _state(self, tenant: str, now_s: float) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            policy = self.policy_for(tenant)
            state = _TenantState(
                policy=policy,
                bucket=TokenBucket(policy.rate_per_s, policy.burst, now_s=now_s),
            )
            self._tenants[tenant] = state
        return state

    def counters(self, tenant: str) -> TenantCounters:
        """The (live) counters for a tenant; created on first touch."""
        return self._state(tenant, 0.0).counters

    def counters_snapshot(self) -> dict[str, dict[str, int]]:
        """Per-tenant counter dicts, for the stats endpoint."""
        return {
            name: state.counters.as_dict()
            for name, state in sorted(self._tenants.items())
        }

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def offer(self, tenant: str, now_s: float) -> AdmissionDecision:
        """Decide one arrival at simulated time ``now_s``.

        Queue-capacity effects (including priority eviction) are decided
        by the caller via :meth:`has_queue_room` / :meth:`note_*` —
        this method owns the token bucket only.
        """
        state = self._state(tenant, now_s)
        state.counters.offered += 1
        if not state.bucket.try_take(now_s):
            wait = state.bucket.seconds_until_token(now_s)
            retry = min(wait, state.policy.max_retry_after_s)
            state.counters.shed_rate_limited += 1
            return AdmissionDecision(
                admitted=False,
                status=429,
                reason="rate_limited",
                retry_after_s=retry,
            )
        return AdmissionDecision(admitted=True)

    def has_queue_room(self, tenant: str, now_s: float) -> bool:
        """Whether tenant + global queue bounds leave room for one more."""
        state = self._state(tenant, now_s)
        return (
            state.queued < state.policy.max_queue
            and self.queued_global < self.max_queue_global
        )

    # ------------------------------------------------------------------
    # Bookkeeping driven by the dispatcher
    # ------------------------------------------------------------------
    def note_enqueued(self, tenant: str) -> None:
        """An admitted request joined the wait queue."""
        self._state(tenant, 0.0).queued += 1
        self.queued_global += 1

    def note_dequeued(self, tenant: str) -> None:
        """A queued request left the wait queue (dispatch or eviction)."""
        state = self._state(tenant, 0.0)
        state.queued = max(0, state.queued - 1)
        self.queued_global = max(0, self.queued_global - 1)

    def note_overloaded(self, tenant: str) -> AdmissionDecision:
        """Record an overload rejection; returns the 503 verdict."""
        self._state(tenant, 0.0).counters.shed_overloaded += 1
        return AdmissionDecision(
            admitted=False, status=503, reason="overloaded", retry_after_s=0.0
        )

    def note_evicted(self, tenant: str) -> AdmissionDecision:
        """Record a queued request displaced by a higher-priority arrival."""
        self._state(tenant, 0.0).counters.shed_evicted += 1
        return AdmissionDecision(
            admitted=False, status=503, reason="evicted", retry_after_s=0.0
        )

    def note_shutdown(self, tenant: str) -> AdmissionDecision:
        """Record a request refused because the server is draining."""
        self._state(tenant, 0.0).counters.shed_shutdown += 1
        return AdmissionDecision(
            admitted=False, status=503, reason="shutting_down", retry_after_s=None
        )

    def note_admitted(self, tenant: str) -> None:
        """An arrival fully cleared admission (token + queue room)."""
        self._state(tenant, 0.0).counters.admitted += 1

    def note_completed(self, tenant: str) -> None:
        """An admitted request finished computing."""
        self._state(tenant, 0.0).counters.completed += 1

    def refund_token(self, tenant: str, now_s: float) -> None:
        """Return the token taken by an arrival that was then shed on queue room.

        Keeps the bucket honest: a 503-shed request consumed no service,
        so it should not count against the tenant's sustained rate.
        """
        state = self._state(tenant, now_s)
        state.bucket._refill(now_s)
        state.bucket.tokens = min(state.bucket.burst, state.bucket.tokens + 1.0)
