"""The HTTP/REST front-end: routing, headers, and a stdlib socket server.

:class:`ServerApp` maps the wire protocol onto the dispatcher as a pure
handler — ``handle_request(method, path, body, headers)`` returns
``(status, headers, body)`` with no socket in sight — so the exact same
code path serves three transports:

- the in-process load generator and the test suite (deterministic:
  arrival times ride the ``X-Arrival-S`` header on the simulated clock);
- WSGI, via :meth:`ServerApp.wsgi`;
- a real TCP socket, via :func:`serve_http` (stdlib
  ``ThreadingHTTPServer``; requests serialize through one lock so the
  simulated timeline stays well-ordered).

Routes::

    GET  /healthz                  liveness (no admission, no compute)
    GET  /v1/stats                 dispatcher + per-tenant counters
    POST /v1/predict_proba         probabilities  (m, n_classes)
    POST /v1/predict               labels         (m,)
    POST /v1/decision_function     decision values (m, n_svms)

Tenancy and priority travel in headers (``X-Tenant``, body ``priority``);
shed responses are explicit 429/503 with a ``Retry-After`` header and a
machine-readable body, never a hung connection — overload degrades into
fast, honest refusals.
"""

from __future__ import annotations

import json
import math
import threading
import time
from typing import Callable, Optional

from repro.exceptions import RegistryError, ReproError, ValidationError
from repro.server import protocol
from repro.server.dispatcher import Dispatcher, ServerRequest
from repro.server.protocol import ProtocolError
from repro.serving.session import InferenceSession

__all__ = ["ServerApp", "serve_http"]

_POST_ROUTES = {
    "/v1/predict_proba": "predict_proba",
    "/v1/predict": "predict",
    "/v1/decision_function": "decision_function",
}

ARRIVAL_MODES = ("virtual", "wall")


class ServerApp:
    """HTTP routing over one :class:`Dispatcher`.

    Parameters
    ----------
    dispatcher:
        The admission-controlled worker pool to serve through.
    arrival_mode:
        ``"virtual"`` (default): a request arrives at the simulated time
        in its ``X-Arrival-S`` header, or at the dispatcher's current
        virtual now — fully deterministic, the mode tests and the load
        generator use.  ``"wall"``: wall-clock gaps between requests are
        replayed onto the simulated axis (what a long-running socket
        server wants, so token buckets refill in real time).
    watcher:
        Optional :class:`~repro.registry.RegistryWatcher`.  When set,
        every request first polls the registry; a newer published
        version is sealed into a fresh session and hot-swapped into the
        dispatcher (drain-then-flip, zero failed requests) before the
        request is served.  A corrupt registry logs a swap error and the
        server keeps serving the current model.
    """

    def __init__(
        self,
        dispatcher: Dispatcher,
        *,
        arrival_mode: str = "virtual",
        watcher: object = None,
    ) -> None:
        if not isinstance(dispatcher, Dispatcher):
            raise ValidationError(
                f"ServerApp requires a Dispatcher, got {type(dispatcher).__name__}"
            )
        if arrival_mode not in ARRIVAL_MODES:
            raise ValidationError(
                f"arrival_mode must be one of {ARRIVAL_MODES}, got {arrival_mode!r}"
            )
        self.dispatcher = dispatcher
        self.arrival_mode = arrival_mode
        self.watcher = watcher
        self._wall_origin: Optional[float] = None
        self._wall_offset_s = 0.0
        self.n_http_requests = 0
        self.n_swaps = 0
        self.n_swap_errors = 0

    # ------------------------------------------------------------------
    # Core handler
    # ------------------------------------------------------------------
    def handle_request(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        headers: Optional[dict[str, str]] = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """Serve one request; returns ``(status, headers, body)``."""
        headers = {k.lower(): v for k, v in (headers or {}).items()}
        self.n_http_requests += 1
        self._maybe_swap()
        try:
            if method == "GET":
                return self._handle_get(path)
            if method == "POST":
                return self._handle_post(path, body, headers)
            return self._error(405, "method_not_allowed", detail=method)
        except ProtocolError as exc:
            return self._error(400, "bad_request", detail=str(exc))
        except ReproError as exc:
            return self._error(422, "unprocessable", detail=str(exc))

    def _maybe_swap(self) -> None:
        """Poll the registry watcher; hot-swap a newer published model.

        Swap failures never take the server down: the current model
        keeps serving and the error is counted in ``n_swap_errors``.
        """
        if self.watcher is None:
            return
        try:
            update = self.watcher.poll()
        except RegistryError:
            self.n_swap_errors += 1
            return
        if update is None:
            return
        model, entry = update
        try:
            session = InferenceSession(model, self.dispatcher.backend.config)
            self.dispatcher.swap_model(session, label=f"v{entry.version}")
        except ReproError:
            self.n_swap_errors += 1
            return
        self.n_swaps += 1

    def _handle_get(self, path: str) -> tuple[int, dict[str, str], bytes]:
        if path == "/healthz":
            body = json.dumps({"status": "ok"}).encode("utf-8")
            return 200, {"Content-Type": "application/json"}, body
        if path == "/v1/stats":
            body = json.dumps(self.stats_snapshot(), sort_keys=True).encode(
                "utf-8"
            )
            return 200, {"Content-Type": "application/json"}, body
        return self._error(404, "not_found", detail=path)

    def _handle_post(
        self, path: str, body: bytes, headers: dict[str, str]
    ) -> tuple[int, dict[str, str], bytes]:
        kind = _POST_ROUTES.get(path)
        if kind is None:
            return self._error(404, "not_found", detail=path)
        fields = protocol.decode_request(body)
        tenant = headers.get("x-tenant", "default")
        arrival_s = self._resolve_arrival(headers)
        request = self.dispatcher.submit(
            fields["instances"],
            kind=kind,
            tenant=tenant,
            priority=fields["priority"],
            arrival_s=arrival_s,
        )
        if request.shed:
            return self._shed_response(request)
        if not request.done:
            # Synchronous HTTP semantics: the connection blocks until the
            # simulation completes this request (later arrivals cannot
            # precede it on this transport).
            self.dispatcher.drain()
        response = protocol.response_body(
            request_id=request.request_id,
            kind=kind,
            result=request.result,
            tenant=tenant,
            queue_s=request.queue_s,
            compute_s=request.compute_s,
            latency_s=request.latency_s,
            batch_id=request.batch_id,
            batch_requests=request.batch_requests,
        )
        return 200, {"Content-Type": "application/json"}, response

    def _resolve_arrival(self, headers: dict[str, str]) -> Optional[float]:
        if self.arrival_mode == "wall":
            now = time.perf_counter()
            if self._wall_origin is None:
                self._wall_origin = now
                self._wall_offset_s = self.dispatcher.now_s
            return self._wall_offset_s + (now - self._wall_origin)
        raw = headers.get("x-arrival-s")
        if raw is None:
            return None  # the dispatcher's current virtual now
        try:
            arrival = float(raw)
        except ValueError:
            raise ProtocolError(f"X-Arrival-S is not a number: {raw!r}")
        return arrival

    def _shed_response(
        self, request: ServerRequest
    ) -> tuple[int, dict[str, str], bytes]:
        decision = request.decision
        headers = {"Content-Type": "application/json"}
        if decision.retry_after_s is not None:
            # RFC 9110 §10.2.3: Retry-After is integer delta-seconds.
            # Ceil so clients never retry before a token is available; the
            # exact float stays in the JSON body as retry_after_s.
            headers["Retry-After"] = str(
                max(1, math.ceil(decision.retry_after_s))
            )
        body = protocol.error_body(
            decision.status,
            decision.reason,
            tenant=request.tenant,
            retry_after_s=decision.retry_after_s,
        )
        return decision.status, headers, body

    def _error(
        self, status: int, reason: str, *, detail: str = ""
    ) -> tuple[int, dict[str, str], bytes]:
        return (
            status,
            {"Content-Type": "application/json"},
            protocol.error_body(status, reason, detail=detail),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> dict:
        """Dispatcher totals + per-tenant counters, JSON-safe."""
        stats = self.dispatcher.stats
        return {
            "n_http_requests": self.n_http_requests,
            "n_swaps": self.n_swaps,
            "n_swap_errors": self.n_swap_errors,
            "n_workers": self.dispatcher.n_workers,
            "n_queued": self.dispatcher.n_queued,
            "virtual_now_s": self.dispatcher.now_s,
            "offered": stats.n_offered,
            "admitted": stats.n_admitted,
            "shed": stats.n_shed,
            "shed_rate": stats.shed_rate,
            "dispatches": stats.n_dispatches,
            "mean_batch_size": stats.mean_batch_size,
            "accepted_throughput_rps": stats.accepted_throughput_rps,
            "latency_p50_s": stats.latency_percentile(50.0),
            "latency_p99_s": stats.latency_percentile(99.0),
            "tenants": self.dispatcher.admission.counters_snapshot(),
        }

    # ------------------------------------------------------------------
    # WSGI
    # ------------------------------------------------------------------
    def wsgi(self, environ: dict, start_response: Callable):
        """A minimal WSGI callable over :meth:`handle_request`."""
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            length = 0
        body = environ["wsgi.input"].read(length) if length else b""
        headers = {
            key[5:].replace("_", "-"): value
            for key, value in environ.items()
            if key.startswith("HTTP_")
        }
        status, response_headers, payload = self.handle_request(
            environ.get("REQUEST_METHOD", "GET"),
            environ.get("PATH_INFO", "/"),
            body,
            headers,
        )
        start_response(
            f"{status} {_REASONS.get(status, 'Unknown')}",
            sorted(response_headers.items()),
        )
        return [payload]


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    503: "Service Unavailable",
}


def serve_http(
    app: ServerApp,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    max_requests: Optional[int] = None,
    ready_callback: Optional[Callable[[str, int], None]] = None,
    log: Optional[Callable[[str], None]] = None,
) -> int:
    """Run ``app`` on a real TCP socket (stdlib ``ThreadingHTTPServer``).

    Requests serialize through one lock, keeping the simulated timeline
    well-ordered under concurrent connections.  ``max_requests`` stops
    the server after that many requests (smoke tests, CI);
    ``ready_callback(host, port)`` fires once the socket is bound.
    Returns the number of requests served.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    lock = threading.Lock()
    served = {"count": 0}

    class _Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def _dispatch(self) -> None:
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length) if length else b""
            with lock:
                status, headers, payload = app.handle_request(
                    self.command,
                    self.path,
                    body,
                    dict(self.headers.items()),
                )
                served["count"] += 1
                stop = (
                    max_requests is not None
                    and served["count"] >= max_requests
                )
            self.send_response(status)
            for key, value in headers.items():
                self.send_header(key, value)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
            if stop:
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()

        def do_GET(self) -> None:  # noqa: N802 - stdlib naming
            self._dispatch()

        def do_POST(self) -> None:  # noqa: N802 - stdlib naming
            self._dispatch()

        def log_message(self, fmt: str, *args: object) -> None:
            if log is not None:
                log(fmt % args)

    server = ThreadingHTTPServer((host, port), _Handler)
    try:
        if ready_callback is not None:
            ready_callback(*server.server_address[:2])
        server.serve_forever(poll_interval=0.05)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.server_close()
    return served["count"]
