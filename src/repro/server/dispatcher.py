"""Worker-pool dispatch over sealed sessions, on the simulated clock.

The dispatcher is a discrete-event model of an async serving loop: a
fixed pool of *worker lanes* (concurrency slots), a priority wait queue
fed by :mod:`repro.server.admission`, and adaptive micro-batching — an
idle worker takes one request and dispatches immediately (batch of 1,
lowest latency); under contention the queue grows and a freed worker
fuses up to ``max_batch`` compatible requests into one session call, so
batches widen exactly when amortization pays.  This mirrors the
training-side wave driver's philosophy: concurrency is *executed* on a
virtual timeline, not assumed.

Events are processed in arrival order: ``submit(arrival_s)`` first
advances the pool to ``arrival_s`` (freeing workers, draining the queue
into them), then runs admission, then either dispatches, queues, evicts a
lower-priority victim, or sheds.  Because every step is a deterministic
function of the simulated clock, identical request streams produce
identical shed decisions, batch shapes and latency percentiles — run to
run, machine to machine.

Compute cost of a fused dispatch is the engine-clock delta of the
underlying :class:`~repro.serving.InferenceSession` call (or router
call), so results — and their bitwise parity with direct session calls —
come from exactly the code path DESIGN.md §11 gates.

Backends:

- :class:`~repro.serving.InferenceSession` — ``n_workers`` lanes share
  the one sealed session (a resident server with an async handler pool);
- :class:`~repro.distributed.ShardedInferenceRouter` (``replicated``) —
  one lane per device, each dispatch runs on its own device's session;
- :class:`~repro.distributed.ShardedInferenceRouter`
  (``pair_partitioned``) — one lane whose calls fan out across shards
  internally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.core.validation import check_predict_inputs
from repro.distributed.inference import ShardedInferenceRouter
from repro.exceptions import ValidationError
from repro.serving.batcher import REQUEST_KINDS, compute_group, fuse_matrices
from repro.serving.session import InferenceSession
from repro.server.admission import AdmissionController, AdmissionDecision
from repro.sparse import CSRMatrix
from repro.sparse import ops as mops
from repro.telemetry.tracer import Tracer, maybe_span

__all__ = ["Dispatcher", "DispatcherStats", "ServerRequest", "SwapReport"]

Backend = Union[InferenceSession, ShardedInferenceRouter]


@dataclass
class ServerRequest:
    """One offered request: admission verdict, then (if admitted) result."""

    request_id: int
    tenant: str
    priority: int
    kind: str
    data: object = field(repr=False)
    n_rows: int = 0
    arrival_s: float = 0.0
    decision: AdmissionDecision = field(
        default_factory=lambda: AdmissionDecision(admitted=True)
    )
    done: bool = False
    shed: bool = False
    worker: Optional[int] = None
    batch_id: Optional[int] = None
    batch_requests: int = 0
    dispatch_s: float = 0.0
    completion_s: float = 0.0
    queue_s: float = 0.0
    compute_s: float = 0.0
    latency_s: float = 0.0
    _result: object = field(default=None, repr=False)

    @property
    def status(self) -> int:
        """HTTP status of the verdict (200, 429 or 503)."""
        return self.decision.status

    @property
    def result(self) -> np.ndarray:
        """The request's rows; raises if shed or not yet dispatched."""
        if self.shed:
            raise ValidationError(
                f"request #{self.request_id} was shed "
                f"({self.decision.status} {self.decision.reason}); it has no result"
            )
        if not self.done:
            raise ValidationError(
                f"request #{self.request_id} has not been dispatched yet; "
                "advance or drain the dispatcher first"
            )
        return self._result


@dataclass
class DispatcherStats:
    """Aggregate totals across all dispatches."""

    n_offered: int = 0
    n_admitted: int = 0
    n_shed: int = 0
    n_failed: int = 0  # admitted requests lost to a dead replica (503)
    n_dispatches: int = 0
    n_rows: int = 0
    first_arrival_s: Optional[float] = None
    last_completion_s: float = 0.0
    busy_s_per_worker: list = field(default_factory=list)
    accepted_latencies_s: list = field(default_factory=list)

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests shed (any reason)."""
        return self.n_shed / self.n_offered if self.n_offered else 0.0

    @property
    def mean_batch_size(self) -> float:
        """Mean admitted requests per fused dispatch."""
        return (
            self.n_admitted / self.n_dispatches if self.n_dispatches else 0.0
        )

    @property
    def makespan_s(self) -> float:
        """First arrival to last completion, simulated seconds."""
        if self.first_arrival_s is None:
            return 0.0
        return max(0.0, self.last_completion_s - self.first_arrival_s)

    @property
    def accepted_throughput_rps(self) -> float:
        """Completed accepted requests per simulated second of makespan."""
        span = self.makespan_s
        return len(self.accepted_latencies_s) / span if span > 0 else 0.0

    def latency_percentile(self, q: float) -> float:
        """Accepted-request simulated latency percentile (q in [0, 100])."""
        if not self.accepted_latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.accepted_latencies_s), q))


@dataclass(frozen=True)
class SwapReport:
    """What one :meth:`Dispatcher.swap_model` did, on the virtual clock."""

    label: Optional[str]  # caller's tag, e.g. the registry version
    requested_s: float  # virtual time the swap was requested
    completed_s: float  # virtual time the route pointer flipped
    window_s: float  # completed - requested: the drain window
    drained_requests: int  # queued requests completed on the old model


class _Lane:
    """One worker lane: a concurrency slot bound to a serving callable."""

    __slots__ = (
        "index", "free_at_s", "busy_s", "session", "router",
        "failed_at_s", "detected",
    )

    def __init__(
        self,
        index: int,
        session: Optional[InferenceSession],
        router: Optional[ShardedInferenceRouter],
    ) -> None:
        self.index = index
        self.free_at_s = 0.0
        self.busy_s = 0.0
        self.session = session
        self.router = router
        # Fail-stop state: failed_at_s is the simulated instant the
        # lane's replica died; detected flips on the first dispatch that
        # observes the failure, after which routing excludes the lane.
        self.failed_at_s: Optional[float] = None
        self.detected = False

    def clock_s(self) -> float:
        if self.session is not None:
            return self.session.simulated_seconds
        return self.router.simulated_seconds

    def call(self, group: str, fused: object) -> np.ndarray:
        target = self.session if self.session is not None else self.router
        if group == "proba":
            return target.predict_proba(fused)
        if group == "decision":
            return target.decision_function(fused)
        return target.predict(fused)  # "vote": non-probabilistic labels


class Dispatcher:
    """Admission-controlled worker-pool serving over a sealed backend.

    Parameters
    ----------
    backend:
        An :class:`InferenceSession` or :class:`ShardedInferenceRouter`.
    n_workers:
        Concurrency lanes.  Ignored for a ``replicated`` router (one lane
        per device) and a ``pair_partitioned`` router (one lane).
    max_batch:
        Most requests fused into one dispatch when the queue has built up.
    admission:
        The :class:`AdmissionController`; a permissive default otherwise.
    tracer:
        Telemetry sink; defaults to the backend's configured tracer.
    """

    def __init__(
        self,
        backend: Backend,
        *,
        n_workers: int = 2,
        max_batch: int = 16,
        admission: Optional[AdmissionController] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if isinstance(backend, InferenceSession):
            if n_workers < 1:
                raise ValidationError(f"n_workers must be >= 1, got {n_workers}")
            self._lanes = [
                _Lane(i, backend, None) for i in range(int(n_workers))
            ]
            self._probe_session = backend
        elif isinstance(backend, ShardedInferenceRouter):
            if backend.strategy == "replicated":
                sessions = backend.sessions
                self._lanes = [
                    _Lane(i, session, None)
                    for i, session in enumerate(sessions)
                ]
                self._probe_session = sessions[0]
            else:
                self._lanes = [_Lane(0, None, backend)]
                # Group resolution needs a session-shaped object exposing
                # .model; the router itself carries the warm model.
                self._probe_session = backend
        else:
            raise ValidationError(
                "Dispatcher backend must be an InferenceSession or "
                f"ShardedInferenceRouter, got {type(backend).__name__}"
            )
        if max_batch < 1:
            raise ValidationError(f"max_batch must be >= 1, got {max_batch}")
        self.backend = backend
        self.max_batch = int(max_batch)
        self.admission = admission or AdmissionController()
        self._tracer = (
            tracer
            if tracer is not None
            else getattr(getattr(backend, "config", None), "tracer", None)
        )
        self.stats = DispatcherStats(
            busy_s_per_worker=[0.0] * len(self._lanes)
        )
        self._queue: list[ServerRequest] = []
        self._next_id = 0
        self._next_batch_id = 0
        self._seq: dict[int, int] = {}  # request_id -> admission order
        self._next_seq = 0
        self.now_s = 0.0
        self._shutting_down = False
        self.decision_log: list[tuple[int, int, str]] = []
        self.swaps: list[SwapReport] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_workers(self) -> int:
        """Number of concurrency lanes."""
        return len(self._lanes)

    @property
    def n_queued(self) -> int:
        """Admitted requests waiting for a worker."""
        return len(self._queue)

    @property
    def n_features(self) -> int:
        """Feature count requests must match."""
        return self._probe_session.n_features

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def submit(
        self,
        X: object,
        *,
        kind: str = "predict_proba",
        tenant: str = "default",
        priority: int = 0,
        arrival_s: Optional[float] = None,
    ) -> ServerRequest:
        """Offer one request at ``arrival_s`` (default: current virtual now).

        Arrivals must be non-decreasing — the dispatcher is an
        event-ordered simulation.  The returned handle carries the
        admission verdict immediately; results materialize as the
        simulation advances (``advance_to`` / ``drain``).
        """
        if kind not in REQUEST_KINDS:
            raise ValidationError(
                f"kind must be one of {REQUEST_KINDS}, got {kind!r}"
            )
        data = check_predict_inputs(X, self.n_features)
        arrival = self.now_s if arrival_s is None else float(arrival_s)
        if arrival < self.now_s:
            raise ValidationError(
                f"arrival_s={arrival} precedes the dispatcher's virtual now "
                f"({self.now_s}); arrivals are processed in time order"
            )
        self.advance_to(arrival)
        request = ServerRequest(
            request_id=self._next_id,
            tenant=tenant,
            priority=int(priority),
            kind=kind,
            data=data,
            n_rows=mops.n_rows(data),
            arrival_s=arrival,
        )
        self._next_id += 1
        self.stats.n_offered += 1
        if self.stats.first_arrival_s is None:
            self.stats.first_arrival_s = arrival
        self._admit(request)
        return request

    def _admit(self, request: ServerRequest) -> None:
        admission = self.admission
        tenant = request.tenant
        if self._shutting_down:
            self._shed(request, admission.note_shutdown(tenant))
            return
        decision = admission.offer(tenant, request.arrival_s)
        if not decision.admitted:
            self._shed(request, decision)
            return
        if not admission.has_queue_room(tenant, request.arrival_s):
            victim = self._eviction_victim(request)
            if victim is None:
                admission.refund_token(tenant, request.arrival_s)
                self._shed(request, admission.note_overloaded(tenant))
                return
            self._queue.remove(victim)
            admission.note_dequeued(victim.tenant)
            self._shed(victim, admission.note_evicted(victim.tenant))
        admission.note_admitted(tenant)
        self.stats.n_admitted += 1
        request.decision = AdmissionDecision(admitted=True)
        self.decision_log.append((request.request_id, 200, "admitted"))
        self._seq[request.request_id] = self._next_seq
        self._next_seq += 1
        self._queue.append(request)
        admission.note_enqueued(tenant)
        self._pump(request.arrival_s)

    def _eviction_victim(
        self, incoming: ServerRequest
    ) -> Optional[ServerRequest]:
        """The queued request a higher-priority arrival may displace.

        Only strictly lower-priority requests are candidates; when the
        *tenant's* queue is the full dimension, only that tenant's
        requests free usable room.  Among candidates the lowest priority
        loses, youngest first — so the shed order never inverts
        priorities.
        """
        admission = self.admission
        # Which bound is full decides the candidate pool.
        policy = admission.policy_for(incoming.tenant)
        tenant_queued = sum(
            1 for r in self._queue if r.tenant == incoming.tenant
        )
        candidates = [
            r for r in self._queue if r.priority < incoming.priority
        ]
        if tenant_queued >= policy.max_queue:
            candidates = [
                r for r in candidates if r.tenant == incoming.tenant
            ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda r: (r.priority, -self._seq[r.request_id]),
        )

    def _shed(self, request: ServerRequest, decision: AdmissionDecision) -> None:
        request.decision = decision
        request.shed = True
        request.done = True
        self.stats.n_shed += 1
        self.decision_log.append(
            (request.request_id, decision.status, decision.reason)
        )
        if self._tracer is not None:
            self._tracer.event(
                "serve_shed",
                request_id=request.request_id,
                tenant=request.tenant,
                priority=request.priority,
                status=decision.status,
                reason=decision.reason,
                arrival_s=request.arrival_s,
            )

    # ------------------------------------------------------------------
    # Simulation advance
    # ------------------------------------------------------------------
    def advance_to(self, t_s: float) -> None:
        """Process every dispatch that starts at or before ``t_s``."""
        while self._queue:
            lanes = [w for w in self._lanes if not w.detected]
            if not lanes:
                break  # every lane confirmed dead; queue waits for restore
            lane = min(lanes, key=lambda w: (w.free_at_s, w.index))
            start = max(lane.free_at_s, self.now_s)
            if start > t_s:
                break
            self._dispatch(lane, start)
        self.now_s = max(self.now_s, t_s)

    def drain(self) -> float:
        """Dispatch everything queued; returns the final virtual time."""
        self.advance_to(math.inf)
        self.now_s = max(
            self.now_s if self.now_s != math.inf else 0.0,
            self.stats.last_completion_s,
        )
        if self.now_s == math.inf:  # pragma: no cover - defensive
            self.now_s = self.stats.last_completion_s
        return self.now_s

    def shutdown(self, *, drain: bool = True) -> None:
        """Stop admitting; complete (``drain=True``) or shed the backlog."""
        self._shutting_down = True
        if drain:
            self.drain()
            return
        for request in list(self._queue):
            self.admission.note_dequeued(request.tenant)
            self._shed(request, self.admission.note_shutdown(request.tenant))
        self._queue.clear()

    # ------------------------------------------------------------------
    # Hot swap
    # ------------------------------------------------------------------
    def swap_model(
        self, backend: InferenceSession, *, label: Optional[str] = None
    ) -> SwapReport:
        """Atomically replace the serving model with a sealed ``backend``.

        Drain-then-flip: every request admitted before the swap (queued
        or in flight) completes on the **old** model, then the route
        pointer flips and every later arrival runs on the **new** one —
        no request ever observes a half-swapped model, and none is
        failed or shed by the swap itself.  The swap point is the
        current virtual time; because dispatch is a deterministic
        function of the clock, the post-swap stream is bitwise identical
        to a cold restart of the new model fed the same requests.

        Only :class:`InferenceSession` backends swap (sharded routers
        own per-device placement; restart those).  The new session must
        serve the same feature count the admitted traffic was validated
        against.
        """
        if not isinstance(backend, InferenceSession):
            raise ValidationError(
                "swap_model requires a sealed InferenceSession, got "
                f"{type(backend).__name__}"
            )
        if not isinstance(self.backend, InferenceSession):
            raise ValidationError(
                "swap_model supports InferenceSession backends only; "
                "sharded routers manage their own placement"
            )
        if backend.n_features != self.n_features:
            raise ValidationError(
                f"new model expects {backend.n_features} features, the "
                f"live route serves {self.n_features}"
            )
        requested_s = self.now_s
        drained = len(self._queue)
        # Complete the backlog on the old model; advances the virtual
        # clock to the last old-model completion.
        self.drain()
        completed_s = self.now_s
        for lane in self._lanes:
            lane.session = backend
        self.backend = backend
        self._probe_session = backend
        report = SwapReport(
            label=label,
            requested_s=requested_s,
            completed_s=completed_s,
            window_s=completed_s - requested_s,
            drained_requests=drained,
        )
        self.swaps.append(report)
        if self._tracer is not None:
            self._tracer.event(
                "model_swap",
                label=label,
                requested_s=requested_s,
                completed_s=completed_s,
                window_s=report.window_s,
                drained_requests=drained,
            )
        return report

    # ------------------------------------------------------------------
    # Replica health (fault injection + degraded serving)
    # ------------------------------------------------------------------
    def fail_lane(self, index: int, *, at_s: Optional[float] = None) -> None:
        """Kill lane ``index``'s replica at simulated ``at_s`` (default now).

        Fail-stop: work dispatched to the lane strictly before ``at_s``
        completed on the live replica and stands; the first batch routed
        to it at or after ``at_s`` observes the failure — those requests
        get an explicit 503 (``replica_lost``), detection trips, and the
        dispatcher serves on through the surviving lanes (degraded
        capacity, longer queues, zero silent wrong answers).
        """
        lane = self._lane_at(index)
        t_s = self.now_s if at_s is None else float(at_s)
        if t_s < self.now_s:
            raise ValidationError(
                f"fail_lane at_s={t_s} precedes the dispatcher's virtual "
                f"now ({self.now_s})"
            )
        self.advance_to(t_s)
        if lane.failed_at_s is not None:
            raise ValidationError(f"lane {index} is already failed")
        lane.failed_at_s = t_s
        lane.detected = False
        if self._tracer is not None:
            self._tracer.event("lane_failed", lane=index, at_s=t_s)

    def restore_lane(
        self,
        index: int,
        session: Optional[InferenceSession] = None,
        *,
        at_s: Optional[float] = None,
    ) -> None:
        """Bring lane ``index`` back with a replacement replica.

        ``session`` replaces the lane's sealed session (it must serve
        the same feature width); omitted, the lane re-binds its previous
        backend — modelling a restarted replica of the same model.  The
        lane rejoins routing at ``at_s`` (default now) and later
        arrivals may land on it; nothing queued is dropped.
        """
        lane = self._lane_at(index)
        if lane.failed_at_s is None:
            raise ValidationError(f"lane {index} is not failed")
        t_s = self.now_s if at_s is None else float(at_s)
        if t_s < self.now_s:
            raise ValidationError(
                f"restore_lane at_s={t_s} precedes the dispatcher's "
                f"virtual now ({self.now_s})"
            )
        self.advance_to(t_s)
        if session is not None:
            if not isinstance(session, InferenceSession):
                raise ValidationError(
                    "restore_lane requires a sealed InferenceSession, got "
                    f"{type(session).__name__}"
                )
            if session.n_features != self.n_features:
                raise ValidationError(
                    f"replacement model expects {session.n_features} "
                    f"features, the live route serves {self.n_features}"
                )
            if lane.session is None:
                raise ValidationError(
                    "router-backed lanes re-bind their router; restore "
                    "without a session"
                )
            lane.session = session
        lane.failed_at_s = None
        lane.detected = False
        lane.free_at_s = max(lane.free_at_s, t_s)
        if self._tracer is not None:
            self._tracer.event("lane_restored", lane=index, at_s=t_s)
        # Freed capacity immediately drains whatever queued while the
        # pool ran degraded.
        self._pump(self.now_s)

    def lane_health(self) -> list[dict]:
        """Per-lane health snapshot: failed / detected / busy horizon."""
        return [
            {
                "lane": lane.index,
                "failed": lane.failed_at_s is not None,
                "failed_at_s": lane.failed_at_s,
                "detected": lane.detected,
                "free_at_s": lane.free_at_s,
            }
            for lane in self._lanes
        ]

    def _lane_at(self, index: int) -> _Lane:
        if not 0 <= index < len(self._lanes):
            raise ValidationError(
                f"lane {index} out of range for a "
                f"{len(self._lanes)}-lane dispatcher"
            )
        return self._lanes[index]

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _take_batch(self) -> list[ServerRequest]:
        """Head = highest-priority oldest request; extend with compatible."""
        order = sorted(
            self._queue,
            key=lambda r: (-r.priority, self._seq[r.request_id]),
        )
        head = order[0]
        group = (
            compute_group(self._probe_session, head.kind),
            isinstance(head.data, CSRMatrix),
        )
        batch = [head]
        for candidate in order[1:]:
            if len(batch) >= self.max_batch:
                break
            if (
                compute_group(self._probe_session, candidate.kind),
                isinstance(candidate.data, CSRMatrix),
            ) == group:
                batch.append(candidate)
        for request in batch:
            self._queue.remove(request)
            self.admission.note_dequeued(request.tenant)
        return batch

    def _dispatch(self, lane: _Lane, start_s: float) -> None:
        if lane.failed_at_s is not None and start_s >= lane.failed_at_s:
            # The dispatch is how the failure is observed: the batch it
            # was routed to fails with an explicit 503 (never a silent
            # wrong answer), the lane is marked detected, and routing
            # excludes it from here on — the 503 window is exactly the
            # requests routed to the dead replica before detection.
            batch = self._take_batch()
            lane.detected = True
            self.stats.n_failed += len(batch)
            decision = AdmissionDecision(
                admitted=False,
                status=503,
                reason="replica_lost",
                retry_after_s=0.0,
            )
            for request in batch:
                self._shed(request, decision)
            return
        batch = self._take_batch()
        group = compute_group(self._probe_session, batch[0].kind)
        fused = fuse_matrices([request.data for request in batch])
        n_rows = mops.n_rows(fused)
        batch_id = self._next_batch_id
        self._next_batch_id += 1

        clock_before = lane.clock_s()
        engine_clock = getattr(
            getattr(lane.session, "engine", None), "clock", None
        )
        with maybe_span(
            self._tracer,
            "serve_dispatch",
            clock=engine_clock,
            batch_id=batch_id,
            worker=lane.index,
            compute=group,
            n_requests=len(batch),
            n_rows=n_rows,
            start_s=start_s,
        ) as span:
            fused_rows = lane.call(group, fused)
            compute_s = lane.clock_s() - clock_before
            span.set(compute_s=compute_s)
        completion_s = start_s + compute_s
        lane.free_at_s = completion_s
        lane.busy_s += compute_s
        self.stats.busy_s_per_worker[lane.index] += compute_s
        self.stats.last_completion_s = max(
            self.stats.last_completion_s, completion_s
        )

        offset = 0
        for request in batch:
            rows = fused_rows[offset : offset + request.n_rows]
            if group == "proba" and request.kind == "predict":
                rows = self._probe_session.model.labels_from_positions(
                    np.argmax(rows, axis=1)
                )
            request._result = rows
            request.done = True
            request.worker = lane.index
            request.batch_id = batch_id
            request.batch_requests = len(batch)
            request.dispatch_s = start_s
            request.completion_s = completion_s
            request.queue_s = start_s - request.arrival_s
            request.compute_s = compute_s
            request.latency_s = completion_s - request.arrival_s
            offset += request.n_rows
            self.admission.note_completed(request.tenant)
            self.stats.accepted_latencies_s.append(request.latency_s)
            if self._tracer is not None:
                self._tracer.event(
                    "serve_request",
                    clock=engine_clock,
                    request_id=request.request_id,
                    tenant=request.tenant,
                    kind=request.kind,
                    batch_id=batch_id,
                    worker=lane.index,
                    n_rows=request.n_rows,
                    queue_s=request.queue_s,
                    compute_s=request.compute_s,
                    latency_s=request.latency_s,
                )
        self.stats.n_dispatches += 1
        self.stats.n_rows += n_rows

    def _pump(self, now_s: float) -> None:
        """Dispatch to any lane already free at ``now_s`` (eager path)."""
        while self._queue:
            lanes = [w for w in self._lanes if not w.detected]
            if not lanes:
                break
            lane = min(lanes, key=lambda w: (w.free_at_s, w.index))
            if lane.free_at_s > now_s:
                break
            self._dispatch(lane, max(lane.free_at_s, now_s))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dispatcher(workers={self.n_workers}, queued={self.n_queued}, "
            f"offered={self.stats.n_offered}, shed={self.stats.n_shed})"
        )
