"""Wire protocol for the HTTP serving front-end: lossless JSON payloads.

The server's contract is *bitwise* parity with direct
:class:`~repro.serving.InferenceSession` calls, so the wire format cannot
round floats through decimal text.  Arrays cross the wire as base64 of
their raw little-endian buffers next to an explicit dtype and shape —
``decode_array(encode_array(a))`` returns the identical bytes, and a
client that decodes a response holds the very float64 values the session
computed.

Request matrices come in three spellings:

- ``{"rows": [[...], ...]}`` — human-writable nested lists (cast to
  float64; convenient, not bitwise-stable across JSON writers);
- ``{"dense_b64": ..., "dtype": ..., "shape": [m, n]}`` — lossless dense;
- ``{"csr": {"shape": [m, n], "indptr_b64": ..., "indices_b64": ...,
  "data_b64": ...}}`` — lossless CSR, served through the same sparse path
  the session uses.

Responses carry the result array in the lossless dense spelling plus the
request's simulated timing (queue/compute/latency seconds) and its batch
assignment.  Errors are ``{"error": {"status", "reason", ...}}`` with the
HTTP status mirrored in the body so load-generator logs are
self-contained.
"""

from __future__ import annotations

import base64
import json
from typing import Any, Optional

import numpy as np

from repro.exceptions import SparseFormatError, ValidationError
from repro.sparse import CSRMatrix

__all__ = [
    "ProtocolError",
    "decode_array",
    "decode_matrix",
    "decode_request",
    "encode_array",
    "encode_matrix",
    "error_body",
    "response_body",
]

# Dtypes a payload may declare; everything the numeric paths produce.
_ALLOWED_DTYPES = {"float64", "float32", "int64", "int32"}


class ProtocolError(ValidationError):
    """A malformed wire payload (maps to HTTP 400)."""


def encode_array(array: np.ndarray) -> dict[str, Any]:
    """Encode an ndarray losslessly: base64 raw buffer + dtype + shape."""
    array = np.ascontiguousarray(array)
    return {
        "dtype": str(array.dtype),
        "shape": list(array.shape),
        "data_b64": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def decode_array(payload: dict[str, Any]) -> np.ndarray:
    """Decode :func:`encode_array` output back to the identical ndarray."""
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"array payload must be an object, got {type(payload).__name__}"
        )
    for key in ("dtype", "shape", "data_b64"):
        if key not in payload:
            raise ProtocolError(f"array payload is missing {key!r}")
    dtype = str(payload["dtype"])
    if dtype not in _ALLOWED_DTYPES:
        raise ProtocolError(
            f"array dtype must be one of {sorted(_ALLOWED_DTYPES)}, got {dtype!r}"
        )
    try:
        raw = base64.b64decode(payload["data_b64"], validate=True)
    except Exception as exc:
        raise ProtocolError(f"array data_b64 is not valid base64: {exc}")
    shape = tuple(int(s) for s in payload["shape"])
    expected = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
    if len(raw) != expected:
        raise ProtocolError(
            f"array buffer holds {len(raw)} bytes but shape {shape} with "
            f"dtype {dtype} needs {expected}"
        )
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


def encode_matrix(data: object) -> dict[str, Any]:
    """Encode a request/response matrix (dense ndarray or CSR) losslessly."""
    if isinstance(data, CSRMatrix):
        return {
            "csr": {
                "shape": [int(data.shape[0]), int(data.shape[1])],
                "indptr_b64": base64.b64encode(
                    np.ascontiguousarray(data.indptr, dtype=np.int64).tobytes()
                ).decode("ascii"),
                "indices_b64": base64.b64encode(
                    np.ascontiguousarray(data.indices, dtype=np.int64).tobytes()
                ).decode("ascii"),
                "data_b64": base64.b64encode(
                    np.ascontiguousarray(data.data, dtype=np.float64).tobytes()
                ).decode("ascii"),
            }
        }
    dense = np.ascontiguousarray(np.asarray(data, dtype=np.float64))
    encoded = encode_array(dense)
    return {
        "dense_b64": encoded["data_b64"],
        "dtype": encoded["dtype"],
        "shape": encoded["shape"],
    }


def _decode_b64_field(obj: dict, key: str, dtype: str) -> np.ndarray:
    if key not in obj:
        raise ProtocolError(f"csr payload is missing {key!r}")
    try:
        raw = base64.b64decode(obj[key], validate=True)
    except Exception as exc:
        raise ProtocolError(f"csr field {key!r} is not valid base64: {exc}")
    return np.frombuffer(raw, dtype=dtype).copy()


def decode_matrix(payload: dict[str, Any]) -> object:
    """Decode a request matrix into a dense ndarray or :class:`CSRMatrix`."""
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"instances must be an object, got {type(payload).__name__}"
        )
    if "csr" in payload:
        csr = payload["csr"]
        if not isinstance(csr, dict):
            raise ProtocolError("csr payload must be an object")
        shape = csr.get("shape")
        if not isinstance(shape, (list, tuple)) or len(shape) != 2:
            raise ProtocolError("csr payload needs a 2-element shape")
        indptr = _decode_b64_field(csr, "indptr_b64", "int64")
        indices = _decode_b64_field(csr, "indices_b64", "int64")
        data = _decode_b64_field(csr, "data_b64", "float64")
        m, n = int(shape[0]), int(shape[1])
        if indptr.size != m + 1:
            raise ProtocolError(
                f"csr indptr has {indptr.size} entries, shape {m}x{n} needs {m + 1}"
            )
        if indices.size != data.size:
            raise ProtocolError(
                f"csr indices ({indices.size}) and data ({data.size}) lengths differ"
            )
        try:
            return CSRMatrix(data, indices, indptr, (m, n))
        except SparseFormatError as exc:
            raise ProtocolError(f"csr payload is not canonical CSR: {exc}")
    if "dense_b64" in payload:
        return decode_array(
            {
                "dtype": payload.get("dtype", "float64"),
                "shape": payload.get("shape", []),
                "data_b64": payload["dense_b64"],
            }
        )
    if "rows" in payload:
        rows = payload["rows"]
        if not isinstance(rows, list) or not rows:
            raise ProtocolError("instances.rows must be a non-empty list of rows")
        try:
            dense = np.asarray(rows, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"instances.rows is not numeric: {exc}")
        if dense.ndim == 1:
            dense = dense.reshape(1, -1)
        if dense.ndim != 2:
            raise ProtocolError(
                f"instances.rows must be 2-dimensional, got ndim={dense.ndim}"
            )
        return dense
    raise ProtocolError(
        "instances must carry one of 'rows', 'dense_b64' or 'csr'"
    )


def decode_request(body: bytes) -> dict[str, Any]:
    """Parse and validate one POST body; returns the decoded fields.

    Returns a dict with ``instances`` (decoded matrix) plus the optional
    ``priority`` (int, default 0).  Tenant and kind travel in headers/path
    and are resolved by the app layer.
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request body is not valid JSON: {exc}")
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    if "instances" not in payload:
        raise ProtocolError("request body is missing 'instances'")
    instances = decode_matrix(payload["instances"])
    priority = payload.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ProtocolError(f"priority must be an integer, got {priority!r}")
    return {"instances": instances, "priority": priority}


def response_body(
    *,
    request_id: int,
    kind: str,
    result: np.ndarray,
    tenant: str,
    queue_s: float,
    compute_s: float,
    latency_s: float,
    batch_id: Optional[int],
    batch_requests: int,
) -> bytes:
    """Serialize one 200 response (lossless result + simulated timing)."""
    payload = {
        "request_id": int(request_id),
        "kind": kind,
        "tenant": tenant,
        "result": encode_array(np.asarray(result)),
        "timing": {
            "queue_s": float(queue_s),
            "compute_s": float(compute_s),
            "latency_s": float(latency_s),
        },
        "batch": {
            "id": None if batch_id is None else int(batch_id),
            "n_requests": int(batch_requests),
        },
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def error_body(
    status: int,
    reason: str,
    *,
    detail: str = "",
    tenant: Optional[str] = None,
    retry_after_s: Optional[float] = None,
) -> bytes:
    """Serialize one error response body (status mirrored for log replay)."""
    error: dict[str, Any] = {"status": int(status), "reason": reason}
    if detail:
        error["detail"] = detail
    if tenant is not None:
        error["tenant"] = tenant
    if retry_after_s is not None:
        error["retry_after_s"] = float(retry_after_s)
    return json.dumps({"error": error}, sort_keys=True).encode("utf-8")
