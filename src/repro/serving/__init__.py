"""The serving layer: sealed inference sessions and micro-batched dispatch.

- :class:`InferenceSession` — seals a fitted model (warm SV pool, resident
  norms, stacked sigmoid arrays, one persistent engine) and serves
  repeated predictions with zero per-call setup;
- :class:`MicroBatcher` — coalesces small requests into fused batches
  dispatched through one session call each, with per-request simulated
  queueing/compute latency accounting.

See DESIGN.md §11 for the seal/dispatch lifecycle.
"""

from repro.serving.batcher import BatcherStats, MicroBatcher, ServedRequest
from repro.serving.session import InferenceSession, SessionStats

__all__ = [
    "BatcherStats",
    "InferenceSession",
    "MicroBatcher",
    "ServedRequest",
    "SessionStats",
]
