"""Micro-batching request queue over a sealed :class:`InferenceSession`.

A server taking single-instance requests one at a time pays the full
per-dispatch overhead — kernel launches, sigmoid and coupling passes — for
every instance.  The paper's prediction phase is built for exactly the
opposite regime: one fused batch through the shared test-vs-pool block and
the batched coupling solver.  :class:`MicroBatcher` bridges the two: it
queues incoming requests and coalesces them into fused batches of up to
``max_batch`` rows, waiting at most ``max_wait_s`` of simulated time after
a batch's first request before dispatching.

The queue is FIFO and never reorders responses: a batch closes early when
the next request needs a different computation (labels vs. decision
values) or a different matrix representation (dense vs. CSR).  Each fused
batch runs as *one* session call; the result rows are split back per
request afterwards.  Because every numeric stage underneath is bitwise
independent of batch composition (see :mod:`repro.serving.session`), each
request's rows are bit-for-bit what a one-shot call on that request alone
would return.

Timing is simulated: requests carry an arrival timestamp on the session's
simulated clock axis, the batcher tracks a virtual "now" that advances
through queue waits and batch compute, and each request records its
queueing, compute and total latency.  When the session carries a tracer,
every dispatch emits a ``serve_batch`` span and one ``serve_request``
event per member request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.validation import check_predict_inputs
from repro.exceptions import ValidationError
from repro.serving.session import InferenceSession
from repro.sparse import CSRMatrix
from repro.sparse import ops as mops
from repro.telemetry.tracer import maybe_span

__all__ = [
    "MicroBatcher",
    "ServedRequest",
    "BatcherStats",
    "REQUEST_KINDS",
    "compute_group",
    "fuse_matrices",
]

REQUEST_KINDS = ("predict_proba", "predict", "decision_function")


@dataclass
class ServedRequest:
    """One queued request and, after :meth:`MicroBatcher.drain`, its result."""

    index: int
    kind: str
    data: object = field(repr=False)
    n_rows: int = 0
    arrival_s: float = 0.0
    done: bool = False
    batch_id: Optional[int] = None
    queue_s: float = 0.0
    compute_s: float = 0.0
    latency_s: float = 0.0
    _result: object = field(default=None, repr=False)

    @property
    def result(self) -> np.ndarray:
        """The request's rows (probabilities, labels or decision values)."""
        if not self.done:
            raise ValidationError(
                f"request #{self.index} has not been dispatched yet; call "
                "MicroBatcher.drain() first"
            )
        return self._result


@dataclass
class BatcherStats:
    """Aggregate dispatch statistics across all drained batches."""

    n_batches: int = 0
    n_requests: int = 0
    n_rows: int = 0
    latencies_s: list = field(default_factory=list)

    @property
    def mean_batch_size(self) -> float:
        """Mean requests per fused dispatch."""
        return self.n_requests / self.n_batches if self.n_batches else 0.0

    def latency_percentile(self, q: float) -> float:
        """Simulated per-request latency percentile (q in [0, 100])."""
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), q))


def compute_group(session: InferenceSession, kind: str) -> str:
    """Which fused computation a request needs (requests fuse per group)."""
    if kind == "decision_function":
        return "decision"
    if kind == "predict" and not session.model.probability:
        return "vote"
    return "proba"  # predict_proba, and predict via argmax-probability


def _matrix_group(data: mops.MatrixLike) -> str:
    return "csr" if isinstance(data, CSRMatrix) else "dense"


def fuse_matrices(matrices: list) -> mops.MatrixLike:
    """Vertically stack request matrices (dense or CSR) into one dispatch."""
    if len(matrices) == 1:
        return matrices[0]
    if isinstance(matrices[0], CSRMatrix):
        return CSRMatrix.vstack(matrices)
    return np.vstack(matrices)


# Backwards-compatible private aliases (pre-server internal names).
_compute_group = compute_group
_fuse = fuse_matrices


class MicroBatcher:
    """Coalesces small requests into fused dispatches through one session.

    Parameters
    ----------
    session:
        The sealed :class:`InferenceSession` dispatches run against.
    max_batch:
        Maximum requests fused into one dispatch (>= 1).
    max_wait_s:
        Longest simulated time a batch's first request waits for company
        before the batch dispatches anyway.  0 still fuses requests that
        arrived at the same instant.
    """

    def __init__(
        self,
        session: InferenceSession,
        *,
        max_batch: int = 64,
        max_wait_s: float = 0.0,
    ) -> None:
        if not isinstance(session, InferenceSession):
            raise ValidationError(
                f"MicroBatcher requires an InferenceSession, got "
                f"{type(session).__name__}"
            )
        if int(max_batch) < 1:
            raise ValidationError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0:
            raise ValidationError(f"max_wait_s must be >= 0, got {max_wait_s}")
        self.session = session
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self.stats = BatcherStats()
        self._pending: list[ServedRequest] = []
        self._next_index = 0
        self._next_batch_id = 0
        self._virtual_now = session.simulated_seconds

    # ------------------------------------------------------------------
    # Queueing
    # ------------------------------------------------------------------
    @property
    def n_pending(self) -> int:
        """Requests queued and not yet dispatched."""
        return len(self._pending)

    @property
    def virtual_now_s(self) -> float:
        """The batcher's current position on the simulated time axis."""
        return self._virtual_now

    def submit(
        self,
        X: object,
        *,
        kind: str = "predict_proba",
        arrival_s: Optional[float] = None,
    ) -> ServedRequest:
        """Queue one request; returns its handle (resolved by :meth:`drain`).

        ``arrival_s`` places the request on the simulated time axis
        (default: the batcher's current virtual time).  Arrivals must be
        non-decreasing across submissions — the queue is FIFO.
        """
        if kind not in REQUEST_KINDS:
            raise ValidationError(
                f"kind must be one of {REQUEST_KINDS}, got {kind!r}"
            )
        data = check_predict_inputs(X, self.session.n_features)
        arrival = self._virtual_now if arrival_s is None else float(arrival_s)
        if self._pending and arrival < self._pending[-1].arrival_s:
            raise ValidationError(
                f"arrival_s={arrival} precedes the previous request's "
                f"arrival ({self._pending[-1].arrival_s}); the queue is FIFO"
            )
        request = ServedRequest(
            index=self._next_index,
            kind=kind,
            data=data,
            n_rows=mops.n_rows(data),
            arrival_s=arrival,
        )
        self._next_index += 1
        self._pending.append(request)
        return request

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def drain(self) -> list[ServedRequest]:
        """Dispatch every pending request; returns them in submission order.

        Batches form FIFO: starting from the oldest pending request, later
        requests join while they share its computation and representation,
        the batch is below ``max_batch``, and they arrived within
        ``max_wait_s`` of the batch's first request.  A full batch
        dispatches at its last member's arrival; a window-limited batch at
        window close; the final flush dispatches as soon as its members
        have all arrived.
        """
        queue = self._pending
        self._pending = []
        drained: list[ServedRequest] = []
        i = 0
        while i < len(queue):
            head = queue[i]
            group = (
                _compute_group(self.session, head.kind),
                _matrix_group(head.data),
            )
            window_end = head.arrival_s + self.max_wait_s
            batch = [head]
            j = i + 1
            while j < len(queue) and len(batch) < self.max_batch:
                nxt = queue[j]
                if (
                    _compute_group(self.session, nxt.kind),
                    _matrix_group(nxt.data),
                ) != group or nxt.arrival_s > window_end:
                    break
                batch.append(nxt)
                j += 1
            full = len(batch) == self.max_batch
            more_waiting = j < len(queue)
            last_arrival = batch[-1].arrival_s
            close_s = window_end if (more_waiting and not full) else last_arrival
            self._dispatch(batch, group[0], max(close_s, last_arrival))
            drained.extend(batch)
            i = j
        return drained

    def _dispatch(
        self, batch: list[ServedRequest], compute_group: str, close_s: float
    ) -> None:
        session = self.session
        engine = session.engine
        dispatch_s = max(self._virtual_now, close_s)
        fused = _fuse([request.data for request in batch])
        n_rows = mops.n_rows(fused)
        batch_id = self._next_batch_id
        self._next_batch_id += 1

        sim_before = engine.clock.elapsed_s
        tracer = session.config.tracer
        with maybe_span(
            tracer,
            "serve_batch",
            clock=engine.clock,
            batch_id=batch_id,
            compute=compute_group,
            n_requests=len(batch),
            n_rows=n_rows,
            dispatch_s=dispatch_s,
        ) as span:
            if compute_group == "proba":
                fused_proba = session.predict_proba(fused)
                fused_rows = fused_proba
            elif compute_group == "decision":
                fused_rows = session.decision_function(fused)
            else:  # "vote": labels of a non-probabilistic model
                fused_rows = session.predict(fused)
            compute_s = engine.clock.elapsed_s - sim_before
            span.set(compute_s=compute_s)
        completion_s = dispatch_s + compute_s

        start = 0
        for request in batch:
            stop = start + request.n_rows
            rows = fused_rows[start:stop]
            if compute_group == "proba" and request.kind == "predict":
                rows = session.model.labels_from_positions(
                    np.argmax(rows, axis=1)
                )
            request._result = rows
            request.batch_id = batch_id
            request.queue_s = dispatch_s - request.arrival_s
            request.compute_s = compute_s
            request.latency_s = completion_s - request.arrival_s
            request.done = True
            start = stop
            if tracer is not None:
                tracer.event(
                    "serve_request",
                    clock=engine.clock,
                    index=request.index,
                    kind=request.kind,
                    batch_id=batch_id,
                    n_rows=request.n_rows,
                    queue_s=request.queue_s,
                    compute_s=request.compute_s,
                    latency_s=request.latency_s,
                )
            self.stats.latencies_s.append(request.latency_s)
        self.stats.n_batches += 1
        self.stats.n_requests += len(batch)
        self.stats.n_rows += n_rows
        self._virtual_now = completion_s
