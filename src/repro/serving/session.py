"""Sealed inference sessions: warm-state prediction with zero per-call setup.

Every one-shot :func:`~repro.core.predictor.predict_proba_model` call
re-derives the prediction state from scratch — a fresh engine, the pool
norms, the stacked sigmoid arrays — before it touches the first test
instance.  That is fine for a single evaluation pass and wasteful for a
server answering millions of small requests (the ROADMAP north star, and
the same amortise-the-preparation argument Glasmachers makes for the
training side).

:class:`InferenceSession` *seals* a fitted
:class:`~repro.model.multiclass.MPSVMModel` once:

- the unified support-vector pool is shipped to the (simulated) device and
  a pool-side :class:`~repro.kernels.rows.KernelRowComputer` is built with
  its row norms resident;
- the stacked ``(A, B)`` sigmoid arrays and pair-position indices are
  materialized (:meth:`MPSVMModel.warm`);
- one persistent engine/telemetry context carries the whole session, so
  simulated time accumulates across calls like a real resident server
  process;
- optionally, a small LRU cache keeps recent test-vs-pool kernel tiles
  resident so repeated identical requests skip the kernel computation
  entirely.

Every serve call then runs only the per-request math, through exactly the
same numeric tail as the one-shot path
(:func:`~repro.core.predictor.probabilities_from_decisions`), which —
together with the fixed-shape tiled products underneath
(``repro.sparse.ops.MATMUL_TILE_ROWS``) — keeps session outputs bitwise
identical to one-shot predictions, batch composition notwithstanding.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.predictor import (
    PredictorConfig,
    batch_budget_rows,
    probabilities_from_decisions,
)
from repro.core.validation import check_predict_inputs
from repro.exceptions import NotFittedError, ValidationError
from repro.gpusim.device import scaled_tesla_p100
from repro.kernels.rows import KernelRowComputer
from repro.model.multiclass import MPSVMModel
from repro.multiclass.ova import ova_positions
from repro.multiclass.voting import ovo_vote
from repro.sparse import CSRMatrix
from repro.sparse import ops as mops
from repro.telemetry.tracer import maybe_span

__all__ = ["InferenceSession", "SessionStats"]


@dataclass
class SessionStats:
    """Running totals of one session's serving activity."""

    n_calls: int = 0
    n_rows: int = 0
    tile_hits: int = 0
    tile_misses: int = 0
    seal_simulated_s: float = 0.0
    serve_simulated_s: float = 0.0
    per_call_simulated_s: list = field(default_factory=list)

    @property
    def tile_hit_rate(self) -> float:
        """Fraction of kernel-tile lookups served from the resident cache."""
        total = self.tile_hits + self.tile_misses
        return self.tile_hits / total if total else 0.0


def _tile_key(data: mops.MatrixLike) -> bytes:
    """Content digest of a test tile (dense or CSR), for the tile cache."""
    digest = hashlib.blake2b(digest_size=16)
    if isinstance(data, CSRMatrix):
        digest.update(b"csr")
        digest.update(np.int64(data.shape[1]).tobytes())
        digest.update(np.ascontiguousarray(data.indptr).tobytes())
        digest.update(np.ascontiguousarray(data.indices).tobytes())
        digest.update(np.ascontiguousarray(data.data).tobytes())
    else:
        dense = np.asarray(data)
        digest.update(b"dense")
        digest.update(str(dense.dtype).encode())
        digest.update(np.int64(dense.shape[1]).tobytes())
        digest.update(np.ascontiguousarray(dense).tobytes())
    return digest.digest()


class InferenceSession:
    """A fitted model sealed for repeated low-latency serving.

    Parameters
    ----------
    model:
        The fitted :class:`MPSVMModel` to serve.
    config:
        Prediction-side configuration (device, SV sharing, coupling
        method, batch size, tracer).  Defaults to the paper's scaled
        Tesla P100 with sharing on.
    tile_cache_entries:
        Capacity (in tiles) of the resident test-kernel tile cache; 0
        (default) disables it.  A *tile* is one request chunk's full
        test-vs-pool kernel block, keyed by the chunk's content, so only
        repeated identical requests hit.  Hits return bitwise-identical
        blocks while skipping the kernel computation and its simulated
        cost.

    Results from :meth:`predict`, :meth:`predict_proba` and
    :meth:`decision_function` are bitwise-equal to the one-shot
    ``predict_*_model`` functions on the same inputs.
    """

    def __init__(
        self,
        model: MPSVMModel,
        config: Optional[PredictorConfig] = None,
        *,
        tile_cache_entries: int = 0,
    ) -> None:
        if not isinstance(model, MPSVMModel):
            raise NotFittedError(
                "InferenceSession seals a fitted MPSVMModel; got "
                f"{type(model).__name__} (fit an estimator and pass its "
                "model_, or use InferenceSession.from_estimator)"
            )
        if tile_cache_entries < 0:
            raise ValidationError(
                f"tile_cache_entries must be >= 0, got {tile_cache_entries}"
            )
        self.model = model.warm()
        self.config = (
            config
            if config is not None
            else PredictorConfig(device=scaled_tesla_p100())
        )
        self._engine = self.config.make_engine()
        self._tracer = self.config.tracer
        self.stats = SessionStats()
        self._tile_cache: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
        self._tile_cache_entries = int(tile_cache_entries)

        with maybe_span(
            self._tracer,
            "serve_seal",
            clock=self._engine.clock,
            n_pool=model.sv_pool.n_pool,
            n_classes=model.n_classes,
        ) as span:
            # Ship the deduplicated pool to the device once, for the whole
            # session — the one-shot path implicitly assumes a resident
            # model and never pays this; a server pays it exactly once.
            self._engine.transfer(model.sv_pool.pool_nbytes, category="transfer")
            self._computer = KernelRowComputer(
                self._engine,
                model.kernel,
                model.sv_pool.pool_data,
                category="decision_values",
            )
            self._computer.norms()  # pool norms resident from now on
            span.set(simulated_seconds=self._engine.clock.elapsed_s)
        self._budget_rows = batch_budget_rows(self.config, model)
        self.stats.seal_simulated_s = self._engine.clock.elapsed_s

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_estimator(
        cls, estimator: object, *, tile_cache_entries: int = 0
    ) -> "InferenceSession":
        """Seal a fitted estimator (e.g. :class:`~repro.GMPSVC`).

        Reuses the estimator's own prediction configuration (device, SV
        sharing, coupling method, tracer).
        """
        model = getattr(estimator, "model_", None)
        if model is None:
            raise NotFittedError(
                f"{type(estimator).__name__} is not fitted yet; call fit() "
                "before sealing an InferenceSession"
            )
        config = estimator._predictor_config()
        config.tracer = getattr(estimator, "tracer", None)
        return cls(model, config, tile_cache_entries=tile_cache_entries)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def engine(self):
        """The session's persistent simulated-device engine."""
        return self._engine

    @property
    def n_features(self) -> int:
        """Feature count requests must match."""
        return self.model.n_features

    @property
    def simulated_seconds(self) -> float:
        """Total simulated device seconds accumulated by this session."""
        return self._engine.clock.elapsed_s

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def predict_proba(self, X: object) -> np.ndarray:
        """Multi-class probabilities, shape ``(m, n_classes)``."""
        data = check_predict_inputs(X, self.n_features)
        if not self.model.probability:
            raise NotFittedError(
                "model was trained without probability output; refit with "
                "probability=True"
            )
        return self._serve_proba(data)

    def predict(self, X: object) -> np.ndarray:
        """Predicted class labels (argmax probability when available)."""
        data = check_predict_inputs(X, self.n_features)
        if self.model.probability:
            probabilities = self._serve_proba(data)
            positions = np.argmax(probabilities, axis=1)
            return self.model.labels_from_positions(positions)
        decisions = self._serve_decisions(data, name="serve_labels")
        if self.model.strategy == "ova":
            positions = ova_positions(decisions)
        else:
            positions = ovo_vote(decisions, self.model.pairs, self.model.n_classes)
        return self.model.labels_from_positions(positions)

    def decision_function(self, X: object) -> np.ndarray:
        """Raw per-SVM decision values, shape ``(m, n_svms)``."""
        data = check_predict_inputs(X, self.n_features)
        return self._serve_decisions(
            data, name="serve_decisions", transfer=False
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _serve_proba(self, data: mops.MatrixLike) -> np.ndarray:
        engine = self._engine
        sim_start = engine.clock.elapsed_s
        engine.transfer(mops.matrix_nbytes(data), category="transfer")
        m = mops.n_rows(data)
        probabilities = np.empty((m, self.model.n_classes))
        batch = (
            self._budget_rows
            if self.config.batch_size is not None
            else max(1, min(m, self._budget_rows))
        )
        with maybe_span(
            self._tracer,
            "serve_proba",
            clock=engine.clock,
            n_instances=m,
            batch_size=batch,
        ) as span:
            for start in range(0, m, batch):
                stop = min(start + batch, m)
                chunk = (
                    data
                    if start == 0 and stop == m
                    else mops.take_rows(data, np.arange(start, stop, dtype=np.int64))
                )
                decisions = self._chunk_decisions(chunk)
                probabilities[start:stop] = probabilities_from_decisions(
                    engine,
                    self.model,
                    decisions,
                    coupling_method=self.config.coupling_method,
                )
            span.set(simulated_seconds=engine.clock.elapsed_s - sim_start)
        self._note_call(m, engine.clock.elapsed_s - sim_start)
        return probabilities

    def _serve_decisions(
        self, data: mops.MatrixLike, *, name: str, transfer: bool = True
    ) -> np.ndarray:
        engine = self._engine
        sim_start = engine.clock.elapsed_s
        if transfer:
            engine.transfer(mops.matrix_nbytes(data), category="transfer")
        with maybe_span(
            self._tracer,
            name,
            clock=engine.clock,
            n_instances=mops.n_rows(data),
        ) as span:
            decisions = self._chunk_decisions(data)
            span.set(simulated_seconds=engine.clock.elapsed_s - sim_start)
        self._note_call(mops.n_rows(data), engine.clock.elapsed_s - sim_start)
        return decisions

    def _chunk_decisions(self, chunk: mops.MatrixLike) -> np.ndarray:
        """Decision values for one chunk, through the warm pool computer.

        With the tile cache enabled (and SV sharing on), the full
        test-vs-pool kernel block is looked up by the chunk's content
        digest first; hits skip the kernel computation entirely and charge
        nothing — the block is already resident.
        """
        pool = self.model.sv_pool
        if self.config.sv_sharing and self._tile_cache_entries:
            key = _tile_key(chunk)
            block = self._tile_cache.get(key)
            if block is not None:
                self._tile_cache.move_to_end(key)
                self.stats.tile_hits += 1
            else:
                self.stats.tile_misses += 1
                block = self._computer.block(chunk, category="decision_values")
                self._tile_cache[key] = block
                while len(self._tile_cache) > self._tile_cache_entries:
                    self._tile_cache.popitem(last=False)
            return pool.decision_values_from_block(
                self._engine, block, category="decision_values"
            )
        return pool.decision_values(
            self._engine,
            self.model.kernel,
            chunk,
            shared=self.config.sv_sharing,
            category="decision_values",
            computer=self._computer,
        )

    def _note_call(self, n_rows: int, simulated_s: float) -> None:
        self.stats.n_calls += 1
        self.stats.n_rows += int(n_rows)
        self.stats.serve_simulated_s += simulated_s
        self.stats.per_call_simulated_s.append(simulated_s)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InferenceSession(n_classes={self.model.n_classes}, "
            f"n_pool={self.model.sv_pool.n_pool}, "
            f"calls={self.stats.n_calls})"
        )
