"""SVM training solvers.

- :mod:`repro.solvers.smo` — the classic Sequential Minimal Optimization
  solver with second-order working-set selection (Section 2.1.1 /
  Algorithm 1); used by the LibSVM baseline and the GPU baseline.
- :mod:`repro.solvers.batch_smo` — the paper's batched working-set solver
  (Section 3.3.1): q new violators per round, batched kernel-row
  computation, FIFO GPU buffer reuse, and delta-adaptive early termination
  of the inner subproblem.
"""

from repro.solvers.base import (
    SolverResult,
    bias_from_f,
    dual_objective,
    lower_mask,
    optimality_gap,
    upper_mask,
)
from repro.solvers.batch_smo import BatchSMOSolver
from repro.solvers.shrinking import ShrinkingSMOSolver
from repro.solvers.smo import ClassicSMOSolver
from repro.solvers.subproblem import solve_subproblem
from repro.solvers.working_set import select_new_violators

__all__ = [
    "BatchSMOSolver",
    "ClassicSMOSolver",
    "ShrinkingSMOSolver",
    "SolverResult",
    "bias_from_f",
    "dual_objective",
    "lower_mask",
    "optimality_gap",
    "select_new_violators",
    "solve_subproblem",
    "upper_mask",
]
