"""SVM training solvers.

- :mod:`repro.solvers.smo` — the classic Sequential Minimal Optimization
  solver with second-order working-set selection (Section 2.1.1 /
  Algorithm 1); used by the LibSVM baseline and the GPU baseline.
- :mod:`repro.solvers.batch_smo` — the paper's batched working-set solver
  (Section 3.3.1): q new violators per round, batched kernel-row
  computation, FIFO GPU buffer reuse, and delta-adaptive early termination
  of the inner subproblem.
- :mod:`repro.solvers.warm_start` — reconstruction of ``(alpha, f)``
  from a previously trained model so incremental retraining (new data,
  changed C/gamma) starts next to the old optimum instead of from zero.
"""

from repro.solvers.base import (
    SolverResult,
    bias_from_f,
    dual_objective,
    lower_mask,
    optimality_gap,
    upper_mask,
)
from repro.solvers.batch_smo import BatchSMOSolver
from repro.solvers.shrinking import ShrinkingSMOSolver
from repro.solvers.smo import ClassicSMOSolver
from repro.solvers.subproblem import solve_subproblem
from repro.solvers.warm_start import (
    map_prior_alphas,
    reconstruct_gradient,
    rescale_into_box,
    warm_start_pair_state,
)
from repro.solvers.working_set import select_new_violators

__all__ = [
    "BatchSMOSolver",
    "ClassicSMOSolver",
    "ShrinkingSMOSolver",
    "SolverResult",
    "bias_from_f",
    "dual_objective",
    "lower_mask",
    "map_prior_alphas",
    "optimality_gap",
    "reconstruct_gradient",
    "rescale_into_box",
    "select_new_violators",
    "solve_subproblem",
    "upper_mask",
    "warm_start_pair_state",
]
