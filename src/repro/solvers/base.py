"""Shared state, invariants and result types for the SMO-family solvers.

Conventions (Section 2.1.1 of the paper, matching LibSVM):

- Labels are strictly ``+1`` / ``-1``.
- The optimality indicator is ``f_i = sum_j alpha_j y_j K(x_i, x_j) - y_i``
  (Eq. 3), initialised to ``-y_i`` at ``alpha = 0``.  It equals
  ``y_i * G_i`` for LibSVM's gradient ``G``.
- ``I_up``  (the paper's ``I_u``): instances whose ``y_i alpha_i`` can
  increase — free SVs plus ``{y=+1, alpha=0}`` plus ``{y=-1, alpha=C}``.
- ``I_low`` (the paper's ``I_l``): instances whose ``y_i alpha_i`` can
  decrease — free SVs plus ``{y=+1, alpha=C}`` plus ``{y=-1, alpha=0}``.
- Optimality: ``max_{I_low} f - min_{I_up} f <= eps`` (Eqs. 9/10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "SolverResult",
    "upper_mask",
    "lower_mask",
    "optimality_gap",
    "bias_from_f",
    "dual_objective",
    "validate_binary_problem",
    "resolve_penalty_vector",
    "TAU",
]

# Guard for non-positive curvature eta, as in LibSVM's TAU.
TAU = 1e-12


def validate_binary_problem(
    y: np.ndarray, penalty: float, *, allow_single_class: bool = False
) -> np.ndarray:
    """Check labels/penalty for a binary problem; returns float64 labels.

    ``allow_single_class`` admits all-(+1) problems — the one-class SVM
    dual, whose equality constraint degenerates to ``sum(alpha) = const``.
    """
    labels = np.asarray(y, dtype=np.float64).ravel()
    if labels.size < 2:
        raise ValidationError("need at least two training instances")
    unique = np.unique(labels)
    if not np.all(np.isin(unique, (-1.0, 1.0))):
        raise ValidationError(f"labels must be +1/-1, got values {unique[:10]}")
    if unique.size < 2 and not allow_single_class:
        raise ValidationError("training data contains a single class")
    if penalty <= 0:
        raise ValidationError(f"penalty C must be positive, got {penalty}")
    return labels


def resolve_penalty_vector(
    penalty: float, n: int, penalty_vector: "np.ndarray | None"
) -> np.ndarray:
    """Per-instance box bounds: a constant C, or class-weighted C_i.

    LibSVM's ``-wi`` option scales C per class; the solvers only ever see
    the resulting per-instance vector (all masks and clipping broadcast
    over it, so the unweighted case is the constant vector).
    """
    if penalty_vector is None:
        return np.full(n, float(penalty))
    vec = np.asarray(penalty_vector, dtype=np.float64).ravel()
    if vec.shape != (n,):
        raise ValidationError(f"penalty vector shape {vec.shape} != ({n},)")
    if np.any(vec <= 0):
        raise ValidationError("per-instance penalties must be positive")
    return vec


def upper_mask(y: np.ndarray, alpha: np.ndarray, penalty) -> np.ndarray:
    """Membership mask of ``I_up`` (y_i alpha_i can increase)."""
    return ((y > 0) & (alpha < penalty)) | ((y < 0) & (alpha > 0))


def lower_mask(y: np.ndarray, alpha: np.ndarray, penalty) -> np.ndarray:
    """Membership mask of ``I_low`` (y_i alpha_i can decrease)."""
    return ((y > 0) & (alpha > 0)) | ((y < 0) & (alpha < penalty))


def optimality_gap(
    f: np.ndarray, y: np.ndarray, alpha: np.ndarray, penalty
) -> float:
    """``max_{I_low} f - min_{I_up} f``; <= 0 means optimal already."""
    up = upper_mask(y, alpha, penalty)
    low = lower_mask(y, alpha, penalty)
    if not up.any() or not low.any():
        return 0.0
    return float(f[low].max() - f[up].min())


def bias_from_f(
    f: np.ndarray, y: np.ndarray, alpha: np.ndarray, penalty
) -> float:
    """Hyperplane bias from the converged indicators.

    At optimality ``-f_i`` equals the bias at every free support vector;
    with tolerance, LibSVM averages the two bound estimates:
    ``b = -(min_{I_up} f + max_{I_low} f) / 2``.
    """
    up = upper_mask(y, alpha, penalty)
    low = lower_mask(y, alpha, penalty)
    if not up.any() or not low.any():
        return 0.0
    return float(-(f[up].min() + f[low].max()) / 2.0)


def dual_objective(alpha: np.ndarray, y: np.ndarray, f: np.ndarray) -> float:
    """Dual objective value from the maintained indicators.

    Using ``sum_j alpha_j y_j K_ij = f_i + y_i`` (Eq. 3):
    ``obj = sum(alpha) - 0.5 * sum_i alpha_i y_i (f_i + y_i)``.
    """
    return float(alpha.sum() - 0.5 * np.dot(alpha * y, f + y))


@dataclass
class SolverResult:
    """Outcome of one binary SVM training run."""

    alpha: np.ndarray
    bias: float
    converged: bool
    iterations: int
    rounds: int = 0
    objective: float = 0.0
    final_gap: float = float("inf")
    kernel_rows_computed: int = 0
    buffer_hit_rate: float = 0.0
    diagnostics: dict = field(default_factory=dict)
    f: Optional[np.ndarray] = None
    # Per-round solver telemetry (delta trajectory, violator counts, buffer
    # activity); populated only when the solver was asked to record it.
    round_trace: Optional[list[dict]] = None

    @property
    def support_indices(self) -> np.ndarray:
        """Indices (into the binary problem) with non-zero weight."""
        return np.flatnonzero(self.alpha > 0)

    @property
    def n_support(self) -> int:
        """Number of support vectors found."""
        return int(np.count_nonzero(self.alpha > 0))
