"""The GMP-SVM batched working-set solver (Section 3.3.1, Algorithm 2).

Per outer round:

1. check global optimality (Eq. 9) and measure ``delta = f_l - f_u``;
2. sort the optimality indicators and select ``q`` new maximally-violating
   instances (q/2 whose ``y alpha`` can rise, q/2 that can fall);
3. refresh the working set FIFO-style — the q oldest members leave, the
   q new violators join ("q instances in the working set will be replaced
   with q new violating instances");
4. fetch the working set's kernel rows through the GPU buffer — missing
   rows are computed as *one* batched product (this is where the >10x
   per-row saving of batching comes from) and inserted with FIFO batch
   replacement;
5. run inner SMO on the working set with a delta-adaptive iteration budget
   (early termination avoids local optimisation on the working set);
6. apply one batched Eq.-8 update of all n indicators using the buffered
   rows of the instances whose weights changed.

The solver produces the same optimum as classic SMO (both satisfy Eq. 9 at
the same epsilon); it simply gets there with far fewer, far larger device
operations.

The round loop is exposed as a *resumable stepper*
(:class:`BatchSMOSession`): :meth:`BatchSMOSolver.start` creates a session
whose :meth:`~BatchSMOSession.begin_round` performs the pre-fetch half of a
round (optimality check, violator selection, working-set refresh) and
returns the round's kernel-row demand, and whose
:meth:`~BatchSMOSession.complete_round` consumes the rows and runs the
inner solve plus the Eq.-8 update.  :meth:`BatchSMOSolver.solve` is a thin
loop over the stepper, so the monolithic and stepped paths share one code
path and cannot diverge.  The interleaved concurrent trainer
(:mod:`repro.core.interleave`) steps many sessions in lockstep waves and
fuses their kernel-row demands into shared batched launches.
"""

from __future__ import annotations

import warnings
from typing import Callable, Optional

import numpy as np

from repro.exceptions import ConvergenceWarning, ValidationError
from repro.kernels.cache import KernelBuffer
from repro.kernels.rows import KernelRowComputer
from repro.solvers.base import (
    SolverResult,
    bias_from_f,
    dual_objective,
    lower_mask,
    optimality_gap,
    resolve_penalty_vector,
    upper_mask,
    validate_binary_problem,
)
from repro.solvers.subproblem import inner_iteration_budget, solve_subproblem
from repro.solvers.working_set import select_new_violators
from repro.telemetry.tracer import Tracer, maybe_span

__all__ = ["BatchSMOSolver", "BatchSMOSession", "RoundRequest"]


class RoundRequest:
    """One round's kernel-row demand, produced by ``begin_round``.

    ``ws_idx`` is the refreshed working set (local indices); ``missing``
    is the subset whose kernel rows are not resident in the session's
    buffer (a probe — no hit/miss statistics are charged until the rows
    are actually fetched in ``complete_round``).  ``delta`` is the global
    KKT violation ``f_l - f_u`` measured at the top of the round.
    """

    __slots__ = ("ws_idx", "missing", "delta")

    def __init__(self, ws_idx: np.ndarray, missing: np.ndarray, delta: float) -> None:
        self.ws_idx = ws_idx
        self.missing = missing
        self.delta = float(delta)


class BatchSMOSolver:
    """Batched working-set SMO with a device-resident kernel buffer."""

    def __init__(
        self,
        *,
        penalty: float,
        epsilon: float = 1e-3,
        working_set_size: int = 256,
        new_per_round: Optional[int] = None,
        buffer_rows: Optional[int] = None,
        buffer_policy: str = "fifo",
        inner_rule: str = "adaptive",
        max_rounds: Optional[int] = None,
        category_prefix: str = "",
        register_buffer_memory: bool = True,
        tracer: Optional[Tracer] = None,
        record_rounds: bool = False,
    ) -> None:
        if epsilon <= 0:
            raise ValidationError(f"epsilon must be positive, got {epsilon}")
        if working_set_size < 2:
            raise ValidationError("working_set_size must be >= 2")
        self.penalty = float(penalty)
        self.epsilon = float(epsilon)
        self.working_set_size = int(working_set_size)
        self.new_per_round = new_per_round
        self.buffer_rows = buffer_rows
        self.buffer_policy = buffer_policy
        self.inner_rule = inner_rule
        self.max_rounds = max_rounds
        self.register_buffer_memory = register_buffer_memory
        self.tracer = tracer
        self.record_rounds = record_rounds
        self._category_prefix = category_prefix

    def _cat(self, name: str) -> str:
        """Clock category for ``name`` under this solver's prefix."""
        return f"{self._category_prefix}{name}"

    def start(
        self,
        rows: KernelRowComputer,
        y: np.ndarray,
        *,
        penalty_vector: Optional[np.ndarray] = None,
        initial_f: Optional[np.ndarray] = None,
        initial_alpha: Optional[np.ndarray] = None,
        allow_single_class: bool = False,
    ) -> "BatchSMOSession":
        """Open a resumable training session on the problem ``rows`` serves.

        The caller drives rounds via :meth:`BatchSMOSession.begin_round` /
        :meth:`BatchSMOSession.complete_round` and collects the final
        :class:`~repro.solvers.base.SolverResult` from
        :meth:`BatchSMOSession.finish`.
        """
        return BatchSMOSession(
            self,
            rows,
            y,
            penalty_vector=penalty_vector,
            initial_f=initial_f,
            initial_alpha=initial_alpha,
            allow_single_class=allow_single_class,
        )

    def solve(
        self,
        rows: KernelRowComputer,
        y: np.ndarray,
        *,
        penalty_vector: Optional[np.ndarray] = None,
        initial_f: Optional[np.ndarray] = None,
        initial_alpha: Optional[np.ndarray] = None,
        allow_single_class: bool = False,
    ) -> SolverResult:
        """Train one binary SVM on the problem served by ``rows``.

        ``penalty_vector`` optionally gives per-instance box bounds
        (class-weighted C, LibSVM's ``-wi``).  ``initial_f`` replaces the
        classification default ``-y`` — it encodes the dual's linear term
        (``f_i = y_i p_i`` at ``alpha = 0``), which is how epsilon-SVR and
        the one-class SVM reuse this solver; with ``initial_alpha`` it must
        be consistent with those weights (Eq. 3).
        """
        session = self.start(
            rows,
            y,
            penalty_vector=penalty_vector,
            initial_f=initial_f,
            initial_alpha=initial_alpha,
            allow_single_class=allow_single_class,
        )
        try:
            while session.begin_round() is not None:
                session.complete_round()
            return session.finish()
        finally:
            session.close()


class BatchSMOSession:
    """Resumable per-round state of one batched-SMO training run.

    A session splits every outer round into two halves so a concurrent
    driver can interleave many solvers:

    - :meth:`begin_round` — the selection half: optimality check,
      violator selection and working-set refresh.  Returns the round's
      :class:`RoundRequest` (including which kernel rows are missing from
      the buffer), or ``None`` once the run has terminated.
    - :meth:`complete_round` — the consumption half: fetch the rows
      (optionally through a caller-supplied loader, e.g. one backed by a
      wave-fused batched launch), solve the working-set subproblem and
      apply the batched Eq.-8 indicator update.

    Stepping a session produces *bitwise-identical* iterates to the
    monolithic :meth:`BatchSMOSolver.solve`, which is itself implemented
    as a loop over a session.
    """

    def __init__(
        self,
        solver: BatchSMOSolver,
        rows: KernelRowComputer,
        y: np.ndarray,
        *,
        penalty_vector: Optional[np.ndarray] = None,
        initial_f: Optional[np.ndarray] = None,
        initial_alpha: Optional[np.ndarray] = None,
        allow_single_class: bool = False,
    ) -> None:
        self.solver = solver
        self.rows = rows
        labels = validate_binary_problem(
            y, solver.penalty, allow_single_class=allow_single_class
        )
        n = rows.n
        if labels.size != n:
            raise ValidationError(f"{labels.size} labels for {n} instances")
        self.labels = labels
        self.n = n
        self.engine = rows.engine
        self.penalty = resolve_penalty_vector(solver.penalty, n, penalty_vector)

        # Buffer geometry: the paper's buffer stores "m x q rows of the
        # kernel matrix (i.e., allow m batches to be stored)"; the default
        # keeps m = 2 — the current working set plus the previous batch.
        # The working set can never exceed the buffer (Figure 6: "changing
        # the GPU buffer size is effectively varying the working set").
        buffer_rows = (
            solver.buffer_rows if solver.buffer_rows else 2 * solver.working_set_size
        )
        ws_size = min(solver.working_set_size, buffer_rows, n)
        ws_size = max(2, ws_size - ws_size % 2)
        self.ws_size = ws_size
        q = solver.new_per_round if solver.new_per_round else max(2, ws_size // 2)
        q = max(2, min(q, ws_size))
        q -= q % 2
        self.q = q
        self.max_rounds = (
            solver.max_rounds
            if solver.max_rounds is not None
            else max(2_000, (40 * n) // q)
        )

        if initial_alpha is None:
            self.alpha = np.zeros(n)
        else:
            self.alpha = np.asarray(initial_alpha, dtype=np.float64).copy()
            if self.alpha.shape != (n,):
                raise ValidationError(
                    f"initial_alpha shape {self.alpha.shape} != ({n},)"
                )
        if initial_f is None:
            self.f = -labels.copy()
        else:
            self.f = np.asarray(initial_f, dtype=np.float64).copy()
            if self.f.shape != (n,):
                raise ValidationError(f"initial_f shape {self.f.shape} != ({n},)")
        self.diagonal = rows.diagonal()
        self.inner_total = 0
        self.rounds = 0
        self.converged = False
        self._stalled = 0
        self._ws_order: list[int] = []  # FIFO of working-set membership

        self.buffer = KernelBuffer(
            buffer_rows,
            n,
            policy=solver.buffer_policy,
            allocator=self.engine.allocator if solver.register_buffer_memory else None,
            tag="kernel-buffer",
            tracer=solver.tracer,
        )
        # Per-round telemetry is opt-in: with no tracer and record_rounds
        # False the hot loop takes a single falsy check per round.
        self.round_trace: Optional[list[dict]] = (
            [] if (solver.record_rounds or solver.tracer is not None) else None
        )
        # Entered manually; close() (idempotent, called by finish and by
        # solve's finally) exits it even on exceptions.
        self._solve_span = maybe_span(
            solver.tracer,
            "solver.batch_smo",
            clock=self.engine.clock,
            n=n,
            working_set_size=ws_size,
            new_per_round=q,
        ).__enter__()
        self._pending: Optional[RoundRequest] = None
        self._pending_retained: Optional[np.ndarray] = None
        self._pending_new: Optional[np.ndarray] = None
        self._finished = False
        self._closed = False
        self._result: Optional[SolverResult] = None

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """Whether the run has terminated (no further rounds will occur)."""
        return self._finished

    # ------------------------------------------------------------------
    # Snapshot / restore (checkpointable state, see repro.faults)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """The session's complete resumable state at a round boundary.

        The returned mapping — alpha, f, round counters, working-set
        FIFO, stall count and termination flags — fully determines every
        future iterate: kernel values are pure functions of the data
        rows, so a session restored from this state replays bitwise the
        rounds this one would have run.  The kernel buffer is deliberately
        excluded; an empty buffer after restore only changes *which* rows
        are recomputed (statistics), never their values.
        """
        if self._pending is not None:
            raise ValidationError(
                "cannot snapshot a session with a round in flight"
            )
        return {
            "alpha": self.alpha.copy(),
            "f": self.f.copy(),
            "rounds": int(self.rounds),
            "inner_total": int(self.inner_total),
            "ws_order": list(self._ws_order),
            "stalled": int(self._stalled),
            "converged": bool(self.converged),
            "finished": bool(self._finished),
        }

    def restore_state(self, state: dict) -> None:
        """Overwrite this (fresh) session's state with a snapshot's.

        The session must serve the same problem the snapshot came from
        (same instance count) and must not have a round in flight or a
        finalized result.
        """
        if self._pending is not None:
            raise ValidationError(
                "cannot restore into a session with a round in flight"
            )
        if self._result is not None:
            raise ValidationError("cannot restore into a finished session")
        alpha = np.asarray(state["alpha"], dtype=np.float64)
        f = np.asarray(state["f"], dtype=np.float64)
        if alpha.shape != (self.n,) or f.shape != (self.n,):
            raise ValidationError(
                f"snapshot arrays of shape {alpha.shape}/{f.shape} do not "
                f"fit a {self.n}-instance problem"
            )
        self.alpha = alpha.copy()
        self.f = f.copy()
        self.rounds = int(state["rounds"])
        self.inner_total = int(state["inner_total"])
        self._ws_order = [int(i) for i in state["ws_order"]]
        self._stalled = int(state["stalled"])
        self.converged = bool(state["converged"])
        self._finished = bool(state["finished"])

    def begin_round(self) -> Optional[RoundRequest]:
        """Run the selection half of the next round.

        Returns the round's :class:`RoundRequest`, or ``None`` once the
        run has terminated (convergence, stall, no violators, or the
        round cap).  ``None`` also marks the session finished — call
        :meth:`finish` to collect the result.
        """
        if self._finished:
            return None
        if self._pending is not None:
            raise ValidationError("begin_round called with a round in flight")
        solver = self.solver
        engine = self.engine
        labels, alpha, f, penalty = self.labels, self.alpha, self.f, self.penalty
        n = self.n
        while True:
            if self.rounds >= self.max_rounds:
                self._finished = True
                return None
            up = upper_mask(labels, alpha, penalty)
            low = lower_mask(labels, alpha, penalty)
            engine.elementwise(
                solver._cat("selection"), n, flops_per_element=4, arrays_read=2,
                memory="cached",
            )
            _, f_up = engine.reduce_extremum(
                f, up, mode="min", category=solver._cat("selection")
            )
            _, f_low = engine.reduce_extremum(
                f, low, mode="max", category=solver._cat("selection")
            )
            if not np.isfinite(f_up) or not np.isfinite(f_low):
                self.converged = True
                self._finished = True
                return None
            delta = f_low - f_up
            if delta <= solver.epsilon:
                self.converged = True
                self._finished = True
                return None

            retained = np.asarray(
                self._ws_order[-(self.ws_size - self.q):], dtype=np.int64
            )
            wanted = self.q if retained.size else self.ws_size
            new = select_new_violators(
                engine,
                f,
                labels,
                alpha,
                penalty,
                wanted,
                exclude=retained if retained.size else None,
                category=solver._cat("selection"),
            )
            if new.size == 0:
                if retained.size:
                    self._ws_order.clear()  # force a full reselection next round
                    continue
                self._finished = True
                return None  # no violators selectable at all
            ws_idx = np.concatenate([retained, new]) if retained.size else new
            missing = np.asarray(
                [i for i in ws_idx if not self.buffer.contains(int(i))],
                dtype=np.int64,
            )
            self._pending = RoundRequest(ws_idx, missing, delta)
            self._pending_retained = retained
            self._pending_new = new
            return self._pending

    def complete_round(
        self, loader: Optional[Callable[[np.ndarray], np.ndarray]] = None
    ) -> None:
        """Run the consumption half of the round opened by ``begin_round``.

        ``loader`` computes the missing kernel rows (called by the buffer
        with the missing ids, at most once); it defaults to the session's
        own row provider.  A concurrent driver passes a loader backed by a
        wave-fused batched launch — the values must be identical either
        way, so the iterates cannot depend on the execution schedule.
        """
        request = self._pending
        if request is None:
            raise ValidationError("complete_round called without begin_round")
        self._pending = None
        retained, new = self._pending_retained, self._pending_new
        self._pending_retained = self._pending_new = None
        solver = self.solver
        engine = self.engine
        labels, alpha, f, penalty = self.labels, self.alpha, self.f, self.penalty
        ws_idx = request.ws_idx
        delta = request.delta
        if loader is None:
            loader = lambda ids: self.rows.rows(  # noqa: E731
                ids, category=solver._cat("kernel_values")
            )

        stats_before = (
            self.buffer.stats.snapshot() if self.round_trace is not None else None
        )
        k_rows = self.buffer.fetch(ws_idx, loader)
        # The ws x ws block is not copied on the device: the inner
        # solver reads it straight from the buffered rows (its own
        # charge covers that traffic).
        k_ws = k_rows[:, ws_idx]

        budget = inner_iteration_budget(
            ws_idx.size, delta, solver.epsilon, solver.inner_rule
        )
        sub = solve_subproblem(
            engine,
            k_ws,
            self.diagonal[ws_idx],
            labels[ws_idx],
            alpha[ws_idx],
            f[ws_idx],
            penalty[ws_idx],
            epsilon=solver.epsilon,
            max_iterations=budget,
            category=solver._cat("subproblem"),
        )
        self.inner_total += sub.iterations
        delta_alpha = sub.alpha - alpha[ws_idx]
        changed = np.abs(delta_alpha) > 0
        self.rounds += 1
        if self.round_trace is not None:
            since = self.buffer.stats.since(stats_before)
            self.round_trace.append(
                {
                    "round": self.rounds,
                    "delta": float(delta),
                    "retained": int(retained.size),
                    "new_violators": int(new.size),
                    "inner_iterations": int(sub.iterations),
                    "changed": int(changed.sum()),
                    "buffer_hits": since.hits,
                    "buffer_misses": since.misses,
                    "buffer_evictions": since.evictions,
                    "buffer_inserts": since.inserts,
                }
            )
        if not changed.any():
            self._stalled += 1
            if self._stalled == 1 and retained.size:
                self._ws_order.clear()
                return
            if self._stalled >= 2:
                self._finished = True
            return
        self._stalled = 0
        alpha[ws_idx] = sub.alpha

        # Batched Eq.-8 update of every indicator from the buffered rows.
        coeffs = delta_alpha[changed] * labels[ws_idx][changed]
        f += coeffs @ k_rows[changed]
        engine.charge(
            solver._cat("f_update"),
            flops=2 * int(changed.sum()) * self.n,
            bytes_read=int(changed.sum()) * self.n * 8,
            bytes_written=self.n * 8,
            launches=1,
        )

        new_set = set(new.tolist())
        self._ws_order = [i for i in self._ws_order if i not in new_set]
        self._ws_order.extend(int(i) for i in new)
        self._ws_order = self._ws_order[-self.ws_size:]

    # ------------------------------------------------------------------
    # Termination
    # ------------------------------------------------------------------
    def finish(self) -> SolverResult:
        """Finalize the run and return its :class:`SolverResult`.

        Must be called after :meth:`begin_round` returned ``None`` (or to
        cut the run short); idempotent per session via the cached result.
        """
        if self._result is not None:
            return self._result
        self._finished = True
        labels, alpha, f, penalty = self.labels, self.alpha, self.f, self.penalty
        if not self.converged:
            warnings.warn(
                f"batched SMO stopped after {self.rounds} rounds with gap "
                f"{optimality_gap(f, labels, alpha, penalty):.3g} > eps "
                f"{self.solver.epsilon:.3g}",
                ConvergenceWarning,
                stacklevel=2,
            )
        stats = self.buffer.stats
        self._solve_span.set(
            rounds=self.rounds,
            iterations=self.inner_total,
            converged=self.converged,
            buffer_hit_rate=stats.hit_rate,
        )
        self._result = SolverResult(
            alpha=alpha,
            bias=bias_from_f(f, labels, alpha, penalty),
            converged=self.converged,
            iterations=self.inner_total,
            rounds=self.rounds,
            objective=dual_objective(alpha, labels, f),
            final_gap=optimality_gap(f, labels, alpha, penalty),
            kernel_rows_computed=stats.inserts,
            buffer_hit_rate=stats.hit_rate,
            diagnostics={
                "buffer_evictions": stats.evictions,
                "buffer_requests": stats.requests,
                "working_set_size": self.ws_size,
                "new_per_round": self.q,
            },
            f=f,
            round_trace=self.round_trace,
        )
        self.close()
        return self._result

    def close(self) -> None:
        """Release the buffer and close the solver span (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._solve_span.__exit__(None, None, None)
        self.buffer.free()
