"""The GMP-SVM batched working-set solver (Section 3.3.1, Algorithm 2).

Per outer round:

1. check global optimality (Eq. 9) and measure ``delta = f_l - f_u``;
2. sort the optimality indicators and select ``q`` new maximally-violating
   instances (q/2 whose ``y alpha`` can rise, q/2 that can fall);
3. refresh the working set FIFO-style — the q oldest members leave, the
   q new violators join ("q instances in the working set will be replaced
   with q new violating instances");
4. fetch the working set's kernel rows through the GPU buffer — missing
   rows are computed as *one* batched product (this is where the >10x
   per-row saving of batching comes from) and inserted with FIFO batch
   replacement;
5. run inner SMO on the working set with a delta-adaptive iteration budget
   (early termination avoids local optimisation on the working set);
6. apply one batched Eq.-8 update of all n indicators using the buffered
   rows of the instances whose weights changed.

The solver produces the same optimum as classic SMO (both satisfy Eq. 9 at
the same epsilon); it simply gets there with far fewer, far larger device
operations.
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from repro.exceptions import ConvergenceWarning, ValidationError
from repro.kernels.cache import KernelBuffer
from repro.kernels.rows import KernelRowComputer
from repro.solvers.base import (
    SolverResult,
    bias_from_f,
    dual_objective,
    lower_mask,
    optimality_gap,
    resolve_penalty_vector,
    upper_mask,
    validate_binary_problem,
)
from repro.solvers.subproblem import inner_iteration_budget, solve_subproblem
from repro.solvers.working_set import select_new_violators
from repro.telemetry.tracer import Tracer, maybe_span

__all__ = ["BatchSMOSolver"]


class BatchSMOSolver:
    """Batched working-set SMO with a device-resident kernel buffer."""

    def __init__(
        self,
        *,
        penalty: float,
        epsilon: float = 1e-3,
        working_set_size: int = 256,
        new_per_round: Optional[int] = None,
        buffer_rows: Optional[int] = None,
        buffer_policy: str = "fifo",
        inner_rule: str = "adaptive",
        max_rounds: Optional[int] = None,
        category_prefix: str = "",
        register_buffer_memory: bool = True,
        tracer: Optional[Tracer] = None,
        record_rounds: bool = False,
    ) -> None:
        if epsilon <= 0:
            raise ValidationError(f"epsilon must be positive, got {epsilon}")
        if working_set_size < 2:
            raise ValidationError("working_set_size must be >= 2")
        self.penalty = float(penalty)
        self.epsilon = float(epsilon)
        self.working_set_size = int(working_set_size)
        self.new_per_round = new_per_round
        self.buffer_rows = buffer_rows
        self.buffer_policy = buffer_policy
        self.inner_rule = inner_rule
        self.max_rounds = max_rounds
        self.register_buffer_memory = register_buffer_memory
        self.tracer = tracer
        self.record_rounds = record_rounds
        self._category_prefix = category_prefix

    def _cat(self, name: str) -> str:
        """Clock category for ``name`` under this solver's prefix."""
        return f"{self._category_prefix}{name}"

    def solve(
        self,
        rows: KernelRowComputer,
        y: np.ndarray,
        *,
        penalty_vector: Optional[np.ndarray] = None,
        initial_f: Optional[np.ndarray] = None,
        initial_alpha: Optional[np.ndarray] = None,
        allow_single_class: bool = False,
    ) -> SolverResult:
        """Train one binary SVM on the problem served by ``rows``.

        ``penalty_vector`` optionally gives per-instance box bounds
        (class-weighted C, LibSVM's ``-wi``).  ``initial_f`` replaces the
        classification default ``-y`` — it encodes the dual's linear term
        (``f_i = y_i p_i`` at ``alpha = 0``), which is how epsilon-SVR and
        the one-class SVM reuse this solver; with ``initial_alpha`` it must
        be consistent with those weights (Eq. 3).
        """
        labels = validate_binary_problem(
            y, self.penalty, allow_single_class=allow_single_class
        )
        n = rows.n
        if labels.size != n:
            raise ValidationError(f"{labels.size} labels for {n} instances")
        engine = rows.engine
        penalty = resolve_penalty_vector(self.penalty, n, penalty_vector)

        # Buffer geometry: the paper's buffer stores "m x q rows of the
        # kernel matrix (i.e., allow m batches to be stored)"; the default
        # keeps m = 2 — the current working set plus the previous batch.
        # The working set can never exceed the buffer (Figure 6: "changing
        # the GPU buffer size is effectively varying the working set").
        buffer_rows = (
            self.buffer_rows if self.buffer_rows else 2 * self.working_set_size
        )
        ws_size = min(self.working_set_size, buffer_rows, n)
        ws_size = max(2, ws_size - ws_size % 2)
        q = self.new_per_round if self.new_per_round else max(2, ws_size // 2)
        q = max(2, min(q, ws_size))
        q -= q % 2
        max_rounds = (
            self.max_rounds
            if self.max_rounds is not None
            else max(2_000, (40 * n) // q)
        )

        if initial_alpha is None:
            alpha = np.zeros(n)
        else:
            alpha = np.asarray(initial_alpha, dtype=np.float64).copy()
            if alpha.shape != (n,):
                raise ValidationError(f"initial_alpha shape {alpha.shape} != ({n},)")
        if initial_f is None:
            f = -labels.copy()
        else:
            f = np.asarray(initial_f, dtype=np.float64).copy()
            if f.shape != (n,):
                raise ValidationError(f"initial_f shape {f.shape} != ({n},)")
        diagonal = rows.diagonal()
        inner_total = 0
        rounds = 0
        converged = False
        stalled = 0
        ws_order: list[int] = []  # FIFO of working-set membership

        buffer = KernelBuffer(
            buffer_rows,
            n,
            policy=self.buffer_policy,
            allocator=engine.allocator if self.register_buffer_memory else None,
            tag="kernel-buffer",
            tracer=self.tracer,
        )
        # Per-round telemetry is opt-in: with no tracer and record_rounds
        # False the hot loop takes a single falsy check per round.
        round_trace: Optional[list[dict]] = (
            [] if (self.record_rounds or self.tracer is not None) else None
        )
        # Entered/exited manually so the existing try/finally keeps its
        # shape; exceptions still close the span via the finally block.
        solve_span = maybe_span(
            self.tracer,
            "solver.batch_smo",
            clock=engine.clock,
            n=n,
            working_set_size=ws_size,
            new_per_round=q,
        ).__enter__()
        try:
            while rounds < max_rounds:
                up = upper_mask(labels, alpha, penalty)
                low = lower_mask(labels, alpha, penalty)
                engine.elementwise(
                    self._cat("selection"), n, flops_per_element=4, arrays_read=2,
                    memory="cached",
                )
                _, f_up = engine.reduce_extremum(
                    f, up, mode="min", category=self._cat("selection")
                )
                _, f_low = engine.reduce_extremum(
                    f, low, mode="max", category=self._cat("selection")
                )
                if not np.isfinite(f_up) or not np.isfinite(f_low):
                    converged = True
                    break
                delta = f_low - f_up
                if delta <= self.epsilon:
                    converged = True
                    break

                retained = np.asarray(ws_order[-(ws_size - q) :], dtype=np.int64)
                wanted = q if retained.size else ws_size
                new = select_new_violators(
                    engine,
                    f,
                    labels,
                    alpha,
                    penalty,
                    wanted,
                    exclude=retained if retained.size else None,
                    category=self._cat("selection"),
                )
                if new.size == 0:
                    if retained.size:
                        ws_order.clear()  # force a full reselection next round
                        continue
                    break  # no violators selectable at all
                ws_idx = np.concatenate([retained, new]) if retained.size else new

                stats_before = (
                    buffer.stats.snapshot() if round_trace is not None else None
                )
                k_rows = buffer.fetch(
                    ws_idx,
                    lambda ids: rows.rows(ids, category=self._cat("kernel_values")),
                )
                # The ws x ws block is not copied on the device: the inner
                # solver reads it straight from the buffered rows (its own
                # charge covers that traffic).
                k_ws = k_rows[:, ws_idx]

                budget = inner_iteration_budget(
                    ws_idx.size, delta, self.epsilon, self.inner_rule
                )
                sub = solve_subproblem(
                    engine,
                    k_ws,
                    diagonal[ws_idx],
                    labels[ws_idx],
                    alpha[ws_idx],
                    f[ws_idx],
                    penalty[ws_idx],
                    epsilon=self.epsilon,
                    max_iterations=budget,
                    category=self._cat("subproblem"),
                )
                inner_total += sub.iterations
                delta_alpha = sub.alpha - alpha[ws_idx]
                changed = np.abs(delta_alpha) > 0
                rounds += 1
                if round_trace is not None:
                    since = buffer.stats.since(stats_before)
                    round_trace.append(
                        {
                            "round": rounds,
                            "delta": float(delta),
                            "retained": int(retained.size),
                            "new_violators": int(new.size),
                            "inner_iterations": int(sub.iterations),
                            "changed": int(changed.sum()),
                            "buffer_hits": since.hits,
                            "buffer_misses": since.misses,
                            "buffer_evictions": since.evictions,
                            "buffer_inserts": since.inserts,
                        }
                    )
                if not changed.any():
                    stalled += 1
                    if stalled == 1 and retained.size:
                        ws_order.clear()
                        continue
                    if stalled >= 2:
                        break
                    continue
                stalled = 0
                alpha[ws_idx] = sub.alpha

                # Batched Eq.-8 update of every indicator from the buffered rows.
                coeffs = delta_alpha[changed] * labels[ws_idx][changed]
                f += coeffs @ k_rows[changed]
                engine.charge(
                    self._cat("f_update"),
                    flops=2 * int(changed.sum()) * n,
                    bytes_read=int(changed.sum()) * n * 8,
                    bytes_written=n * 8,
                    launches=1,
                )

                ws_order = [i for i in ws_order if i not in set(new.tolist())]
                ws_order.extend(int(i) for i in new)
                ws_order = ws_order[-ws_size:]

            if not converged:
                warnings.warn(
                    f"batched SMO stopped after {rounds} rounds with gap "
                    f"{optimality_gap(f, labels, alpha, penalty):.3g} > eps "
                    f"{self.epsilon:.3g}",
                    ConvergenceWarning,
                    stacklevel=2,
                )
            stats = buffer.stats
            solve_span.set(
                rounds=rounds,
                iterations=inner_total,
                converged=converged,
                buffer_hit_rate=stats.hit_rate,
            )
            return SolverResult(
                alpha=alpha,
                bias=bias_from_f(f, labels, alpha, penalty),
                converged=converged,
                iterations=inner_total,
                rounds=rounds,
                objective=dual_objective(alpha, labels, f),
                final_gap=optimality_gap(f, labels, alpha, penalty),
                kernel_rows_computed=stats.inserts,
                buffer_hit_rate=stats.hit_rate,
                diagnostics={
                    "buffer_evictions": stats.evictions,
                    "buffer_requests": stats.requests,
                    "working_set_size": ws_size,
                    "new_per_round": q,
                },
                f=f,
                round_trace=round_trace,
            )
        finally:
            solve_span.__exit__(None, None, None)
            buffer.free()
