"""Classic SMO with LibSVM's shrinking heuristic.

LibSVM (which the paper benchmarks with its defaults, i.e. shrinking ON)
periodically removes from the *active set* the bound instances that the
optimality indicators say cannot be selected again:

- ``i`` in ``I_up`` only (``alpha=0, y=+1`` or ``alpha=C, y=-1``) is
  inactive once ``f_i >= max_{I_low} f`` — pairing it with any partner
  yields no progress;
- ``i`` in ``I_low`` only (``alpha=C, y=+1`` or ``alpha=0, y=-1``) is
  inactive once ``f_i <= min_{I_up} f``.

Free support vectors are never shrunk.  Iterations then run on the active
set only: kernel rows are computed against active columns (the big
saving), and selection/updates touch ``|active|`` entries.  When the
active set converges, the full indicator vector is reconstructed from the
support vectors (LibSVM's expensive ``reconstruct_gradient``), everything
is unshrunk, and optimisation continues until the *global* optimality
condition (Eq. 9) holds — so the final classifier is identical to the
unshrunk solver's.
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from repro.exceptions import ConvergenceWarning, ValidationError
from repro.kernels.rows import KernelRowComputer
from repro.solvers.base import (
    TAU,
    SolverResult,
    bias_from_f,
    dual_objective,
    lower_mask,
    optimality_gap,
    resolve_penalty_vector,
    upper_mask,
    validate_binary_problem,
)

__all__ = ["ShrinkingSMOSolver"]


class ShrinkingSMOSolver:
    """Two-element working-set SMO with active-set shrinking."""

    def __init__(
        self,
        *,
        penalty: float,
        epsilon: float = 1e-3,
        max_iterations: Optional[int] = None,
        shrink_interval: Optional[int] = None,
        cache_bytes: Optional[int] = None,
        category_prefix: str = "",
    ) -> None:
        if epsilon <= 0:
            raise ValidationError(f"epsilon must be positive, got {epsilon}")
        self.penalty = float(penalty)
        self.epsilon = float(epsilon)
        self.max_iterations = max_iterations
        self.shrink_interval = shrink_interval
        self.cache_bytes = cache_bytes
        self._category_prefix = category_prefix

    def _cat(self, name: str) -> str:
        """Clock category for ``name`` under this solver's prefix."""
        return f"{self._category_prefix}{name}"

    def solve(
        self,
        rows: KernelRowComputer,
        y: np.ndarray,
        *,
        penalty_vector: Optional[np.ndarray] = None,
    ) -> SolverResult:
        """Train one binary SVM with shrinking; same optimum as without."""
        labels = validate_binary_problem(y, self.penalty)
        n = rows.n
        if labels.size != n:
            raise ValidationError(f"{labels.size} labels for {n} instances")
        engine = rows.engine
        penalty = resolve_penalty_vector(self.penalty, n, penalty_vector)
        max_iter = (
            self.max_iterations
            if self.max_iterations is not None
            else max(10_000, 100 * n)
        )
        interval = (
            self.shrink_interval
            if self.shrink_interval is not None
            else min(n, 1000)
        )

        alpha = np.zeros(n)
        f = -labels.copy()  # maintained on the active set only
        diagonal = rows.diagonal()
        active = np.arange(n, dtype=np.int64)
        row_cache: dict[int, np.ndarray] = {}  # active-width rows
        rows_computed = 0
        shrink_events = 0
        reconstructions = 0

        iteration = 0
        converged = False
        since_shrink = 0
        while iteration < max_iter:
            y_a = labels[active]
            a_a = alpha[active]
            f_a = f[active]
            c_a = penalty[active]
            up = upper_mask(y_a, a_a, c_a)
            low = lower_mask(y_a, a_a, c_a)
            engine.elementwise(
                self._cat("selection"),
                active.size,
                flops_per_element=4,
                arrays_read=2,
                memory="cached",
            )
            u_local, f_up = engine.reduce_extremum(
                f_a, up, mode="min", category=self._cat("selection")
            )
            l_local, f_low = engine.reduce_extremum(
                f_a, low, mode="max", category=self._cat("selection")
            )
            if u_local < 0 or l_local < 0 or f_low - f_up <= self.epsilon:
                # Active set optimal: reconstruct, unshrink, re-check global.
                if active.size == n:
                    converged = True
                    break
                f = self._reconstruct(rows, labels, alpha, f, active)
                reconstructions += 1
                active = np.arange(n, dtype=np.int64)
                row_cache.clear()
                since_shrink = 0
                continue

            k_u = self._row(rows, row_cache, int(active[u_local]), active)
            rows_computed += 1

            diag_a = diagonal[active]
            eta = diag_a[u_local] + diag_a - 2.0 * k_u
            np.maximum(eta, TAU, out=eta)
            diff = f_a - f_up
            gain = np.where(low & (diff > 0), (diff * diff) / eta, -np.inf)
            engine.elementwise(
                self._cat("selection"),
                active.size,
                flops_per_element=6,
                arrays_read=3,
                memory="cached",
            )
            l_local, _ = engine.reduce_extremum(
                gain, None, mode="max", category=self._cat("selection")
            )
            if l_local < 0 or not np.isfinite(gain[l_local]):
                if active.size == n:
                    converged = True
                    break
                f = self._reconstruct(rows, labels, alpha, f, active)
                reconstructions += 1
                active = np.arange(n, dtype=np.int64)
                row_cache.clear()
                since_shrink = 0
                continue

            k_l = self._row(rows, row_cache, int(active[l_local]), active)
            rows_computed += 1

            eta_ul = max(
                diag_a[u_local] + diag_a[l_local] - 2.0 * k_u[l_local], TAU
            )
            lam = (f_a[l_local] - f_up) / eta_ul
            y_u, y_l = y_a[u_local], y_a[l_local]
            bound_u = (c_a[u_local] - a_a[u_local]) if y_u > 0 else a_a[u_local]
            bound_l = a_a[l_local] if y_l > 0 else (c_a[l_local] - a_a[l_local])
            lam = min(lam, bound_u, bound_l)
            engine.elementwise(self._cat("subproblem"), 2, flops_per_element=8)
            if lam <= 0:
                break
            delta_u = y_u * lam
            delta_l = -y_l * lam
            alpha[active[u_local]] += delta_u
            alpha[active[l_local]] += delta_l

            f[active] = f_a + delta_u * y_u * k_u + delta_l * y_l * k_l
            engine.elementwise(
                self._cat("f_update"),
                active.size,
                flops_per_element=4,
                arrays_read=3,
                memory="cached",
            )
            iteration += 1
            since_shrink += 1

            if since_shrink >= interval and active.size > 2:
                new_active = self._shrunk_active(
                    labels, alpha, f, active, penalty
                )
                engine.elementwise(
                    self._cat("selection"),
                    active.size,
                    flops_per_element=4,
                    arrays_read=3,
                    memory="cached",
                )
                if new_active.size != active.size and new_active.size >= 2:
                    active = new_active
                    row_cache.clear()  # row widths changed
                    shrink_events += 1
                since_shrink = 0

        if not converged:
            warnings.warn(
                f"shrinking SMO hit the iteration cap ({max_iter})",
                ConvergenceWarning,
                stacklevel=2,
            )
            if active.size != n:
                f = self._reconstruct(rows, labels, alpha, f, active)

        gap = optimality_gap(f, labels, alpha, penalty)
        return SolverResult(
            alpha=alpha,
            bias=bias_from_f(f, labels, alpha, penalty),
            converged=converged,
            iterations=iteration,
            rounds=iteration,
            objective=dual_objective(alpha, labels, f),
            final_gap=gap,
            kernel_rows_computed=rows_computed,
            diagnostics={
                "shrink_events": shrink_events,
                "reconstructions": reconstructions,
            },
            f=f,
        )

    # ------------------------------------------------------------------
    def _row(
        self,
        rows: KernelRowComputer,
        cache: dict[int, np.ndarray],
        global_id: int,
        active: np.ndarray,
    ) -> np.ndarray:
        """Kernel values of one instance against the active columns."""
        cached = cache.get(global_id)
        if cached is not None:
            rows.engine.charge(
                self._cat("kernel_values"),
                bytes_read=cached.size * 8,
                launches=0,
            )
            return cached
        if active.size == rows.n:
            row = rows.rows([global_id], category=self._cat("kernel_values"))[0]
        else:
            from repro.sparse import ops as mops

            row = rows.block(
                mops.take_rows(rows.data, np.asarray([global_id])),
                column_indices=active,
                category=self._cat("kernel_values"),
            )[0]
        # FIFO-bounded cache (dict preserves insertion order); mirrors the
        # memory budget LibSVM's kernel cache would get.
        if self.cache_bytes is not None:
            budget_rows = max(2, int(self.cache_bytes) // max(row.size * 8, 1))
            while len(cache) >= budget_rows:
                cache.pop(next(iter(cache)))
        cache[global_id] = row
        return row

    def _shrunk_active(
        self,
        labels: np.ndarray,
        alpha: np.ndarray,
        f: np.ndarray,
        active: np.ndarray,
        penalty: np.ndarray,
    ) -> np.ndarray:
        """Drop bound instances that can no longer be selected."""
        y_a = labels[active]
        a_a = alpha[active]
        f_a = f[active]
        up = upper_mask(y_a, a_a, penalty[active])
        low = lower_mask(y_a, a_a, penalty[active])
        if not up.any() or not low.any():
            return active
        f_up = f_a[up].min()
        f_low = f_a[low].max()
        up_only = up & ~low
        low_only = low & ~up
        inactive = (up_only & (f_a >= f_low)) | (low_only & (f_a <= f_up))
        keep = ~inactive
        if keep.sum() < 2:
            return active
        return active[keep]

    def _reconstruct(
        self,
        rows: KernelRowComputer,
        labels: np.ndarray,
        alpha: np.ndarray,
        f: np.ndarray,
        active: np.ndarray,
    ) -> np.ndarray:
        """Recompute all indicators from the support vectors.

        The inactive entries have drifted (their updates were skipped);
        LibSVM calls this ``reconstruct_gradient`` and it is the price of
        shrinking — a batched kernel computation over the support vectors.
        """
        support = np.flatnonzero(alpha > 0)
        full = -labels.copy()
        if support.size:
            block = rows.rows(support, category=self._cat("kernel_values"))
            full += (alpha[support] * labels[support]) @ block
        full[active] = f[active]  # active entries are exact already
        return full
