"""Classic SMO with second-order working-set selection (Algorithm 1).

This is the solver inside LibSVM and the paper's GPU baseline: every
iteration selects the two-element working set ``(u, l)`` via Eqs. (4)/(5),
updates their weights via Eqs. (6)/(7) and refreshes all optimality
indicators via Eq. (8), until Eq. (9) holds.

Each iteration computes (or fetches from the kernel buffer) two kernel
rows — the access pattern whose "lots of small read/write operations" the
paper identifies as the GPU baseline's bottleneck.  The engine charges
reflect exactly that: per-iteration reductions and two single-row kernel
launches.
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from repro.exceptions import ConvergenceWarning, ValidationError
from repro.kernels.cache import KernelBuffer
from repro.kernels.rows import KernelRowComputer
from repro.solvers.base import (
    TAU,
    SolverResult,
    bias_from_f,
    dual_objective,
    lower_mask,
    optimality_gap,
    resolve_penalty_vector,
    upper_mask,
    validate_binary_problem,
)

__all__ = ["ClassicSMOSolver"]


class ClassicSMOSolver:
    """Two-element working-set SMO (LibSVM-equivalent)."""

    def __init__(
        self,
        *,
        penalty: float,
        epsilon: float = 1e-3,
        max_iterations: Optional[int] = None,
        buffer: Optional[KernelBuffer] = None,
        category_prefix: str = "",
    ) -> None:
        if epsilon <= 0:
            raise ValidationError(f"epsilon must be positive, got {epsilon}")
        self.penalty = float(penalty)
        self.epsilon = float(epsilon)
        self.max_iterations = max_iterations
        self.buffer = buffer
        self._category_prefix = category_prefix

    def _cat(self, name: str) -> str:
        """Clock category for ``name`` under this solver's prefix."""
        return f"{self._category_prefix}{name}"

    def solve(
        self,
        rows: KernelRowComputer,
        y: np.ndarray,
        *,
        alpha0: Optional[np.ndarray] = None,
        penalty_vector: Optional[np.ndarray] = None,
    ) -> SolverResult:
        """Train one binary SVM; ``rows`` supplies kernel rows on demand.

        ``penalty_vector`` optionally gives per-instance box bounds
        (class-weighted C, LibSVM's ``-wi``).
        """
        labels = validate_binary_problem(y, self.penalty)
        n = rows.n
        if labels.size != n:
            raise ValidationError(f"{labels.size} labels for {n} instances")
        engine = rows.engine
        penalty = resolve_penalty_vector(self.penalty, n, penalty_vector)
        max_iter = (
            self.max_iterations
            if self.max_iterations is not None
            else max(10_000, 100 * n)
        )

        alpha = (
            np.zeros(n) if alpha0 is None else np.asarray(alpha0, dtype=np.float64).copy()
        )
        if alpha.shape != (n,):
            raise ValidationError(f"alpha0 shape {alpha.shape} != ({n},)")
        # f_i = -y_i at alpha = 0 (Algorithm 1 line 2); warm starts recompute.
        if alpha0 is None:
            f = -labels.copy()
        else:
            f = self._recompute_f(rows, labels, alpha)
        diagonal = rows.diagonal()
        rows_computed = 0

        iteration = 0
        converged = False
        f_up = f_low = 0.0
        while iteration < max_iter:
            up = upper_mask(labels, alpha, penalty)
            low = lower_mask(labels, alpha, penalty)
            engine.elementwise(
                self._cat("selection"), n, flops_per_element=4, arrays_read=2,
                memory="cached",
            )
            u, f_up = engine.reduce_extremum(
                f, up, mode="min", category=self._cat("selection")
            )
            low_idx, f_low = engine.reduce_extremum(
                f, low, mode="max", category=self._cat("selection")
            )
            if u < 0 or low_idx < 0 or f_low - f_up <= self.epsilon:
                converged = True
                break

            k_u = self._kernel_row(rows, u)
            rows_computed += 1

            # Second-order choice of l (Eq. 5): among I_low with f_i > f_u,
            # maximise (f_u - f_i)^2 / eta_i.
            eta = diagonal[u] + diagonal - 2.0 * k_u
            np.maximum(eta, TAU, out=eta)
            diff = f - f_up
            gain = np.where(low & (diff > 0), (diff * diff) / eta, -np.inf)
            engine.elementwise(
                self._cat("selection"), n, flops_per_element=6, arrays_read=3,
                memory="cached",
            )
            l, _ = engine.reduce_extremum(
                gain, None, mode="max", category=self._cat("selection")
            )
            if l < 0 or not np.isfinite(gain[l]):
                converged = True
                break

            k_l = self._kernel_row(rows, l)
            rows_computed += 1

            # Two-variable update (Eqs. 6/7) with box clipping.
            eta_ul = max(diagonal[u] + diagonal[l] - 2.0 * k_u[l], TAU)
            lam = (f[l] - f_up) / eta_ul
            bound_u = (penalty[u] - alpha[u]) if labels[u] > 0 else alpha[u]
            bound_l = alpha[l] if labels[l] > 0 else (penalty[l] - alpha[l])
            lam = min(lam, bound_u, bound_l)
            engine.elementwise(self._cat("subproblem"), 2, flops_per_element=8)
            if lam <= 0:
                # Numerically stuck pair; treat as converged at this gap.
                break
            delta_u = labels[u] * lam
            delta_l = -labels[l] * lam
            alpha[u] += delta_u
            alpha[l] += delta_l

            # Indicator refresh (Eq. 8) over all instances.
            f += delta_u * labels[u] * k_u + delta_l * labels[l] * k_l
            engine.elementwise(
                self._cat("f_update"), n, flops_per_element=4, arrays_read=3,
                memory="cached",
            )
            iteration += 1

        if not converged:
            warnings.warn(
                f"SMO hit the iteration cap ({max_iter}) with gap "
                f"{f_low - f_up:.3g} > eps {self.epsilon:.3g}",
                ConvergenceWarning,
                stacklevel=2,
            )

        gap = optimality_gap(f, labels, alpha, penalty)
        return SolverResult(
            alpha=alpha,
            bias=bias_from_f(f, labels, alpha, penalty),
            converged=converged,
            iterations=iteration,
            rounds=iteration,
            objective=dual_objective(alpha, labels, f),
            final_gap=gap,
            kernel_rows_computed=rows_computed,
            buffer_hit_rate=self.buffer.stats.hit_rate if self.buffer else 0.0,
            f=f,
        )

    # ------------------------------------------------------------------
    def _kernel_row(self, rows: KernelRowComputer, index: int) -> np.ndarray:
        # Whether cached or freshly computed, the consuming kernels stream
        # the row out of device memory once.
        rows.engine.charge(
            self._cat("kernel_values"), bytes_read=rows.n * 8, launches=0
        )
        if self.buffer is not None:
            return self.buffer.fetch(
                [index],
                lambda ids: rows.rows(ids, category=self._cat("kernel_values")),
            )[0]
        return rows.rows([index], category=self._cat("kernel_values"))[0]

    def _recompute_f(
        self, rows: KernelRowComputer, labels: np.ndarray, alpha: np.ndarray
    ) -> np.ndarray:
        """Full indicator recomputation for warm starts (batched)."""
        support = np.flatnonzero(alpha > 0)
        f = -labels.copy()
        if support.size:
            k_block = rows.rows(support, category=self._cat("kernel_values"))
            f += (alpha[support] * labels[support]) @ k_block
        return f
