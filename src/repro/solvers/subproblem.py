"""Inner SMO on the working set (Section 3.3.1, "solve multiple subproblems").

Once the working set's kernel rows sit in the GPU buffer, SMO iterations
restricted to the working set are cheap: "one iteration of the SMO in our
algorithm is often much cheaper than the traditional SMO" because every
kernel value is a buffer lookup and the reductions span only ``ws``
elements instead of ``n``.

The subproblem is *not* solved to optimality: "such an approach results in
local optimization on the working set ... we terminate the improvement
process earlier" with a budget driven by ``delta = f_l - f_u``, the global
violation gap — far from the optimum (large delta) few iterations are
spent per working set; close to it, more.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.gpusim.engine import Engine
from repro.solvers.base import TAU, lower_mask, upper_mask

__all__ = ["SubproblemResult", "solve_subproblem", "inner_iteration_budget"]


@dataclass
class SubproblemResult:
    """Outcome of optimising one working set."""

    alpha: np.ndarray  # updated weights of the working-set instances
    iterations: int
    local_gap: float


def inner_iteration_budget(
    ws_size: int, delta: float, epsilon: float, rule: str
) -> int:
    """Iteration cap for one working set.

    - ``"adaptive"`` (the paper's scheme): large delta => few iterations,
      small delta => up to ``ws_size`` iterations.  The budget interpolates
      on ``epsilon / delta``.
    - ``"fixed"``: always ``ws_size // 2`` (a ThunderSVM-style constant).
    - ``"to_convergence"``: effectively unlimited — the ablation arm that
      exhibits the local-optimisation pathology.
    """
    if ws_size < 2:
        raise ValidationError(f"working set must have >= 2 instances, got {ws_size}")
    if rule == "fixed":
        return max(1, ws_size // 2)
    if rule == "to_convergence":
        return 1_000_000
    if rule != "adaptive":
        raise ValidationError(f"unknown inner iteration rule {rule!r}")
    if delta <= 0:
        return max(1, ws_size // 8)
    fraction = min(1.0, max(0.125, epsilon / delta))
    return max(1, int(ws_size * fraction))


def solve_subproblem(
    engine: Engine,
    kernel_ws: np.ndarray,
    diag_ws: np.ndarray,
    y_ws: np.ndarray,
    alpha_ws: np.ndarray,
    f_ws: np.ndarray,
    penalty,
    *,
    epsilon: float,
    max_iterations: int,
    category: str = "subproblem",
) -> SubproblemResult:
    """Run SMO restricted to the working set.

    ``penalty`` may be a scalar C or a per-instance vector (class
    weighting) aligned with the working set.

    Parameters
    ----------
    kernel_ws:
        The ``(ws, ws)`` kernel block between working-set instances,
        gathered from the buffered rows.
    diag_ws, y_ws, alpha_ws, f_ws:
        Diagonal kernel values, labels, current weights and current
        indicators of the working-set instances.  ``alpha_ws`` and
        ``f_ws`` are not mutated; updated weights are returned.

    Notes
    -----
    Maintaining ``f`` only on the working set during inner iterations is
    exact: every weight change involves working-set instances only, so
    outside indicators drift by amounts that the caller reapplies in one
    batched update (Eq. 8 over all n) after the subproblem finishes.
    """
    ws = y_ws.size
    if kernel_ws.shape != (ws, ws):
        raise ValidationError(
            f"kernel block shape {kernel_ws.shape} does not match ws={ws}"
        )
    c_ws = np.broadcast_to(np.asarray(penalty, dtype=np.float64), (ws,))
    alpha = alpha_ws.copy()
    f = f_ws.copy()
    iterations = 0
    gap = float("inf")

    # The whole subproblem executes as ONE kernel: the working-set block
    # lives in shared memory and the iterations below are dependent steps
    # inside it, paying sync latency rather than launch latency.
    engine.charge(
        category,
        bytes_read=kernel_ws.size * 8 + 4 * ws * 8,
        launches=1,
    )
    # Every sync-step inside the kernel has a cost that depends only on
    # ``ws``, so the device charges are deferred: the loop below runs on
    # raw NumPy and counts how many of each step executed, and the
    # aggregate is charged once after the loop (the cost model is linear
    # in flops/bytes/syncs, so the totals are identical).
    n_select = 0  # violator-pair selection: mask refresh + two reductions
    n_pick = 0  # second-order gain map + its reduction
    n_update = 0  # weight/indicator update
    while iterations < max_iterations:
        up = upper_mask(y_ws, alpha, penalty)
        low = lower_mask(y_ws, alpha, penalty)
        n_select += 1
        u, f_up = _masked_extremum(f, up, mode="min")
        low_idx, f_low = _masked_extremum(f, low, mode="max")
        if u < 0 or low_idx < 0:
            gap = 0.0
            break
        gap = f_low - f_up
        if gap <= epsilon:
            break

        k_u = kernel_ws[u]
        eta = diag_ws[u] + diag_ws - 2.0 * k_u
        np.maximum(eta, TAU, out=eta)
        diff = f - f_up
        gain = np.where(low & (diff > 0), (diff * diff) / eta, -np.inf)
        n_pick += 1
        l, _ = _masked_extremum(gain, None, mode="max")
        if l < 0 or not np.isfinite(gain[l]):
            break

        eta_ul = max(diag_ws[u] + diag_ws[l] - 2.0 * kernel_ws[u, l], TAU)
        lam = (f[l] - f_up) / eta_ul
        bound_u = (c_ws[u] - alpha[u]) if y_ws[u] > 0 else alpha[u]
        bound_l = alpha[l] if y_ws[l] > 0 else (c_ws[l] - alpha[l])
        lam = min(lam, bound_u, bound_l)
        if lam <= 0:
            break
        delta_u = y_ws[u] * lam
        delta_l = -y_ws[l] * lam
        alpha[u] += delta_u
        alpha[l] += delta_l
        f += delta_u * y_ws[u] * k_u + delta_l * y_ws[l] * kernel_ws[l]
        n_update += 1
        iterations += 1

    _charge_steps(engine, category, ws, n_select, n_pick, n_update)
    return SubproblemResult(alpha=alpha, iterations=iterations, local_gap=max(gap, 0.0))


def _masked_extremum(
    values: np.ndarray, mask, *, mode: str
) -> tuple[int, float]:
    """Argmin/argmax matching :meth:`Engine.reduce_extremum` bitwise,
    without the per-call accounting (charged in aggregate instead)."""
    if mask is not None:
        candidates = np.flatnonzero(mask)
        if candidates.size == 0:
            return -1, float("nan")
        local = values[candidates]
        pick = int(np.argmin(local) if mode == "min" else np.argmax(local))
        index = int(candidates[pick])
    else:
        if values.size == 0:
            return -1, float("nan")
        index = int(np.argmin(values) if mode == "min" else np.argmax(values))
    return index, float(values[index])


def _charge_steps(
    engine: Engine, category: str, ws: int, n_select: int, n_pick: int, n_update: int
) -> None:
    """Charge the deferred per-iteration sync steps in one aggregate.

    Mirrors, step for step, the shared-memory charges the loop used to
    issue inline: the mask-refresh elementwise (4 flops/elt, 2 reads) plus
    two masked ``reduce_extremum`` calls per selection; the gain
    elementwise (6 flops/elt, 3 reads) plus one unmasked reduction per
    pick; and the update elementwise (4 flops/elt, 3 reads).  Masked
    reductions read ``ws`` floats + a byte-mask; unmasked ones just the
    floats; each reduction writes one float.
    """
    fb = 8  # FLOAT_BYTES
    masked_reduce = ws * fb + ws + fb
    unmasked_reduce = ws * fb + fb
    flops = (
        n_select * (4 * ws + 2 * ws)
        + n_pick * (6 * ws + ws)
        + n_update * 4 * ws
    )
    shared = (
        n_select * ((2 * ws + ws) * fb + 2 * masked_reduce)
        + n_pick * ((3 * ws + ws) * fb + unmasked_reduce)
        + n_update * (3 * ws + ws) * fb
    )
    syncs = 3 * n_select + 2 * n_pick + n_update
    if syncs:
        engine.charge(
            category,
            flops=flops,
            shared_bytes=shared,
            launches=0,
            syncs=syncs,
        )
