"""Warm-start state reconstruction for incremental SMO retraining.

Everything upstream of this module is train-once: every ``solve`` starts
from ``alpha = 0``, ``f = -y`` and pays the full round count even when a
nearly-identical model was just trained.  The warm-start recipe (the
"polishing" idea in "A Recipe for Fast Large-scale SVM Training" and the
reuse argument of "Planning-ahead SMO", see PAPERS.md) reuses the prior
dual solution instead: map the previous model's support-vector weights
onto the current training set, rescale them into the (possibly changed)
box ``[0, C]``, and reconstruct the optimality indicators
``f_i = sum_j alpha_j y_j K_ij - y_i`` with one batched kernel product.
The solver then starts next to the old optimum and only has to move the
coordinates the data/hyper-parameter change actually perturbed.

Contract (enforced where checkable, documented where not):

- **instance identity is positional** — global index ``g`` in the prior
  training set must denote the same instance as index ``g`` in the
  current one.  Growing the dataset by *appending* rows satisfies this;
  so does keeping the data fixed while changing ``C`` or the kernel.
  Reordered or relabeled instances are detected per pair (a prior
  support vector whose index left the pair or whose label flipped) and
  that pair silently falls back to a cold start — correctness never
  depends on the contract holding.
- the equality constraint ``sum_i alpha_i y_i = 0`` is preserved
  exactly: new instances enter at ``alpha = 0`` and box shrinkage is
  handled by *uniformly rescaling* all alphas (never clipping a subset).
- a changed kernel only changes ``f``, which is reconstructed here with
  the *current* kernel; the prior alphas remain a feasible dual point.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gpusim.engine import FLOAT_BYTES

__all__ = [
    "map_prior_alphas",
    "rescale_into_box",
    "reconstruct_gradient",
    "warm_start_pair_state",
]


def map_prior_alphas(
    prior_sv_global: np.ndarray,
    prior_coefficients: np.ndarray,
    problem_global_indices: np.ndarray,
    labels: np.ndarray,
) -> Optional[np.ndarray]:
    """Map a prior record's SV weights onto the current pair problem.

    ``prior_coefficients`` are the persisted ``alpha_j * y_j`` products;
    ``problem_global_indices`` are the current pair's global instance
    ids and ``labels`` its ±1 labels (local order).  Returns the local
    ``alpha`` vector, or ``None`` when the mapping is unsound — a prior
    support vector no longer belongs to this pair, or its label flipped
    (either would break the dual equality constraint).
    """
    alpha = np.zeros(labels.size)
    if prior_sv_global.size == 0:
        return alpha
    position_of = {int(g): i for i, g in enumerate(problem_global_indices)}
    for g, coefficient in zip(prior_sv_global, prior_coefficients):
        local = position_of.get(int(g))
        if local is None:
            return None
        # alpha > 0 for every stored SV, so sign(coefficient) is the
        # prior label; a flip means the instance changed class.
        if coefficient * labels[local] <= 0:
            return None
        alpha[local] = abs(coefficient)
    return alpha


def rescale_into_box(alpha: np.ndarray, box: np.ndarray) -> np.ndarray:
    """Uniformly shrink ``alpha`` until it fits ``0 <= alpha <= box``.

    A single global factor preserves ``sum_i alpha_i y_i = 0`` exactly
    (element-wise clipping would not).  With an unchanged or enlarged
    box the factor is 1 and ``alpha`` is returned untouched.
    """
    active = alpha > 0
    if not active.any():
        return alpha
    factor = float(np.min(box[active] / alpha[active]))
    if factor >= 1.0:
        return alpha
    return alpha * factor


def reconstruct_gradient(
    rows,
    labels: np.ndarray,
    alpha: np.ndarray,
    *,
    category: str = "warm_start",
) -> np.ndarray:
    """Rebuild ``f_i = sum_j alpha_j y_j K_ij - y_i`` for a warm start.

    ``rows`` is the pair's kernel-row provider (plain
    :class:`~repro.kernels.rows.KernelRowComputer` or the shared-store
    adapter); only the rows of the ``alpha > 0`` instances are computed —
    one batched product, the same operation a single solver round pays.
    """
    support = np.flatnonzero(alpha > 0)
    if support.size == 0:
        return -labels.copy()
    k_rows = rows.rows(support, category=category)
    coefficients = alpha[support] * labels[support]
    f = coefficients @ k_rows - labels
    n = labels.size
    rows.engine.charge(
        category,
        flops=2 * support.size * n,
        bytes_read=support.size * n * FLOAT_BYTES,
        bytes_written=n * FLOAT_BYTES,
        launches=1,
    )
    return f


def warm_start_pair_state(
    rows,
    labels: np.ndarray,
    prior_sv_global: np.ndarray,
    prior_coefficients: np.ndarray,
    problem_global_indices: np.ndarray,
    box: np.ndarray,
    *,
    category: str = "warm_start",
) -> Optional[tuple[np.ndarray, np.ndarray]]:
    """``(initial_alpha, initial_f)`` for one pair, or ``None`` (cold).

    Composes the three steps above; ``box`` is the per-instance penalty
    vector (broadcast scalar C already resolved by the caller).
    """
    alpha = map_prior_alphas(
        prior_sv_global, prior_coefficients, problem_global_indices, labels
    )
    if alpha is None:
        return None
    alpha = rescale_into_box(alpha, box)
    f = reconstruct_gradient(rows, labels, alpha, category=category)
    return alpha, f
