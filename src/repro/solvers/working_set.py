"""Selection of the q new violating instances (Section 3.3.1).

"We first sort the training instances based on their optimality indicators
in ascending order.  Then, we choose the top q/2 training instances whose
``y_i alpha_i`` can be increased; and we choose the bottom q/2 training
instances whose ``y_i alpha_i`` can be decreased."

Instances with small ``f`` that can move up and instances with large ``f``
that can move down are exactly the violators of Eq. (9); choosing the
extremes maximises the expected improvement of the dual objective.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.gpusim.engine import Engine
from repro.solvers.base import lower_mask, upper_mask

__all__ = ["select_new_violators"]


def select_new_violators(
    engine: Engine,
    f: np.ndarray,
    y: np.ndarray,
    alpha: np.ndarray,
    penalty: float,
    q: int,
    *,
    exclude: Optional[np.ndarray] = None,
    category: str = "selection",
) -> np.ndarray:
    """Pick up to ``q`` violating instances (q/2 from each end).

    ``exclude`` holds indices already in the working set (the retained
    half); they are skipped so the new picks genuinely refresh the set.
    Returns the selected indices (possibly fewer than ``q`` near
    convergence, when few eligible violators remain).
    """
    if q < 2:
        raise ValidationError(f"q must be >= 2, got {q}")
    n = f.size
    order = engine.sort_values(f, category=category)  # ascending (Alg. 2 line 6)
    up = upper_mask(y, alpha, penalty)
    low = lower_mask(y, alpha, penalty)
    engine.elementwise(category, n, flops_per_element=4, arrays_read=2, memory="cached")

    excluded = np.zeros(n, dtype=bool)
    if exclude is not None and len(exclude):
        excluded[np.asarray(exclude, dtype=np.int64)] = True

    half = q // 2

    # Top of the ascending order: smallest f whose y*alpha can increase.
    top = order[up[order] & ~excluded[order]][:half]
    taken = np.zeros(n, dtype=bool)
    taken[top] = True

    # Bottom of the order: largest f whose y*alpha can decrease.
    reverse = order[::-1]
    bottom = reverse[low[reverse] & ~excluded[reverse] & ~taken[reverse]][:half]

    return np.concatenate([top, bottom]).astype(np.int64)
