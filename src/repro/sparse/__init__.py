"""From-scratch CSR sparse-matrix substrate.

The paper stores training data in CSR format (following GTSVM / Cotter et
al.) and computes batched kernel rows with cuSPARSE SpMM.  This package
provides the equivalent substrate: a :class:`CSRMatrix` type backed by plain
NumPy arrays, the matrix products the kernel machinery needs, and LibSVM
text-format I/O.
"""

from repro.sparse.csr import CSRMatrix
from repro.sparse.io import dump_libsvm, load_libsvm
from repro.sparse.ops import (
    as_supported_matrix,
    matmul_transpose,
    matrix_nbytes,
    n_cols,
    n_rows,
    row_norms_sq,
    take_rows,
    to_dense,
)

__all__ = [
    "CSRMatrix",
    "as_supported_matrix",
    "dump_libsvm",
    "load_libsvm",
    "matmul_transpose",
    "matrix_nbytes",
    "n_cols",
    "n_rows",
    "row_norms_sq",
    "take_rows",
    "to_dense",
]
