"""A compressed-sparse-row matrix implemented from scratch on NumPy arrays.

This is the storage format the paper uses for training data (Section 5:
"We also use CSR format to represent the training data for handling large
but sparse datasets").  Only the operations the SVM machinery needs are
implemented, but each is implemented carefully: row gather, sparse-times-
dense products, ``A @ B.T`` products between two CSR matrices (the batched
kernel-row computation), squared row norms (for the Gaussian kernel), and
stacking.

Invariants maintained by every constructor and method:

- ``indptr`` has length ``n_rows + 1``, starts at 0, is non-decreasing and
  ends at ``nnz``.
- ``indices[indptr[i]:indptr[i + 1]]`` is strictly increasing (canonical
  form: sorted, no duplicate columns).
- ``data`` is float64 and contains no explicit zeros after ``prune``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import SparseFormatError

__all__ = ["CSRMatrix"]


def _as_index_array(values: object) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise SparseFormatError(f"index array must be 1-D, got shape {arr.shape}")
    return arr


def _as_data_array(values: object) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise SparseFormatError(f"data array must be 1-D, got shape {arr.shape}")
    return arr


class CSRMatrix:
    """A 2-D sparse matrix in canonical compressed-sparse-row form."""

    __slots__ = ("data", "indices", "indptr", "shape")

    def __init__(
        self,
        data: object,
        indices: object,
        indptr: object,
        shape: tuple[int, int],
        *,
        check: bool = True,
    ) -> None:
        self.data = _as_data_array(data)
        self.indices = _as_index_array(indices)
        self.indptr = _as_index_array(indptr)
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if n_rows < 0 or n_cols < 0:
            raise SparseFormatError(f"shape must be non-negative, got {shape}")
        self.shape = (n_rows, n_cols)
        if check:
            self._validate()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, array: object, *, tolerance: float = 0.0) -> "CSRMatrix":
        """Build a CSR matrix from a dense 2-D array.

        Entries with ``abs(value) <= tolerance`` are treated as zeros.
        """
        dense = np.asarray(array, dtype=np.float64)
        if dense.ndim != 2:
            raise SparseFormatError(f"expected a 2-D array, got shape {dense.shape}")
        mask = np.abs(dense) > tolerance
        indptr = np.zeros(dense.shape[0] + 1, dtype=np.int64)
        np.cumsum(mask.sum(axis=1), out=indptr[1:])
        rows, cols = np.nonzero(mask)
        del rows  # ordering of np.nonzero is already row-major
        return cls(dense[mask], cols, indptr, dense.shape, check=False)

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[tuple[object, object]],
        n_cols: int,
    ) -> "CSRMatrix":
        """Build from a sequence of ``(column_indices, values)`` pairs.

        Columns within a row may arrive unsorted; they are canonicalised.
        Duplicate columns within a row are rejected.
        """
        index_chunks: list[np.ndarray] = []
        data_chunks: list[np.ndarray] = []
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        for i, (cols, vals) in enumerate(rows):
            col_arr = _as_index_array(cols)
            val_arr = _as_data_array(vals)
            if col_arr.shape != val_arr.shape:
                raise SparseFormatError(
                    f"row {i}: {col_arr.size} indices but {val_arr.size} values"
                )
            order = np.argsort(col_arr, kind="stable")
            col_arr = col_arr[order]
            val_arr = val_arr[order]
            if col_arr.size and np.any(np.diff(col_arr) == 0):
                raise SparseFormatError(f"row {i}: duplicate column index")
            index_chunks.append(col_arr)
            data_chunks.append(val_arr)
            indptr[i + 1] = indptr[i] + col_arr.size
        data = np.concatenate(data_chunks) if data_chunks else np.empty(0)
        indices = (
            np.concatenate(index_chunks)
            if index_chunks
            else np.empty(0, dtype=np.int64)
        )
        return cls(data, indices, indptr, (len(rows), int(n_cols)))

    @classmethod
    def empty(cls, shape: tuple[int, int]) -> "CSRMatrix":
        """An all-zero matrix of the given shape."""
        indptr = np.zeros(int(shape[0]) + 1, dtype=np.int64)
        return cls(np.empty(0), np.empty(0, dtype=np.int64), indptr, shape, check=False)

    @classmethod
    def vstack(cls, matrices: Iterable["CSRMatrix"]) -> "CSRMatrix":
        """Stack CSR matrices vertically; all must share the column count."""
        mats = list(matrices)
        if not mats:
            raise SparseFormatError("vstack requires at least one matrix")
        width = mats[0].shape[1]
        for m in mats:
            if m.shape[1] != width:
                raise SparseFormatError(
                    f"vstack: column mismatch ({m.shape[1]} != {width})"
                )
        data = np.concatenate([m.data for m in mats])
        indices = np.concatenate([m.indices for m in mats])
        row_counts = [m.indptr[1:] - m.indptr[:-1] for m in mats]
        indptr = np.zeros(sum(m.shape[0] for m in mats) + 1, dtype=np.int64)
        np.cumsum(np.concatenate(row_counts), out=indptr[1:])
        total_rows = indptr.size - 1
        return cls(data, indices, indptr, (total_rows, width), check=False)

    # ------------------------------------------------------------------
    # Validation / canonical form
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        n_rows, n_cols = self.shape
        if self.indptr.size != n_rows + 1:
            raise SparseFormatError(
                f"indptr has {self.indptr.size} entries, expected {n_rows + 1}"
            )
        if n_rows >= 0 and (self.indptr.size == 0 or self.indptr[0] != 0):
            raise SparseFormatError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise SparseFormatError("indptr must be non-decreasing")
        if self.indptr[-1] != self.data.size:
            raise SparseFormatError(
                f"indptr ends at {self.indptr[-1]} but data has {self.data.size} entries"
            )
        if self.indices.size != self.data.size:
            raise SparseFormatError(
                f"{self.indices.size} indices but {self.data.size} data entries"
            )
        if self.indices.size:
            if self.indices.min() < 0 or self.indices.max() >= n_cols:
                raise SparseFormatError(
                    f"column index out of range [0, {n_cols})"
                )
            for i in range(n_rows):
                row = self.indices[self.indptr[i] : self.indptr[i + 1]]
                if row.size > 1 and np.any(np.diff(row) <= 0):
                    raise SparseFormatError(
                        f"row {i}: column indices must be strictly increasing"
                    )

    def prune(self, *, tolerance: float = 0.0) -> "CSRMatrix":
        """Return a copy with explicit (near-)zero entries removed."""
        keep = np.abs(self.data) > tolerance
        row_ids = self._row_ids()[keep]
        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.cumsum(np.bincount(row_ids, minlength=self.shape[0]), out=indptr[1:])
        return CSRMatrix(
            self.data[keep], self.indices[keep], indptr, self.shape, check=False
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.data.size)

    @property
    def n_rows(self) -> int:
        """Row count."""
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        """Column count."""
        return self.shape[1]

    @property
    def density(self) -> float:
        """Fraction of cells that are stored (0 for an empty matrix)."""
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    @property
    def nbytes(self) -> int:
        """Bytes consumed by the three backing arrays."""
        return int(self.data.nbytes + self.indices.nbytes + self.indptr.nbytes)

    def copy(self) -> "CSRMatrix":
        """A deep copy (independent backing arrays)."""
        return CSRMatrix(
            self.data.copy(),
            self.indices.copy(),
            self.indptr.copy(),
            self.shape,
            check=False,
        )

    def _row_ids(self) -> np.ndarray:
        """Row id of each stored entry (length ``nnz``)."""
        return np.repeat(
            np.arange(self.shape[0], dtype=np.int64),
            np.diff(self.indptr),
        )

    # ------------------------------------------------------------------
    # Element / row access
    # ------------------------------------------------------------------
    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(column_indices, values)`` views of row ``i``."""
        i = self._check_row(i)
        start, stop = self.indptr[i], self.indptr[i + 1]
        return self.indices[start:stop], self.data[start:stop]

    def row_dense(self, i: int) -> np.ndarray:
        """Row ``i`` as a dense 1-D array."""
        cols, vals = self.row(i)
        out = np.zeros(self.shape[1])
        out[cols] = vals
        return out

    def _check_row(self, i: int) -> int:
        i = int(i)
        if i < 0:
            i += self.shape[0]
        if not 0 <= i < self.shape[0]:
            raise IndexError(f"row {i} out of range for {self.shape[0]} rows")
        return i

    def take_rows(self, row_indices: object) -> "CSRMatrix":
        """Gather a subset of rows (in the given order) into a new matrix."""
        idx = _as_index_array(row_indices)
        idx = np.array([self._check_row(i) for i in idx], dtype=np.int64)
        counts = self.indptr[idx + 1] - self.indptr[idx]
        indptr = np.zeros(idx.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        nnz = int(indptr[-1])
        data = np.empty(nnz)
        indices = np.empty(nnz, dtype=np.int64)
        for out_pos, i in enumerate(idx):
            src = slice(self.indptr[i], self.indptr[i + 1])
            dst = slice(indptr[out_pos], indptr[out_pos + 1])
            data[dst] = self.data[src]
            indices[dst] = self.indices[src]
        return CSRMatrix(data, indices, indptr, (idx.size, self.shape[1]), check=False)

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def toarray(self) -> np.ndarray:
        """Densify into an ``(n_rows, n_cols)`` float64 array."""
        out = np.zeros(self.shape)
        if self.nnz:
            out[self._row_ids(), self.indices] = self.data
        return out

    def dot_vec(self, vector: object) -> np.ndarray:
        """``self @ vector`` for a dense 1-D vector of length ``n_cols``."""
        vec = np.asarray(vector, dtype=np.float64)
        if vec.shape != (self.shape[1],):
            raise SparseFormatError(
                f"vector of shape {vec.shape} incompatible with {self.shape}"
            )
        products = self.data * vec[self.indices]
        return _segment_sums(products, self.indptr)

    def dot_dense(self, dense: object, *, chunk_rows: int = 4096) -> np.ndarray:
        """``self @ dense`` for a dense ``(n_cols, m)`` matrix, chunked by rows.

        Chunking bounds the ``nnz_chunk x m`` intermediate, which is what a
        real SpMM kernel does with its tiling.
        """
        mat = np.asarray(dense, dtype=np.float64)
        if mat.ndim != 2 or mat.shape[0] != self.shape[1]:
            raise SparseFormatError(
                f"matrix of shape {mat.shape} incompatible with {self.shape}"
            )
        out = np.empty((self.shape[0], mat.shape[1]))
        for start in range(0, self.shape[0], chunk_rows):
            stop = min(start + chunk_rows, self.shape[0])
            lo, hi = self.indptr[start], self.indptr[stop]
            gathered = self.data[lo:hi, None] * mat[self.indices[lo:hi], :]
            out[start:stop] = _segment_sums_2d(
                gathered, self.indptr[start : stop + 1] - lo
            )
        return out

    def matmul_transpose(self, other: "CSRMatrix") -> np.ndarray:
        """Dense result of ``self @ other.T`` for two CSR matrices.

        This is the batched kernel-row product: ``self`` holds the (few)
        working-set rows, ``other`` holds the full training set.  The
        algorithm scatters each row of ``self`` into a dense workspace and
        runs a sparse mat-vec of ``other`` against it — the standard
        row-by-row SpGEMM-to-dense scheme.
        """
        if self.shape[1] != other.shape[1]:
            raise SparseFormatError(
                f"column mismatch: {self.shape} vs {other.shape}"
            )
        out = np.empty((self.shape[0], other.shape[0]))
        workspace = np.zeros(self.shape[1])
        for i in range(self.shape[0]):
            cols, vals = self.row(i)
            workspace[cols] = vals
            products = other.data * workspace[other.indices]
            out[i] = _segment_sums(products, other.indptr)
            workspace[cols] = 0.0
        return out

    def row_norms_sq(self) -> np.ndarray:
        """Squared Euclidean norm of every row (for the Gaussian kernel)."""
        return _segment_sums(self.data * self.data, self.indptr)

    def scale_rows(self, factors: object) -> "CSRMatrix":
        """Return a copy with row ``i`` multiplied by ``factors[i]``."""
        fac = np.asarray(factors, dtype=np.float64)
        if fac.shape != (self.shape[0],):
            raise SparseFormatError(
                f"expected {self.shape[0]} factors, got shape {fac.shape}"
            )
        data = self.data * fac[self._row_ids()]
        return CSRMatrix(data, self.indices.copy(), self.indptr.copy(), self.shape, check=False)

    # ------------------------------------------------------------------
    # Comparison / repr
    # ------------------------------------------------------------------
    def allclose(self, other: "CSRMatrix", *, rtol: float = 1e-9, atol: float = 1e-12) -> bool:
        """Structural and numeric equality up to tolerance."""
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.allclose(self.data, other.data, rtol=rtol, atol=atol)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.4f})"
        )


def _segment_sums(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Sum ``values`` over the segments delimited by ``indptr``.

    ``np.add.reduceat`` mishandles empty segments (it copies the next
    element instead of producing 0), so empty rows are fixed up explicitly.
    """
    n_segments = indptr.size - 1
    out = np.zeros(n_segments)
    if values.size == 0 or n_segments == 0:
        return out
    starts = indptr[:-1]
    non_empty = indptr[1:] > starts
    if not np.any(non_empty):
        return out
    # Reduce only at non-empty starts: empty segments have zero width, so
    # consecutive non-empty starts bracket exactly one segment each.
    out[non_empty] = np.add.reduceat(values, starts[non_empty])
    return out


def _segment_sums_2d(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Row-segment sums of a 2-D array (same empty-segment care)."""
    n_segments = indptr.size - 1
    out = np.zeros((n_segments, values.shape[1]))
    if values.size == 0 or n_segments == 0:
        return out
    starts = indptr[:-1]
    non_empty = indptr[1:] > starts
    if not np.any(non_empty):
        return out
    out[non_empty] = np.add.reduceat(values, starts[non_empty], axis=0)
    return out
