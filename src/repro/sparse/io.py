"""Reader/writer for the LibSVM text format.

The paper's datasets are distributed in this format (one instance per line,
``<label> <index>:<value> ...`` with 1-based feature indices).  The reader
is tolerant of comments (``#`` to end of line), blank lines and unsorted
indices; the writer emits canonical sorted 1-based output that LibSVM
itself can read back.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import IO, Iterable, Union

import numpy as np

from repro.exceptions import SparseFormatError
from repro.sparse.csr import CSRMatrix

__all__ = ["load_libsvm", "dump_libsvm"]

PathOrFile = Union[str, Path, IO[str]]


def load_libsvm(
    source: PathOrFile,
    *,
    n_features: int | None = None,
    zero_based: bool = False,
) -> tuple[CSRMatrix, np.ndarray]:
    """Parse LibSVM-format text into ``(X, y)``.

    Parameters
    ----------
    source:
        A path or an open text file.
    n_features:
        Force the column count (useful to align train/test splits).  When
        omitted it is inferred as the largest index seen.
    zero_based:
        Interpret feature indices as 0-based instead of the conventional
        1-based.

    Returns
    -------
    A ``(CSRMatrix, labels)`` pair; labels are float64 (LibSVM permits
    regression targets, classification callers round-trip integers exactly).
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return load_libsvm(
                handle, n_features=n_features, zero_based=zero_based
            )

    labels: list[float] = []
    rows: list[tuple[np.ndarray, np.ndarray]] = []
    max_index = -1
    offset = 0 if zero_based else 1
    for line_no, raw_line in enumerate(source, start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        try:
            labels.append(float(fields[0]))
        except ValueError as exc:
            raise SparseFormatError(
                f"line {line_no}: bad label {fields[0]!r}"
            ) from exc
        cols = np.empty(len(fields) - 1, dtype=np.int64)
        vals = np.empty(len(fields) - 1)
        for pos, field in enumerate(fields[1:]):
            try:
                index_text, value_text = field.split(":", 1)
                cols[pos] = int(index_text) - offset
                vals[pos] = float(value_text)
            except ValueError as exc:
                raise SparseFormatError(
                    f"line {line_no}: bad feature {field!r}"
                ) from exc
            if cols[pos] < 0:
                raise SparseFormatError(
                    f"line {line_no}: feature index {field!r} below "
                    f"{'0' if zero_based else '1'}"
                )
        if cols.size:
            max_index = max(max_index, int(cols.max()))
        rows.append((cols, vals))

    width = max_index + 1 if n_features is None else int(n_features)
    if max_index >= width:
        raise SparseFormatError(
            f"feature index {max_index} exceeds n_features={width}"
        )
    matrix = CSRMatrix.from_rows(rows, width)
    return matrix, np.asarray(labels)


def dump_libsvm(
    matrix: CSRMatrix,
    labels: Iterable[float],
    target: PathOrFile,
    *,
    zero_based: bool = False,
    label_format: str = "g",
) -> None:
    """Write ``(matrix, labels)`` in LibSVM text format."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            dump_libsvm(
                matrix,
                labels,
                handle,
                zero_based=zero_based,
                label_format=label_format,
            )
        return

    label_array = np.asarray(list(labels), dtype=np.float64)
    if label_array.size != matrix.shape[0]:
        raise SparseFormatError(
            f"{label_array.size} labels for {matrix.shape[0]} rows"
        )
    offset = 0 if zero_based else 1
    buffer = io.StringIO()
    for i in range(matrix.shape[0]):
        cols, vals = matrix.row(i)
        parts = [format(label_array[i], label_format)]
        parts.extend(
            f"{int(col) + offset}:{val:.17g}" for col, val in zip(cols, vals)
        )
        buffer.write(" ".join(parts))
        buffer.write("\n")
    target.write(buffer.getvalue())
