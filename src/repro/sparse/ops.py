"""Dispatch helpers over the two supported matrix types.

The library accepts training/test data either as a dense ``numpy.ndarray``
or as a :class:`~repro.sparse.csr.CSRMatrix`.  Solvers and kernel machinery
call through these free functions so they never need to branch on the type
themselves.
"""

from __future__ import annotations

import warnings
from typing import Union

import numpy as np

from repro.exceptions import ValidationError
from repro.sparse.csr import CSRMatrix

MatrixLike = Union[np.ndarray, CSRMatrix]

__all__ = [
    "MatrixLike",
    "as_supported_matrix",
    "is_sparse",
    "matmul_transpose",
    "matrix_nbytes",
    "n_cols",
    "n_rows",
    "row_norms_sq",
    "take_rows",
    "to_dense",
]


def as_supported_matrix(data: object) -> MatrixLike:
    """Coerce user input to a supported matrix type.

    Dense inputs become 2-D float64 arrays; CSR inputs pass through.
    Anything with NaN/inf is rejected up front — SMO's argmin/argmax
    selection silently misbehaves on NaN otherwise.
    """
    if isinstance(data, CSRMatrix):
        if not np.all(np.isfinite(data.data)):
            raise ValidationError("input matrix contains NaN or infinity")
        return data
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValidationError(f"expected a 2-D matrix, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValidationError("input matrix contains NaN or infinity")
    return arr


def is_sparse(matrix: MatrixLike) -> bool:
    """Whether the matrix is stored in CSR form."""
    return isinstance(matrix, CSRMatrix)


def n_rows(matrix: MatrixLike) -> int:
    """Row count of either matrix type."""
    return matrix.shape[0]


def n_cols(matrix: MatrixLike) -> int:
    """Column count of either matrix type."""
    return matrix.shape[1]


def matrix_nbytes(matrix: MatrixLike) -> int:
    """Storage footprint in bytes (CSR counts its three arrays)."""
    return int(matrix.nbytes)


def take_rows(matrix: MatrixLike, row_indices: object) -> MatrixLike:
    """Gather rows in the given order; preserves the storage format."""
    if isinstance(matrix, CSRMatrix):
        return matrix.take_rows(row_indices)
    idx = np.asarray(row_indices, dtype=np.int64)
    return matrix[idx]


def to_dense(matrix: MatrixLike) -> np.ndarray:
    """Materialise either matrix type as a dense float64 array."""
    if isinstance(matrix, CSRMatrix):
        return matrix.toarray()
    return np.asarray(matrix, dtype=np.float64)


def row_norms_sq(matrix: MatrixLike) -> np.ndarray:
    """Squared Euclidean norms of all rows."""
    if isinstance(matrix, CSRMatrix):
        return matrix.row_norms_sq()
    return np.einsum("ij,ij->i", matrix, matrix)


# Mirrors of repro.backends.reference.MATMUL_TILE_ROWS/COLS, kept here for
# importers of the old location.  Literal copies rather than re-imports:
# repro.backends loads repro.core.validation, which loads this module, so a
# module-level import of the backends package from here would cycle.
MATMUL_TILE_ROWS = 256
MATMUL_TILE_COLS = 256


def matmul_transpose(a: MatrixLike, b: MatrixLike) -> np.ndarray:
    """Deprecated alias for :func:`repro.backends.reference.matmul_transpose`.

    The implementation moved to :mod:`repro.backends` when the compute
    backends were introduced; this shim delegates (same bits, same errors)
    and will be removed in a future release.
    """
    warnings.warn(
        "repro.sparse.ops.matmul_transpose moved to repro.backends "
        "(repro.backends.matmul_transpose, or use a ComputeBackend); "
        "this alias will be removed in a future release",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.backends.reference import matmul_transpose as _impl

    return _impl(a, b)
