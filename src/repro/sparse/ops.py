"""Dispatch helpers over the two supported matrix types.

The library accepts training/test data either as a dense ``numpy.ndarray``
or as a :class:`~repro.sparse.csr.CSRMatrix`.  Solvers and kernel machinery
call through these free functions so they never need to branch on the type
themselves.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.exceptions import ValidationError
from repro.sparse.csr import CSRMatrix

MatrixLike = Union[np.ndarray, CSRMatrix]

__all__ = [
    "MatrixLike",
    "as_supported_matrix",
    "is_sparse",
    "matmul_transpose",
    "matrix_nbytes",
    "n_cols",
    "n_rows",
    "row_norms_sq",
    "take_rows",
    "to_dense",
]


def as_supported_matrix(data: object) -> MatrixLike:
    """Coerce user input to a supported matrix type.

    Dense inputs become 2-D float64 arrays; CSR inputs pass through.
    Anything with NaN/inf is rejected up front — SMO's argmin/argmax
    selection silently misbehaves on NaN otherwise.
    """
    if isinstance(data, CSRMatrix):
        if not np.all(np.isfinite(data.data)):
            raise ValidationError("input matrix contains NaN or infinity")
        return data
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValidationError(f"expected a 2-D matrix, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValidationError("input matrix contains NaN or infinity")
    return arr


def is_sparse(matrix: MatrixLike) -> bool:
    """Whether the matrix is stored in CSR form."""
    return isinstance(matrix, CSRMatrix)


def n_rows(matrix: MatrixLike) -> int:
    """Row count of either matrix type."""
    return matrix.shape[0]


def n_cols(matrix: MatrixLike) -> int:
    """Column count of either matrix type."""
    return matrix.shape[1]


def matrix_nbytes(matrix: MatrixLike) -> int:
    """Storage footprint in bytes (CSR counts its three arrays)."""
    return int(matrix.nbytes)


def take_rows(matrix: MatrixLike, row_indices: object) -> MatrixLike:
    """Gather rows in the given order; preserves the storage format."""
    if isinstance(matrix, CSRMatrix):
        return matrix.take_rows(row_indices)
    idx = np.asarray(row_indices, dtype=np.int64)
    return matrix[idx]


def to_dense(matrix: MatrixLike) -> np.ndarray:
    """Materialise either matrix type as a dense float64 array."""
    if isinstance(matrix, CSRMatrix):
        return matrix.toarray()
    return np.asarray(matrix, dtype=np.float64)


def row_norms_sq(matrix: MatrixLike) -> np.ndarray:
    """Squared Euclidean norms of all rows."""
    if isinstance(matrix, CSRMatrix):
        return matrix.row_norms_sq()
    return np.einsum("ij,ij->i", matrix, matrix)


# Fixed tiles for the dense-dense product.  BLAS derives its internal
# blocking — and with it the per-element accumulation order — from the
# operand shapes, so the same row can come out bitwise-different depending
# on how many rows it is batched with (a lone row even dispatches to a
# different GEMV path), and the same *column* can come out different
# depending on which other columns ride along.  Computing every product
# through constant-shape ``(MATMUL_TILE_ROWS, k) @ (k, MATMUL_TILE_COLS)``
# calls on contiguous zero-padded tiles makes each output element a pure
# function of ``(a_row, b_row)``, independent of batch composition on
# *either* axis.  The interleaved trainer relies on the row half (it fuses
# kernel-row demand of concurrent SVMs into union batches); the distributed
# inference router relies on the column half (a pair-partitioned shard
# computes test-vs-sub-pool blocks whose columns sit at different offsets
# than in the single-device pool, and must still reproduce the same bits).
# The CSR code paths are per-row loops / fixed-segment reductions and carry
# the invariant for free.
MATMUL_TILE_ROWS = 256
MATMUL_TILE_COLS = 256


def matmul_transpose(a: MatrixLike, b: MatrixLike) -> np.ndarray:
    """Dense ``a @ b.T`` for any combination of dense/CSR operands.

    This is the single product the whole kernel machinery is built on
    (the paper computes it with cuSPARSE/cuBLAS).  Output rows are
    bitwise-independent of how the ``a`` batch is composed (see
    :data:`MATMUL_TILE_ROWS`).
    """
    if a.shape[1] != b.shape[1]:
        raise ValidationError(f"column mismatch: {a.shape} vs {b.shape}")
    a_sparse = isinstance(a, CSRMatrix)
    b_sparse = isinstance(b, CSRMatrix)
    if a_sparse and b_sparse:
        return a.matmul_transpose(b)
    if a_sparse:
        return a.dot_dense(np.ascontiguousarray(np.asarray(b).T))
    if b_sparse:
        return b.dot_dense(np.ascontiguousarray(np.asarray(a).T)).T
    dense_a = np.asarray(a)
    dense_b = np.asarray(b)
    tile_r = MATMUL_TILE_ROWS
    tile_c = MATMUL_TILE_COLS
    m, k = dense_a.shape
    n = dense_b.shape[0]
    dtype = np.result_type(dense_a, dense_b)
    out = np.empty((m, n), dtype=dtype)
    # Materialise every column tile as a contiguous (k, tile_c) operand up
    # front: a strided transpose view and a padded copy can dispatch to
    # different GEMM paths, which would break element purity between full
    # and partial tiles.
    col_tiles = []
    for c_start in range(0, n, tile_c):
        cols = min(tile_c, n - c_start)
        block = np.zeros((k, tile_c), dtype=dtype)
        block[:, :cols] = dense_b[c_start : c_start + cols].T
        col_tiles.append((c_start, cols, block))
    for r_start in range(0, m, tile_r):
        chunk = dense_a[r_start : r_start + tile_r]
        rows = chunk.shape[0]
        if rows < tile_r or not chunk.flags.c_contiguous:
            padded = np.zeros((tile_r, k), dtype=dtype)
            padded[:rows] = chunk
            chunk = padded
        for c_start, cols, block in col_tiles:
            out[r_start : r_start + rows, c_start : c_start + cols] = (
                chunk @ block
            )[:rows, :cols]
    return out
