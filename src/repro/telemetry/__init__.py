"""Structured telemetry: hierarchical traces and versioned JSON schemas.

The subsystem has two halves:

- :mod:`repro.telemetry.tracer` — an opt-in hierarchical span tracer with
  dual wall/simulated timestamps, wired through the trainer, predictor,
  batched solver, kernel buffer and concurrency scheduler;
- :mod:`repro.telemetry.schema` — the version strings stamped into every
  serialized artifact (reports, JSONL traces, benchmark JSON) so the CI
  regression gate and downstream tooling can validate what they consume.
"""

from repro.telemetry.schema import (
    BENCH_SCHEMA_VERSION,
    REPORT_SCHEMA_VERSION,
    TRACE_SCHEMA_VERSION,
)
from repro.telemetry.tracer import NULL_SPAN, Span, Tracer, maybe_span

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "NULL_SPAN",
    "REPORT_SCHEMA_VERSION",
    "Span",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "maybe_span",
]
