"""Versioned schemas for every serialized telemetry artifact.

Three artifact families leave the process as JSON:

- **reports** — ``TrainingReport``/``PredictionReport`` snapshots
  (``repro-train --report-json``, ``repro-predict --report-json``);
- **traces** — JSONL span streams from the hierarchical tracer
  (``--trace``);
- **bench results** — ``BENCH_<name>.json`` files emitted by the
  benchmark suite and diffed by ``benchmarks/check_regression.py``.

Each carries a ``schema_version`` string of the form
``repro.<family>/v<N>``.  Consumers (the CI regression gate, downstream
analysis notebooks) must check the family and may refuse unknown major
versions; producers bump ``N`` on any backwards-incompatible change to
the field set.
"""

from __future__ import annotations

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "BENCH_SCHEMA_VERSION",
]

REPORT_SCHEMA_VERSION = "repro.report/v1"
TRACE_SCHEMA_VERSION = "repro.trace/v1"
BENCH_SCHEMA_VERSION = "repro.bench/v1"
