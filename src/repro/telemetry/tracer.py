"""Hierarchical span tracing with dual wall-clock / simulated timestamps.

A :class:`Tracer` records a tree of named *spans*.  Every span carries two
independent time axes:

- **wall time** — ``time.perf_counter`` seconds of the NumPy host
  computation, measured from the tracer's creation;
- **simulated time** — device seconds read from a
  :class:`~repro.gpusim.clock.SimClock` (per span, so nested spans may be
  timed against different engines' clocks).

Spans nest through an explicit stack: entering a span makes it the parent
of any span opened before it exits, which yields the component hierarchy
the paper's breakdown figures are built from (training -> pair -> round ->
buffer fill).  Finished spans become flat JSON-safe records suitable for
JSONL export; parent links (``parent_id``/``depth``) preserve the tree.

Tracing is strictly opt-in.  Hot paths receive ``Optional[Tracer]`` and
use :func:`maybe_span`, which returns a shared, stateless no-op span when
the tracer is ``None`` — the disabled path allocates nothing and records
nothing.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.gpusim.clock import SimClock
from repro.telemetry.schema import TRACE_SCHEMA_VERSION

__all__ = ["Span", "Tracer", "maybe_span", "NULL_SPAN"]


def _json_safe(value: Any) -> Any:
    """Coerce numpy scalars/arrays (and tuples) into JSON-native types."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [_json_safe(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return value


class Span:
    """One timed region of the trace; a re-entrant-unsafe context manager.

    Spans are created by :meth:`Tracer.span` and finalized on ``__exit__``,
    at which point a flat record is appended to the owning tracer.
    """

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "depth",
        "wall_start_s",
        "wall_s",
        "sim_start_s",
        "sim_s",
        "_tracer",
        "_clock",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        clock: Optional[SimClock],
        attrs: dict[str, Any],
    ) -> None:
        if not name:
            raise ValidationError("span name must be a non-empty string")
        self._tracer = tracer
        self._clock = clock
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.depth = 0
        self.wall_start_s = 0.0
        self.wall_s = 0.0
        self.sim_start_s = 0.0
        self.sim_s = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def _sim_now(self) -> float:
        clock = self._clock if self._clock is not None else self._tracer._clock
        return clock.elapsed_s if clock is not None else 0.0

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.span_id = tracer._take_id()
        stack = tracer._stack
        self.parent_id = stack[-1].span_id if stack else None
        self.depth = len(stack)
        stack.append(self)
        self.wall_start_s = tracer._wall_now()
        self.sim_start_s = self._sim_now()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        tracer = self._tracer
        self.wall_s = tracer._wall_now() - self.wall_start_s
        self.sim_s = self._sim_now() - self.sim_start_s
        if tracer._stack and tracer._stack[-1] is self:
            tracer._stack.pop()
        else:  # tolerate out-of-order exits rather than corrupt the stack
            tracer._stack = [s for s in tracer._stack if s is not self]
        tracer._finish(self)
        return False

    def to_record(self) -> dict[str, Any]:
        """The span as a flat, JSON-safe, schema-versioned dict."""
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "kind": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "name": self.name,
            "wall_start_s": self.wall_start_s,
            "wall_s": self.wall_s,
            "sim_start_s": self.sim_start_s,
            "sim_s": self.sim_s,
            "attrs": _json_safe(self.attrs),
        }


class _NullSpan:
    """The shared no-op span returned by :func:`maybe_span` when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        """Discard attributes; returns self for chaining."""
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans and exports them as schema-versioned JSONL.

    Parameters
    ----------
    clock:
        Default :class:`SimClock` for spans that do not bind their own;
        may be (re)bound later with :meth:`bind_clock`.
    wall_clock:
        Monotonic second counter (injectable for tests).
    """

    def __init__(
        self,
        *,
        clock: Optional[SimClock] = None,
        wall_clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.records: list[dict[str, Any]] = []
        self._stack: list[Span] = []
        self._clock = clock
        self._wall = wall_clock
        self._origin = wall_clock()
        self._next_id = 1

    @property
    def enabled(self) -> bool:
        """Live tracers always record; the off state is ``tracer is None``."""
        return True

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    def bind_clock(self, clock: Optional[SimClock]) -> None:
        """Set the default simulated clock for subsequently opened spans."""
        self._clock = clock

    def _wall_now(self) -> float:
        return self._wall() - self._origin

    def _take_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def _finish(self, span: Span) -> None:
        self.records.append(span.to_record())

    def span(
        self, name: str, *, clock: Optional[SimClock] = None, **attrs: Any
    ) -> Span:
        """Open a span; use as ``with tracer.span("solve") as s: ...``."""
        return Span(self, name, clock, dict(attrs))

    def event(
        self, name: str, *, clock: Optional[SimClock] = None, **attrs: Any
    ) -> None:
        """Record an instantaneous (zero-duration) span."""
        with self.span(name, clock=clock, **attrs):
            pass

    def to_records(self) -> list[dict[str, Any]]:
        """Finished-span records in completion order (children first)."""
        return list(self.records)

    def to_jsonl(self) -> str:
        """All finished spans as one JSON-Lines string."""
        return "\n".join(
            json.dumps(record, sort_keys=True) for record in self.records
        )

    def write_jsonl(self, path: object) -> None:
        """Write the JSONL trace to ``path`` (one span per line)."""
        with open(path, "w", encoding="utf-8") as handle:
            text = self.to_jsonl()
            if text:
                handle.write(text + "\n")

    def clear(self) -> None:
        """Drop every finished record (open spans are unaffected)."""
        self.records.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer(records={len(self.records)}, open={len(self._stack)})"


def maybe_span(
    tracer: Optional[Tracer],
    name: str,
    *,
    clock: Optional[SimClock] = None,
    **attrs: Any,
):
    """A live span when ``tracer`` is set, else the shared no-op span.

    This is the one tracing entry point hot paths call: with tracing
    disabled it returns the :data:`NULL_SPAN` singleton — no allocation,
    no clock reads, no bookkeeping.
    """
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, clock=clock, **attrs)
