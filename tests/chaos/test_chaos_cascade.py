"""Chaos suite: device loss mid-cascade.

Unlike the pair-sharded trainer (whose recovery is bitwise — each
pairwise problem is solved whole, just elsewhere), a lost device
changes the cascade's shard→device map and hence possibly the merge
pairing, so the recovered model may differ in the low bits.  What must
hold instead is the error budget: every recovered run still verifies
its global dual gap under the ceiling, stays decision-close to the
fault-free cascade, and reports the loss and the recovery explicitly.
When the rebuilt tree pairs the same slots (the common case), the
recovery *is* bitwise — one scenario pins that stronger property.
"""

import os
import warnings

import numpy as np
import pytest

from repro.cascade import CascadeConfig, train_cascade
from repro.core.trainer import TrainerConfig
from repro.data import gaussian_blobs
from repro.distributed import ClusterSpec
from repro.faults import DeviceLoss, FaultPlan
from repro.gpusim.device import scaled_tesla_p100
from repro.kernels.functions import kernel_from_name

N_DEVICES = 4
N_SEEDS = int(os.environ.get("REPRO_CHAOS_SEEDS", "8"))


def _decision(result, labels):
    return result.f + labels + result.bias


@pytest.fixture(scope="module")
def workload():
    x, y = gaussian_blobs(n=400, n_features=5, n_classes=2, seed=1)
    labels = np.where(y == 0, 1.0, -1.0)
    kernel = kernel_from_name("gaussian", gamma=0.5)
    config = TrainerConfig(device=scaled_tesla_p100(), working_set_size=32)
    return x, labels, kernel, config


@pytest.fixture(scope="module")
def cluster():
    return ClusterSpec(device=scaled_tesla_p100(), n_devices=N_DEVICES)


def _train(cluster, workload, **kwargs):
    x, labels, kernel, config = workload
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return train_cascade(
            config, cluster, x, labels, kernel, 1.0,
            cascade=CascadeConfig(n_shards=N_DEVICES),
            **kwargs,
        )


@pytest.fixture(scope="module")
def baseline(cluster, workload):
    return _train(cluster, workload)


def _assert_recovered_close(result, report, baseline, labels):
    base_result, _ = baseline
    assert report.budget_met
    assert report.final_gap <= report.gap_budget
    d_fault = _decision(result, labels)
    d_base = _decision(base_result, labels)
    assert np.max(np.abs(d_fault - d_base)) < 0.1
    assert np.mean(np.sign(d_fault) == np.sign(d_base)) >= 0.999


class TestDeviceLossMidCascade:
    @pytest.mark.parametrize("lost_device", [1, 2, 3])
    def test_recovery_meets_budget(
        self, cluster, workload, baseline, lost_device
    ):
        labels = workload[1]
        plan = FaultPlan(losses=[DeviceLoss(device=lost_device, at_s=1e-6)])
        result, report = _train(
            cluster, workload,
            fault_plan=plan,
            checkpoint_every=2,
            checkpoint_dir=":memory:",
        )
        _assert_recovered_close(result, report, baseline, labels)
        assert report.faults["devices_lost"] == [lost_device]
        recovery = report.faults["recovery"]
        assert recovery["recovered_shards"] >= 1
        assert lost_device not in recovery["survivors"]
        assert len(recovery["survivors"]) == N_DEVICES - 1

    def test_same_pairing_recovery_is_bitwise(
        self, cluster, workload, baseline
    ):
        # Losing device 1 sends its shard to device 0; the survivors'
        # slot ordering still pairs (0,1) and (2,3), so every merge sees
        # the same operands and the recovered model is bitwise identical.
        base_result, base_report = baseline
        plan = FaultPlan(losses=[DeviceLoss(device=1, at_s=1e-6)])
        result, report = _train(
            cluster, workload,
            fault_plan=plan,
            checkpoint_every=2,
            checkpoint_dir=":memory:",
        )
        assert np.array_equal(result.alpha, base_result.alpha)
        assert result.bias == base_result.bias
        assert report.final_gap == base_report.final_gap

    def test_loss_stretches_timeline_boundedly(
        self, cluster, workload, baseline
    ):
        _, base_report = baseline
        plan = FaultPlan(losses=[DeviceLoss(device=1, at_s=1e-6)])
        _, report = _train(
            cluster, workload,
            fault_plan=plan,
            checkpoint_every=2,
            checkpoint_dir=":memory:",
        )
        assert report.simulated_seconds >= base_report.simulated_seconds
        assert report.simulated_seconds <= 5.0 * base_report.simulated_seconds

    def test_merge_tree_rebuilt_over_survivors(self, cluster, workload):
        plan = FaultPlan(losses=[DeviceLoss(device=3, at_s=1e-6)])
        _, report = _train(
            cluster, workload,
            fault_plan=plan,
            checkpoint_every=2,
            checkpoint_dir=":memory:",
        )
        # The root solution cannot live on the lost device, and the tree
        # still folds every shard into one slot.
        assert report.tree["root_device"] != 3
        assert report.tree["n_merges"] == report.n_shards - 1

    def test_seeded_loss_matrix(self, cluster, workload, baseline):
        labels = workload[1]
        for seed in range(N_SEEDS):
            plan = FaultPlan.random(seed, N_DEVICES, loss_window_s=0.0)
            result, report = _train(
                cluster, workload,
                fault_plan=plan,
                checkpoint_every=2,
                checkpoint_dir=":memory:",
            )
            assert report.budget_met, f"seed {seed} missed the budget"
            _assert_recovered_close(result, report, baseline, labels)

    def test_checkpoints_written_without_faults(self, cluster, workload):
        _, report = _train(
            cluster, workload,
            checkpoint_every=2,
            checkpoint_dir=":memory:",
        )
        assert report.faults["checkpoints_written"] > 0

    def test_disk_checkpoints(self, cluster, workload, baseline, tmp_path):
        labels = workload[1]
        plan = FaultPlan(losses=[DeviceLoss(device=2, at_s=1e-6)])
        result, report = _train(
            cluster, workload,
            fault_plan=plan,
            checkpoint_every=2,
            checkpoint_dir=tmp_path / "casc_ckpt",
        )
        _assert_recovered_close(result, report, baseline, labels)
        assert report.faults["checkpoints_written"] > 0


class TestHierarchicalChaos:
    def test_loss_on_two_node_cluster(self, workload):
        x, labels, kernel, config = workload
        cluster = ClusterSpec(
            device=scaled_tesla_p100(), n_devices=4, n_nodes=2
        )
        baseline_result, _ = train_cascade(
            config, cluster, x, labels, kernel, 1.0,
            cascade=CascadeConfig(n_shards=4),
        )
        plan = FaultPlan(losses=[DeviceLoss(device=1, at_s=1e-6)])
        result, report = train_cascade(
            config, cluster, x, labels, kernel, 1.0,
            cascade=CascadeConfig(n_shards=4),
            fault_plan=plan,
            checkpoint_every=2,
            checkpoint_dir=":memory:",
        )
        assert report.budget_met
        d_fault = _decision(result, labels)
        d_base = _decision(baseline_result, labels)
        assert np.mean(np.sign(d_fault) == np.sign(d_base)) >= 0.999
        # The rebuilt tree still respects the topology: at most
        # n_nodes - 1 merges cross the node boundary.
        assert report.tree["tier_counts"]["inter"] <= cluster.n_nodes - 1
