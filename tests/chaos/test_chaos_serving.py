"""Chaos suite: replica loss and recovery on the serving side.

Invariant under every scenario: a failure is *visible* — an explicit
503 or a raised error — and every 200 response is bitwise the sealed
model's answer.  Zero silent wrong answers, ever.
"""

import warnings

import numpy as np
import pytest

from repro.core.predictor import PredictorConfig
from repro.core.trainer import TrainerConfig, train_multiclass
from repro.data import gaussian_blobs
from repro.distributed import ClusterSpec, ShardedInferenceRouter
from repro.exceptions import DeviceError, ValidationError
from repro.gpusim.device import scaled_tesla_p100
from repro.kernels.functions import kernel_from_name
from repro.server.dispatcher import Dispatcher
from repro.serving import InferenceSession


@pytest.fixture(scope="module")
def served():
    x, y = gaussian_blobs(n=88, n_features=5, n_classes=4, seed=7)
    kernel = kernel_from_name("gaussian", gamma=0.4)
    config = TrainerConfig(device=scaled_tesla_p100(), working_set_size=24)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model, _ = train_multiclass(config, x, y, kernel, 1.0)
    session = InferenceSession(
        model, PredictorConfig(device=scaled_tesla_p100())
    )
    probe = np.asarray(x)[:3]
    return model, probe, session.predict_proba(probe)


def _replicated_dispatcher(model, n_devices=3):
    cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=n_devices)
    router = ShardedInferenceRouter(model, cluster, strategy="replicated")
    return Dispatcher(router)


class TestLaneFailure:
    def test_failure_window_is_explicit_503s_then_reroute(self, served):
        model, probe, reference = served
        d = _replicated_dispatcher(model)
        warm = [d.submit(probe, arrival_s=float(i)) for i in range(3)]
        d.drain()
        assert all(r.status == 200 for r in warm)

        d.fail_lane(1)
        window = [
            d.submit(probe, arrival_s=d.now_s + 10.0 + i) for i in range(6)
        ]
        d.drain()
        statuses = [r.status for r in window]
        # Exactly the batch routed to the dead lane fails, explicitly.
        assert statuses.count(503) >= 1
        failed = [r for r in window if r.status == 503]
        assert all(r.decision.reason == "replica_lost" for r in failed)
        for r in window:
            if r.status == 200:
                assert np.array_equal(r.result, reference)
        assert d.stats.n_failed == len(failed)

    def test_failed_result_access_raises_not_garbage(self, served):
        model, probe, _ = served
        d = _replicated_dispatcher(model)
        d.fail_lane(0, at_s=0.0)
        request = d.submit(probe, arrival_s=1.0)
        d.drain()
        if request.status == 503:
            with pytest.raises(ValidationError, match="shed"):
                _ = request.result

    def test_detection_excludes_lane_from_routing(self, served):
        model, probe, reference = served
        d = _replicated_dispatcher(model)
        d.fail_lane(2)
        requests = [
            d.submit(probe, arrival_s=float(i + 1)) for i in range(12)
        ]
        d.drain()
        statuses = [r.status for r in requests]
        # One detection batch, then the dead lane never serves again.
        assert statuses.count(503) >= 1
        workers = {r.worker for r in requests if r.status == 200}
        assert 2 not in workers
        health = d.lane_health()
        assert health[2]["failed"] and health[2]["detected"]
        for r in requests:
            if r.status == 200:
                assert np.array_equal(r.result, reference)

    def test_all_lanes_dead_queues_until_restore(self, served):
        model, probe, reference = served
        d = _replicated_dispatcher(model, n_devices=2)
        d.fail_lane(0)
        d.fail_lane(1)
        # Detection costs one batch per lane; later arrivals queue.
        requests = [
            d.submit(probe, arrival_s=float(i + 1)) for i in range(6)
        ]
        d.drain()  # must not hang with zero routable lanes
        queued = [r for r in requests if not r.done]
        assert queued  # backlog waited instead of silently failing
        d.restore_lane(0)
        d.drain()
        assert all(r.done for r in requests)
        for r in requests:
            if r.status == 200:
                assert np.array_equal(r.result, reference)

    def test_recovery_serves_clean_after_restore(self, served):
        model, probe, reference = served
        d = _replicated_dispatcher(model)
        d.fail_lane(1)
        during = [
            d.submit(probe, arrival_s=d.now_s + 1.0 + i) for i in range(4)
        ]
        d.drain()
        d.restore_lane(1)
        after = [
            d.submit(probe, arrival_s=d.now_s + 100.0 + i) for i in range(9)
        ]
        d.drain()
        # Zero failed requests once the replica is back; the restored
        # lane serves again.
        assert all(r.status == 200 for r in after)
        assert all(np.array_equal(r.result, reference) for r in after)
        assert 1 in {r.worker for r in after}
        assert any(r.status == 503 for r in during)  # window was explicit

    def test_restore_with_replacement_session(self, served):
        model, probe, reference = served
        session = InferenceSession(
            model, PredictorConfig(device=scaled_tesla_p100())
        )
        d = Dispatcher(session, n_workers=2)
        d.fail_lane(0)
        replacement = InferenceSession(
            model, PredictorConfig(device=scaled_tesla_p100())
        )
        d.restore_lane(0, replacement)
        requests = [
            d.submit(probe, arrival_s=float(i + 1)) for i in range(4)
        ]
        d.drain()
        served_ok = [r for r in requests if r.status == 200]
        assert served_ok
        assert all(np.array_equal(r.result, reference) for r in served_ok)

    def test_lane_validation(self, served):
        model, probe, _ = served
        d = _replicated_dispatcher(model)
        with pytest.raises(ValidationError, match="out of range"):
            d.fail_lane(9)
        with pytest.raises(ValidationError, match="not failed"):
            d.restore_lane(0)
        d.fail_lane(0)
        with pytest.raises(ValidationError, match="already failed"):
            d.fail_lane(0)
        # First submit absorbs lane 0's detection; the second completes
        # on a live lane, advancing the virtual clock past zero.
        d.submit(probe, arrival_s=5.0)
        d.submit(probe, arrival_s=5.0)
        d.drain()
        assert d.now_s > 0.0
        with pytest.raises(ValidationError, match="precedes"):
            d.fail_lane(1, at_s=0.0)

    def test_replacement_width_mismatch_rejected(self, served):
        model, probe, _ = served
        session = InferenceSession(
            model, PredictorConfig(device=scaled_tesla_p100())
        )
        d = Dispatcher(session, n_workers=2)
        d.fail_lane(0)
        x, y = gaussian_blobs(n=60, n_features=3, n_classes=3, seed=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            narrow, _ = train_multiclass(
                TrainerConfig(
                    device=scaled_tesla_p100(), working_set_size=16
                ),
                x, y,
                kernel_from_name("gaussian", gamma=0.4),
                1.0,
            )
        wrong = InferenceSession(
            narrow, PredictorConfig(device=scaled_tesla_p100())
        )
        with pytest.raises(ValidationError, match="features"):
            d.restore_lane(0, wrong)


class TestRouterHealth:
    def test_unhealthy_replica_skipped_with_bitwise_parity(self, served):
        model, probe, reference = served
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=3)
        router = ShardedInferenceRouter(model, cluster, strategy="replicated")
        router.mark_unhealthy(1)
        assert router.healthy_devices == [0, 2]
        for _ in range(4):
            assert np.array_equal(router.predict_proba(probe), reference)
        # The unhealthy device's session never served.
        assert router.sessions[1].stats.n_calls == 0

    def test_all_unhealthy_is_explicit(self, served):
        model, probe, _ = served
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=2)
        router = ShardedInferenceRouter(model, cluster, strategy="replicated")
        router.mark_unhealthy(0)
        router.mark_unhealthy(1)
        with pytest.raises(DeviceError, match="unhealthy"):
            router.predict_proba(probe)

    def test_reseal_replacement_charges_and_serves(self, served):
        model, probe, reference = served
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=2)
        router = ShardedInferenceRouter(model, cluster, strategy="replicated")
        before = router.pool.device_transfer_bytes(1)
        router.mark_unhealthy(1)
        router.mark_healthy(1, reseal=True)
        assert router.pool.device_transfer_bytes(1) > before
        assert router.healthy_devices == [0, 1]
        assert np.array_equal(router.predict_proba(probe), reference)

    def test_submit_skips_unhealthy_batcher(self, served):
        model, probe, reference = served
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=3)
        router = ShardedInferenceRouter(model, cluster, strategy="replicated")
        router.mark_unhealthy(0)
        requests = [router.submit(probe) for _ in range(4)]
        router.drain()
        assert all(np.array_equal(r.result, reference) for r in requests)
        assert router.sessions[0].stats.n_calls == 0

    def test_health_api_is_replicated_only(self, served):
        model, _, _ = served
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=2)
        router = ShardedInferenceRouter(
            model, cluster, strategy="pair_partitioned"
        )
        with pytest.raises(ValidationError, match="replicated"):
            router.mark_unhealthy(0)
        with pytest.raises(ValidationError, match="replicated"):
            router.mark_healthy(0)
